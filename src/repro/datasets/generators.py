"""Parametric configuration-distribution generators for sweeps and ablations.

Figure 1 uses a fixed empirical distribution plus a uniform residual; the
ablations in DESIGN.md §6 also exercise Zipf, Dirichlet and synthetic
oligopoly shapes so the entropy/resilience analysis can be swept over
systematically varied concentration levels.  All generators are deterministic
given an explicit :class:`random.Random` seed, which keeps every experiment
reproducible.

The module also hosts the **streaming population generators**:
:func:`stream_replica_chunks` yields a synthetic ecosystem's population in
bounded chunks, each replica a pure function of ``(seed, index)`` on the
counter-based splitmix64 stream, so chunked generation equals one-shot
generation for every chunk size — the bounded-memory feed for
``PopulationMatrix.from_replica_chunks`` at million-replica scale.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.configuration import ReplicaConfiguration
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import ConfigurationError, DistributionError
from repro.core.population import Replica
from repro.datasets.software_ecosystem import SyntheticEcosystem

#: Default replicas per chunk of :func:`stream_replica_chunks` — small enough
#: that a chunk of Replica objects stays in tens of megabytes, large enough
#: that per-chunk overhead vanishes at 10⁶ replicas.
DEFAULT_REPLICA_CHUNK_SIZE = 65_536


def stream_replica_chunks(
    ecosystem: SyntheticEcosystem,
    count: int,
    *,
    seed: int = 0,
    chunk_size: int = DEFAULT_REPLICA_CHUNK_SIZE,
    power: float = 1.0,
    attested_fraction: float = 0.0,
    prefix: str = "replica",
) -> Iterator[Tuple[Replica, ...]]:
    """Yield ``ecosystem``'s sampled population in bounded replica chunks.

    Replica ``index`` is exactly the replica
    ``ecosystem.sample_population(count, seed=seed, ...)`` would produce at
    that index — same id, configuration (via
    :meth:`SyntheticEcosystem.configuration_at`), power and attested flag —
    but only ``chunk_size`` replicas exist at a time.  Because each replica
    is a pure function of ``(seed, index)``, chunked generation equals
    one-shot generation for identical seeds, for every chunk size, across
    processes and backends.

    Args:
        ecosystem: the market-share model to sample from.
        count: total number of replicas to generate.
        seed: counter-based RNG seed.
        chunk_size: replicas per yielded chunk (positive).
        power: voting power assigned to every replica (per-replica power
            vectors do not stream; use :meth:`~SyntheticEcosystem.sample_population`
            when each replica needs its own power).
        attested_fraction: fraction marked attested — the first
            ``round(count * fraction)`` replicas, as in ``sample_population``.
        prefix: replica id prefix.
    """
    if count <= 0:
        raise ConfigurationError(f"population count must be positive, got {count}")
    if chunk_size <= 0:
        raise ConfigurationError(f"chunk size must be positive, got {chunk_size}")
    if not 0.0 <= attested_fraction <= 1.0:
        raise ConfigurationError(
            f"attested fraction must be in [0, 1], got {attested_fraction}"
        )
    if power < 0:
        raise ConfigurationError(f"replica power must be non-negative, got {power}")
    attested_count = round(count * attested_fraction)
    replica_power = float(power)
    cache: Dict[Tuple[int, ...], ReplicaConfiguration] = {}
    for start in range(0, count, chunk_size):
        stop = min(start + chunk_size, count)
        chunk: List[Replica] = []
        for index in range(start, stop):
            choices = ecosystem.choices_at(seed, index)
            configuration = cache.get(choices)
            if configuration is None:
                configuration = ecosystem.configuration_for(choices)
                cache[choices] = configuration
            chunk.append(
                Replica(
                    replica_id=f"{prefix}-{index}",
                    configuration=configuration,
                    power=replica_power,
                    attested=index < attested_count,
                )
            )
        yield tuple(chunk)


def _labels(count: int, prefix: str) -> List[str]:
    if count <= 0:
        raise DistributionError(f"configuration count must be positive, got {count}")
    return [f"{prefix}-{index}" for index in range(count)]


def uniform_distribution(count: int, *, prefix: str = "config") -> ConfigurationDistribution:
    """The uniform (κ-optimal) distribution over ``count`` configurations."""
    return ConfigurationDistribution.uniform(_labels(count, prefix))


def zipf_distribution(
    count: int,
    exponent: float = 1.0,
    *,
    prefix: str = "config",
) -> ConfigurationDistribution:
    """A Zipf-shaped distribution: the i-th configuration has weight ``1/i^s``.

    Software market shares (operating systems, blockchain clients, wallets)
    are commonly Zipf-like: one dominant implementation, a long tail of
    alternatives.  ``exponent = 0`` degenerates to uniform; larger exponents
    concentrate more power in the head.
    """
    if exponent < 0:
        raise DistributionError(f"Zipf exponent must be non-negative, got {exponent}")
    labels = _labels(count, prefix)
    weights = {
        label: 1.0 / ((rank + 1) ** exponent) for rank, label in enumerate(labels)
    }
    return ConfigurationDistribution(weights)


def geometric_distribution(
    count: int,
    ratio: float = 0.5,
    *,
    prefix: str = "config",
) -> ConfigurationDistribution:
    """A geometric distribution: each configuration has ``ratio`` times the previous weight."""
    if not 0 < ratio <= 1:
        raise DistributionError(f"ratio must be in (0, 1], got {ratio}")
    labels = _labels(count, prefix)
    weights = {label: ratio**rank for rank, label in enumerate(labels)}
    return ConfigurationDistribution(weights)


def dirichlet_distribution(
    count: int,
    concentration: float = 1.0,
    *,
    rng: Optional[random.Random] = None,
    prefix: str = "config",
) -> ConfigurationDistribution:
    """A random distribution drawn from a symmetric Dirichlet.

    ``concentration`` (the Dirichlet α) controls how even the draw tends to
    be: large α produces nearly-uniform distributions, small α produces
    sparse, oligopoly-like draws.  Uses only the standard library
    (``random.Random.gammavariate``), so no numpy dependency is required.
    """
    if concentration <= 0:
        raise DistributionError(
            f"Dirichlet concentration must be positive, got {concentration}"
        )
    rng = rng or random.Random(0)
    labels = _labels(count, prefix)
    draws = [rng.gammavariate(concentration, 1.0) for _ in labels]
    total = sum(draws)
    if total <= 0:
        # Astronomically unlikely; retry once with fresh entropy to stay total.
        draws = [rng.gammavariate(concentration, 1.0) + 1e-12 for _ in labels]
        total = sum(draws)
    weights = {label: draw / total for label, draw in zip(labels, draws)}
    return ConfigurationDistribution(weights)


def oligopoly_distribution(
    dominant_count: int,
    dominant_share: float,
    tail_count: int,
    *,
    prefix: str = "config",
) -> ConfigurationDistribution:
    """An explicit oligopoly: ``dominant_count`` heads split ``dominant_share``
    evenly, and ``tail_count`` tail configurations split the remainder evenly.

    ``oligopoly_distribution(10, 0.96, 500)`` approximates the Bitcoin pool
    situation described in the paper's footnote (top ten pools above 96%).
    """
    if dominant_count <= 0 or tail_count < 0:
        raise DistributionError(
            "dominant count must be positive and tail count non-negative, got "
            f"{dominant_count} and {tail_count}"
        )
    if not 0 < dominant_share <= 1:
        raise DistributionError(
            f"dominant share must be in (0, 1], got {dominant_share}"
        )
    if tail_count == 0 and dominant_share < 1:
        raise DistributionError(
            "a tail share remains but tail_count is zero; increase dominant_share to 1"
        )
    weights = {}
    head_each = dominant_share / dominant_count
    for index in range(dominant_count):
        weights[f"{prefix}-head-{index}"] = head_each
    if tail_count:
        tail_each = (1.0 - dominant_share) / tail_count
        for index in range(tail_count):
            weights[f"{prefix}-tail-{index}"] = tail_each
    return ConfigurationDistribution(weights)


def perturbed_uniform(
    count: int,
    noise: float,
    *,
    rng: Optional[random.Random] = None,
    prefix: str = "config",
) -> ConfigurationDistribution:
    """A uniform distribution with multiplicative noise.

    Each share is multiplied by ``1 + u`` with ``u`` drawn uniformly from
    ``[-noise, +noise]`` and then renormalized; useful for property-based
    tests that need "nearly κ-optimal" inputs.
    """
    if not 0 <= noise < 1:
        raise DistributionError(f"noise must be in [0, 1), got {noise}")
    rng = rng or random.Random(0)
    labels = _labels(count, prefix)
    weights = {
        label: 1.0 * (1.0 + rng.uniform(-noise, noise)) for label in labels
    }
    return ConfigurationDistribution(weights)


def power_split(
    total_power: float,
    shares: Sequence[float],
    *,
    prefix: str = "participant",
) -> dict:
    """Split ``total_power`` across participants according to ``shares``.

    Returns a mapping participant id -> absolute power; the shares are
    normalized, so they may be given as percentages or raw weights.
    """
    if total_power <= 0:
        raise DistributionError(f"total power must be positive, got {total_power}")
    if not shares:
        raise DistributionError("at least one share is required")
    if any(share < 0 for share in shares):
        raise DistributionError("shares must be non-negative")
    total_share = sum(shares)
    if total_share <= 0:
        raise DistributionError("shares must have positive total")
    return {
        f"{prefix}-{index}": total_power * share / total_share
        for index, share in enumerate(shares)
    }
