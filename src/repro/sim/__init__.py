"""Deterministic discrete-event simulation substrate.

The BFT and Nakamoto protocol implementations run on this simulator instead
of real sockets and threads: every protocol step is an event on a priority
queue ordered by simulated time, message delivery goes through a
:class:`~repro.sim.network.SimulatedNetwork` with configurable latency, loss
and partitions, and all randomness flows from explicit seeds, so every run is
reproducible bit-for-bit.

- :mod:`repro.sim.events` -- the event queue and scheduler.
- :mod:`repro.sim.network` -- latency / loss / partition modelling.
- :mod:`repro.sim.node` -- the process abstraction protocols subclass.
- :mod:`repro.sim.metrics` -- counters, gauges and time series collection.
"""

from repro.sim.events import Event, EventQueue, Scheduler
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import NetworkConfig, SimulatedNetwork
from repro.sim.node import Message, SimulatedNode

__all__ = [
    "Event",
    "EventQueue",
    "Message",
    "MetricsRegistry",
    "NetworkConfig",
    "Scheduler",
    "SimulatedNetwork",
    "SimulatedNode",
]
