"""Metric collection for simulations and experiments.

A tiny, dependency-free registry of counters, gauges and time series.  The
protocol simulators record message counts, commit latencies and safety
violations here so experiments and benchmarks can read them back uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.exceptions import SimulationError


@dataclass
class TimeSeries:
    """An append-only series of (time, value) samples."""

    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.samples.append((time, float(value)))

    def values(self) -> List[float]:
        return [value for _, value in self.samples]

    def times(self) -> List[float]:
        return [time for time, _ in self.samples]

    def last(self) -> float:
        if not self.samples:
            raise SimulationError("time series is empty")
        return self.samples[-1][1]

    def mean(self) -> float:
        values = self.values()
        if not values:
            raise SimulationError("time series is empty")
        return sum(values) / len(values)

    def maximum(self) -> float:
        values = self.values()
        if not values:
            raise SimulationError("time series is empty")
        return max(values)

    def __len__(self) -> int:
        return len(self.samples)


class MetricsRegistry:
    """Named counters, gauges and time series."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._series: Dict[str, TimeSeries] = {}

    # -- counters -----------------------------------------------------------------

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        if amount < 0:
            raise SimulationError(f"counter increments must be non-negative, got {amount}")
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        """Current value of the counter (zero when never incremented)."""
        return self._counters.get(name, 0.0)

    # -- gauges --------------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value``."""
        self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Current gauge value (``default`` when never set)."""
        return self._gauges.get(name, default)

    # -- time series -----------------------------------------------------------------

    def record(self, name: str, time: float, value: float) -> None:
        """Append a sample to the named time series (created on first use)."""
        self._series.setdefault(name, TimeSeries()).record(time, value)

    def series(self, name: str) -> TimeSeries:
        """The named time series (empty series when never recorded)."""
        return self._series.setdefault(name, TimeSeries())

    # -- reporting -------------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """All counters and gauges in one flat dictionary."""
        merged: Dict[str, float] = {}
        merged.update(self._counters)
        merged.update(self._gauges)
        return merged

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def reset(self) -> None:
        """Clear every metric."""
        self._counters.clear()
        self._gauges.clear()
        self._series.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, gauges={len(self._gauges)}, "
            f"series={len(self._series)})"
        )
