"""The process abstraction protocol implementations subclass.

A :class:`SimulatedNode` has an id, receives :class:`Message` objects from the
network, and can send messages / set timers through the network and scheduler
it is registered with.  Protocol replicas (PBFT, HotStuff, Nakamoto miners)
derive from it and implement :meth:`SimulatedNode.on_message`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.exceptions import SimulationError


@dataclass(frozen=True)
class Message:
    """A protocol message in flight.

    Attributes:
        sender: id of the sending node.
        recipient: id of the destination node.
        msg_type: protocol-specific type tag (e.g. ``"PREPARE"``).
        payload: immutable-by-convention mapping of message fields.
        sent_at: simulated time the message was handed to the network.
    """

    sender: str
    recipient: str
    msg_type: str
    payload: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    sent_at: float = 0.0

    @classmethod
    def make(
        cls,
        sender: str,
        recipient: str,
        msg_type: str,
        payload: Optional[Dict[str, Any]] = None,
        *,
        sent_at: float = 0.0,
    ) -> "Message":
        """Build a message from a plain payload dictionary."""
        items = tuple(sorted((payload or {}).items()))
        return cls(
            sender=sender,
            recipient=recipient,
            msg_type=msg_type,
            payload=items,
            sent_at=sent_at,
        )

    def get(self, key: str, default: Any = None) -> Any:
        """Read one payload field."""
        for name, value in self.payload:
            if name == key:
                return value
        return default

    def payload_dict(self) -> Dict[str, Any]:
        """The payload as a plain dictionary."""
        return dict(self.payload)

    def __str__(self) -> str:
        return f"{self.msg_type}({self.sender}->{self.recipient})"


class SimulatedNode:
    """Base class for all simulated processes.

    Subclasses implement :meth:`on_message` and may override :meth:`on_start`
    (called once when the simulation begins) and :meth:`on_timer` (called when
    a timer set via :meth:`set_timer` fires).
    """

    def __init__(self, node_id: str) -> None:
        if not node_id:
            raise SimulationError("node id must not be empty")
        self.node_id = node_id
        self._network = None  # set by SimulatedNetwork.register
        self.crashed = False

    # -- wiring -------------------------------------------------------------------

    def attach(self, network: "SimulatedNetwork") -> None:  # noqa: F821
        """Called by the network when the node is registered."""
        self._network = network

    @property
    def network(self):
        if self._network is None:
            raise SimulationError(f"node {self.node_id!r} is not attached to a network")
        return self._network

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.network.scheduler.now

    # -- actions -------------------------------------------------------------------

    def send(self, recipient: str, msg_type: str, payload: Optional[Dict[str, Any]] = None) -> None:
        """Send a message to one node."""
        if self.crashed:
            return
        self.network.send(
            Message.make(self.node_id, recipient, msg_type, payload, sent_at=self.now)
        )

    def broadcast(self, msg_type: str, payload: Optional[Dict[str, Any]] = None, *, include_self: bool = True) -> None:
        """Send a message to every registered node (optionally including self)."""
        if self.crashed:
            return
        for node_id in self.network.node_ids():
            if node_id == self.node_id and not include_self:
                continue
            self.send(node_id, msg_type, payload)

    def set_timer(self, delay: float, timer_id: str = "") -> None:
        """Schedule :meth:`on_timer` to run after ``delay`` time units."""
        self.network.scheduler.call_later(
            delay,
            lambda: self._fire_timer(timer_id),
            label=f"timer:{self.node_id}:{timer_id}",
        )

    def crash(self) -> None:
        """Stop participating: no more sends, all deliveries dropped."""
        self.crashed = True

    def recover(self) -> None:
        """Resume participating after a crash."""
        self.crashed = False

    # -- callbacks -------------------------------------------------------------------

    def on_start(self) -> None:
        """Called once when the simulation starts; default does nothing."""

    def on_message(self, message: Message) -> None:
        """Handle a delivered message; subclasses must override."""
        raise NotImplementedError

    def on_timer(self, timer_id: str) -> None:
        """Handle a fired timer; default does nothing."""

    # -- internals ---------------------------------------------------------------------

    def _fire_timer(self, timer_id: str) -> None:
        if not self.crashed:
            self.on_timer(timer_id)

    def deliver(self, message: Message) -> None:
        """Called by the network to hand a message to this node."""
        if not self.crashed:
            self.on_message(message)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(node_id={self.node_id!r})"
