"""Simulated network: latency, loss and partitions.

Messages handed to :meth:`SimulatedNetwork.send` are delivered to the
recipient node after a sampled delay, unless they are dropped by the loss
model or blocked by a partition.  All randomness comes from a dedicated
:class:`random.Random` so runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.exceptions import SimulationError
from repro.sim.events import Scheduler
from repro.sim.metrics import MetricsRegistry
from repro.sim.node import Message, SimulatedNode


@dataclass(frozen=True)
class NetworkConfig:
    """Delay and loss parameters of the simulated network.

    Attributes:
        min_delay: lower bound on one-way message delay.
        max_delay: upper bound on one-way message delay (uniformly sampled).
        loss_probability: independent per-message drop probability.
        seed: RNG seed for delay sampling and loss decisions.
    """

    min_delay: float = 0.01
    max_delay: float = 0.05
    loss_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_delay < 0 or self.max_delay < 0:
            raise SimulationError("network delays must be non-negative")
        if self.max_delay < self.min_delay:
            raise SimulationError(
                f"max delay ({self.max_delay}) must be >= min delay ({self.min_delay})"
            )
        if not 0.0 <= self.loss_probability < 1.0:
            raise SimulationError(
                f"loss probability must be in [0, 1), got {self.loss_probability}"
            )


class SimulatedNetwork:
    """Connects :class:`SimulatedNode` instances through a scheduler."""

    def __init__(
        self,
        scheduler: Scheduler,
        config: Optional[NetworkConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.scheduler = scheduler
        self.config = config or NetworkConfig()
        self.metrics = metrics or MetricsRegistry()
        self._nodes: Dict[str, SimulatedNode] = {}
        self._rng = random.Random(self.config.seed)
        self._partitions: Tuple[FrozenSet[str], ...] = ()

    # -- membership -----------------------------------------------------------------

    def register(self, node: SimulatedNode) -> None:
        """Add a node to the network."""
        if node.node_id in self._nodes:
            raise SimulationError(f"node {node.node_id!r} already registered")
        self._nodes[node.node_id] = node
        node.attach(self)

    def register_all(self, nodes: Iterable[SimulatedNode]) -> None:
        for node in nodes:
            self.register(node)

    def node(self, node_id: str) -> SimulatedNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"unknown node {node_id!r}") from None

    def node_ids(self) -> Tuple[str, ...]:
        return tuple(self._nodes.keys())

    def start(self) -> None:
        """Invoke ``on_start`` on every registered node."""
        for node in self._nodes.values():
            node.on_start()

    # -- partitions -------------------------------------------------------------------

    def set_partitions(self, groups: Iterable[Iterable[str]]) -> None:
        """Partition the network into the given groups.

        Nodes in different groups cannot exchange messages; nodes not listed
        in any group form an implicit extra group together.  Pass an empty
        iterable to heal all partitions.
        """
        groups = tuple(frozenset(group) for group in groups)
        listed: Set[str] = set()
        for group in groups:
            overlap = listed & group
            if overlap:
                raise SimulationError(f"nodes {sorted(overlap)} appear in multiple partitions")
            listed |= group
        self._partitions = groups

    def heal_partitions(self) -> None:
        """Remove all partitions."""
        self._partitions = ()

    def _can_communicate(self, sender: str, recipient: str) -> bool:
        if not self._partitions:
            return True
        sender_group = None
        recipient_group = None
        for index, group in enumerate(self._partitions):
            if sender in group:
                sender_group = index
            if recipient in group:
                recipient_group = index
        # Unlisted nodes share the implicit group index None.
        return sender_group == recipient_group

    # -- delivery ---------------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Accept a message for (possible) future delivery."""
        if message.recipient not in self._nodes:
            raise SimulationError(f"unknown recipient {message.recipient!r}")
        self.metrics.increment("messages_sent")
        if not self._can_communicate(message.sender, message.recipient):
            self.metrics.increment("messages_partitioned")
            return
        if self.config.loss_probability > 0 and self._rng.random() < self.config.loss_probability:
            self.metrics.increment("messages_dropped")
            return
        delay = self._rng.uniform(self.config.min_delay, self.config.max_delay)
        self.scheduler.call_later(
            delay,
            lambda: self._deliver(message),
            label=f"deliver:{message.msg_type}:{message.sender}->{message.recipient}",
        )

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.recipient)
        if node is None:  # the node may have been removed mid-flight
            self.metrics.increment("messages_undeliverable")
            return
        self.metrics.increment("messages_delivered")
        node.deliver(message)

    # -- dunder --------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __repr__(self) -> str:
        return (
            f"SimulatedNetwork(nodes={len(self)}, partitions={len(self._partitions)}, "
            f"delay=[{self.config.min_delay}, {self.config.max_delay}])"
        )
