"""Event queue and scheduler for the discrete-event simulator.

Events carry a callback and fire in (time, sequence) order; the sequence
number breaks ties deterministically in insertion order, which keeps runs
reproducible regardless of hash seeds or dictionary ordering.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.exceptions import SimulationError

EventCallback = Callable[[], None]


@dataclass(order=True)
class Event:
    """One scheduled event.

    Events compare by ``(time, sequence)`` so the queue pops them in
    chronological order with deterministic tie-breaking.
    """

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: EventCallback, *, label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        event = Event(time=time, sequence=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SimulationError("event queue is empty")

    def peek_time(self) -> Optional[float]:
        """The time of the next non-cancelled event (``None`` when empty)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class Scheduler:
    """Drives the simulation clock by executing events in order.

    The scheduler owns the clock: ``now`` only advances when an event fires,
    and callbacks schedule future work through :meth:`call_at` /
    :meth:`call_later`.  The run loop stops when the queue drains, when the
    optional time horizon is reached, or when an event limit guards against
    runaway protocols.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_executed = 0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far."""
        return self._events_executed

    def call_at(self, time: float, callback: EventCallback, *, label: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``time`` (not before ``now``)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (now={self._now}, requested={time})"
            )
        return self._queue.push(time, callback, label=label)

    def call_later(self, delay: float, callback: EventCallback, *, label: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, callback, label=label)

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> float:
        """Execute events until the queue drains, ``until`` or ``max_events``.

        Args:
            until: optional time horizon; events scheduled after it stay queued.
            max_events: hard cap on executed events (guards against livelock).

        Returns:
            The simulated time at which the run stopped.
        """
        if max_events <= 0:
            raise SimulationError(f"max events must be positive, got {max_events}")
        self._stopped = False
        executed_this_run = 0
        while not self._stopped:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            event = self._queue.pop()
            self._now = event.time
            event.callback()
            self._events_executed += 1
            executed_this_run += 1
            if executed_this_run >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; likely a livelock"
                )
        return self._now

    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
