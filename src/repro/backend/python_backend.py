"""Dependency-free pure-Python compute backend.

This backend reproduces, bit for bit, the results the analysis layer produced
before the backend seam existed: the same ``random.Random(seed)`` stream, the
same per-trial filter over descending shares and the same sequential float
summation order.  It is the fallback that keeps the reproduction runnable on
a bare Python install, and the reference implementation the vectorized
backends are tested against.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.backend.base import ComputeBackend, TrialBatchResult, validate_trial_arguments
from repro.core import entropy as entropy_module


class PythonBackend(ComputeBackend):
    """Scalar reference implementation of the compute kernels."""

    name = "python"

    def violation_trials(
        self,
        shares: Sequence[float],
        *,
        vulnerability_probability: float,
        exploit_budget: int,
        trials: int,
        seed: int,
        tolerance: float,
    ) -> TrialBatchResult:
        validate_trial_arguments(
            shares,
            vulnerability_probability=vulnerability_probability,
            exploit_budget=exploit_budget,
            trials=trials,
            tolerance=tolerance,
        )
        rng = random.Random(seed)
        violations = 0
        compromised_total = 0.0
        # ``shares`` is descending, and the comprehension preserves order, so
        # the first ``exploit_budget`` vulnerable entries are already the
        # largest ones — no per-trial sort is needed.
        for _ in range(trials):
            vulnerable = [
                share for share in shares if rng.random() < vulnerability_probability
            ]
            compromised = sum(vulnerable[:exploit_budget])
            compromised_total += compromised
            if compromised >= tolerance:
                violations += 1
        return TrialBatchResult(
            trials=trials,
            violations=violations,
            compromised_total=compromised_total,
        )

    def shannon_entropy(self, probabilities: Sequence[float], *, base: float = 2.0) -> float:
        return entropy_module.shannon_entropy(probabilities, base=base)

    def asarray(self, values: Sequence[float]) -> Sequence[float]:
        return tuple(float(value) for value in values)
