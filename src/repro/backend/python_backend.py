"""Dependency-free pure-Python compute backend.

This backend reproduces, bit for bit, the results the analysis layer produced
before the backend seam existed: the same ``random.Random(seed)`` stream, the
same per-trial filter over descending shares and the same sequential float
summation order.  It is the fallback that keeps the reproduction runnable on
a bare Python install, and the reference implementation the vectorized
backends are tested against.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.backend.base import (
    CAMPAIGN_FRACTION_SLACK,
    CampaignBatchResult,
    CampaignGridPoint,
    CampaignGridPointResult,
    ComputeBackend,
    ResolvedGridPoint,
    SparseExposure,
    SparseGridPartial,
    TrialBatchResult,
    _INV_2_53,
    _MASK64,
    _SPLITMIX_GAMMA,
    _SPLITMIX_MIX1,
    _SPLITMIX_MIX2,
    resolve_grid_points,
    validate_campaign_arguments,
    validate_grid_arguments,
    validate_sparse_partial_arguments,
    validate_trial_arguments,
)
from repro.core import entropy as entropy_module
from repro.core.exceptions import BackendError


def _scalar_campaign(
    exposed_rows: Sequence[Sequence[int]],
    powers: Sequence[float],
    probabilities: Sequence[float],
    *,
    trials: int,
    seed: int,
    thresholds: Sequence[float],
    total_power: float,
    trial_offset: int,
) -> Tuple[Tuple[int, ...], float, Tuple[float, ...]]:
    """Shared scalar campaign loop, one exploit draw per multi-threshold verdict.

    ``exposed_rows[c]`` lists the replica rows exposed to local column ``c``;
    the uniform for cell ``(trial, row, column)`` is drawn at counter index
    ``(trial_offset + trial) * R * V + row * V + column`` so a grid point's
    sub-stream matches a standalone :meth:`campaign_trials` call on the
    column-sliced matrix.  Returns per-threshold violation counts plus the
    threshold-independent compromised/per-column totals.
    """
    replica_count = len(powers)
    column_count = len(probabilities)
    seed64 = seed & _MASK64
    cells_per_trial = replica_count * column_count
    violations = [0] * len(thresholds)
    compromised_total = 0.0
    per_vulnerability = [0.0] * column_count
    for trial in range(trials):
        base_index = (trial_offset + trial) * cells_per_trial
        hit = [False] * replica_count
        for column, probability in enumerate(probabilities):
            if probability <= 0.0:
                continue
            certain = probability >= 1.0
            column_power = 0.0
            for row in exposed_rows[column]:
                if not certain:
                    # Inline campaign_uniform (splitmix64) — this is the
                    # scalar hot loop.
                    z = (
                        seed64
                        + (base_index + row * column_count + column + 1)
                        * _SPLITMIX_GAMMA
                    ) & _MASK64
                    z = ((z ^ (z >> 30)) * _SPLITMIX_MIX1) & _MASK64
                    z = ((z ^ (z >> 27)) * _SPLITMIX_MIX2) & _MASK64
                    z ^= z >> 31
                    if (z >> 11) * _INV_2_53 >= probability:
                        continue
                column_power += powers[row]
                hit[row] = True
            per_vulnerability[column] += column_power
        compromised = 0.0
        for row in range(replica_count):
            if hit[row]:
                compromised += powers[row]
        compromised_total += compromised
        fraction = compromised / total_power
        for position, threshold in enumerate(thresholds):
            if fraction >= threshold:
                violations[position] += 1
    return tuple(violations), compromised_total, tuple(per_vulnerability)


def _scalar_campaign_partials(
    exposed_rows: Sequence[Sequence[int]],
    powers: Sequence[float],
    probabilities: Sequence[float],
    *,
    trials: int,
    seed: int,
    trial_offset: int,
    row_offset: int,
    total_rows: int,
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Row-range variant of :func:`_scalar_campaign` without the verdicts.

    Identical iteration (columns, then exposed rows ascending, then the
    ascending-row compromised sum), but the counter index addresses the
    *global* cell — ``(trial_offset + t) * total_rows * V +
    (row_offset + r) * V + c`` — and the per-trial compromised powers are
    returned instead of being compared against thresholds, so row chunks
    merge before the verdict is taken.
    """
    replica_count = len(powers)
    column_count = len(probabilities)
    seed64 = seed & _MASK64
    cells_per_trial = total_rows * column_count
    per_trial: List[float] = []
    per_vulnerability = [0.0] * column_count
    for trial in range(trials):
        base_index = (trial_offset + trial) * cells_per_trial
        hit = [False] * replica_count
        for column, probability in enumerate(probabilities):
            if probability <= 0.0:
                continue
            certain = probability >= 1.0
            column_power = 0.0
            for row in exposed_rows[column]:
                if not certain:
                    # Inline campaign_uniform (splitmix64) — the scalar hot
                    # loop, addressing the global (row_offset + row) cell.
                    z = (
                        seed64
                        + (
                            base_index
                            + (row_offset + row) * column_count
                            + column
                            + 1
                        )
                        * _SPLITMIX_GAMMA
                    ) & _MASK64
                    z = ((z ^ (z >> 30)) * _SPLITMIX_MIX1) & _MASK64
                    z = ((z ^ (z >> 27)) * _SPLITMIX_MIX2) & _MASK64
                    z ^= z >> 31
                    if (z >> 11) * _INV_2_53 >= probability:
                        continue
                column_power += powers[row]
                hit[row] = True
            per_vulnerability[column] += column_power
        compromised = 0.0
        for row in range(replica_count):
            if hit[row]:
                compromised += powers[row]
        per_trial.append(compromised)
    return tuple(per_trial), tuple(per_vulnerability)


class PythonBackend(ComputeBackend):
    """Scalar reference implementation of the compute kernels."""

    name = "python"

    def violation_trials(
        self,
        shares: Sequence[float],
        *,
        vulnerability_probability: float,
        exploit_budget: int,
        trials: int,
        seed: int,
        tolerance: float,
    ) -> TrialBatchResult:
        validate_trial_arguments(
            shares,
            vulnerability_probability=vulnerability_probability,
            exploit_budget=exploit_budget,
            trials=trials,
            tolerance=tolerance,
        )
        rng = random.Random(seed)
        violations = 0
        compromised_total = 0.0
        # ``shares`` is descending, and the comprehension preserves order, so
        # the first ``exploit_budget`` vulnerable entries are already the
        # largest ones — no per-trial sort is needed.
        for _ in range(trials):
            vulnerable = [
                share for share in shares if rng.random() < vulnerability_probability
            ]
            compromised = sum(vulnerable[:exploit_budget])
            compromised_total += compromised
            if compromised >= tolerance:
                violations += 1
        return TrialBatchResult(
            trials=trials,
            violations=violations,
            compromised_total=compromised_total,
        )

    def masked_power_sums(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
    ) -> Tuple[float, ...]:
        if len(exposure) != len(powers):
            raise BackendError(
                f"exposure has {len(exposure)} rows for {len(powers)} replica powers"
            )
        column_count = len(exposure[0]) if len(exposure) else 0
        sums = [0.0] * column_count
        for row, power in zip(exposure, powers):
            if len(row) != column_count:
                raise BackendError(
                    f"exposure row has {len(row)} columns, expected {column_count}"
                )
            for column in range(column_count):
                if row[column]:
                    sums[column] += power
        return tuple(sums)

    def campaign_trials(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        *,
        trials: int,
        seed: int,
        tolerance: float,
        total_power: float,
        trial_offset: int = 0,
    ) -> CampaignBatchResult:
        validate_campaign_arguments(
            exposure,
            powers,
            success_probabilities,
            trials=trials,
            tolerance=tolerance,
            total_power=total_power,
            trial_offset=trial_offset,
        )
        replica_count = len(powers)
        column_count = len(success_probabilities)
        # The counter-based stream lets the scalar path visit *exposed* cells
        # only — skipping a cell never shifts anyone else's uniform, so the
        # results stay bit-identical to the dense array draw.
        exposed_rows: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(row for row in range(replica_count) if exposure[row][column])
            for column in range(column_count)
        )
        violations, compromised_total, per_vulnerability = _scalar_campaign(
            exposed_rows,
            powers,
            success_probabilities,
            trials=trials,
            seed=seed,
            thresholds=(tolerance - CAMPAIGN_FRACTION_SLACK,),
            total_power=total_power,
            trial_offset=trial_offset,
        )
        return CampaignBatchResult(
            trials=trials,
            violations=violations[0],
            compromised_total=compromised_total,
            per_vulnerability_totals=per_vulnerability,
        )

    def campaign_grid(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        points: Sequence[CampaignGridPoint],
        *,
        trials: int,
        seed: int,
        total_power: float,
        trial_offset: int = 0,
        dtype: str = "float64",
        topk: str = "sort",
    ) -> Tuple[CampaignGridPointResult, ...]:
        validate_grid_arguments(
            exposure,
            powers,
            success_probabilities,
            points,
            trials=trials,
            total_power=total_power,
            trial_offset=trial_offset,
            dtype=dtype,
            topk=topk,
        )
        # The scalar backend has no reduced-precision or partition fast path:
        # both knobs fall back to the exact float64/sort route, per contract.
        exposed = (
            self.masked_power_sums(exposure, powers)
            if any(point.budget is not None for point in points)
            else None
        )
        resolved = resolve_grid_points(
            points,
            base_probabilities=success_probabilities,
            seed=seed,
            exposed_powers=exposed,
        )
        replica_count = len(powers)
        results = []
        for point in resolved:
            exposed_rows = tuple(
                tuple(
                    row
                    for row in range(replica_count)
                    if exposure[row][column]
                )
                for column in point.columns
            )
            violations, compromised_total, per_vulnerability = _scalar_campaign(
                exposed_rows,
                powers,
                point.probabilities,
                trials=trials,
                seed=point.seed,
                thresholds=tuple(
                    tolerance - CAMPAIGN_FRACTION_SLACK
                    for tolerance in point.tolerances
                ),
                total_power=total_power,
                trial_offset=trial_offset,
            )
            results.append(
                CampaignGridPointResult(
                    trials=trials,
                    columns=point.columns,
                    violations=violations,
                    compromised_total=compromised_total,
                    per_vulnerability_totals=per_vulnerability,
                )
            )
        return tuple(results)

    def sparse_masked_power_sums(
        self, sparse: SparseExposure
    ) -> Tuple[float, ...]:
        sparse.validate()
        sums = [0.0] * sparse.column_count
        indptr = sparse.indptr
        indices = sparse.indices
        powers = sparse.powers
        # Ascending row order, like the dense scalar reduction.
        for row in range(sparse.replica_count):
            power = powers[row]
            for position in range(indptr[row], indptr[row + 1]):
                sums[indices[position]] += power
        return tuple(sums)

    def sparse_grid_partials(
        self,
        sparse: SparseExposure,
        points: Sequence[ResolvedGridPoint],
        *,
        trials: int,
        trial_offset: int = 0,
        row_offset: int = 0,
        total_rows: Optional[int] = None,
    ) -> Tuple[SparseGridPartial, ...]:
        total = validate_sparse_partial_arguments(
            sparse,
            points,
            trials=trials,
            trial_offset=trial_offset,
            row_offset=row_offset,
            total_rows=total_rows,
        )
        indptr = sparse.indptr
        indices = sparse.indices
        results = []
        for point in points:
            # One CSR pass per point builds the per-local-column exposed-row
            # lists in ascending row order — the dense kernels' column-major
            # iteration layout.
            local = [-1] * sparse.column_count
            for position, column in enumerate(point.columns):
                local[column] = position
            exposed_rows: Tuple[List[int], ...] = tuple(
                [] for _ in point.columns
            )
            for row in range(sparse.replica_count):
                for position in range(indptr[row], indptr[row + 1]):
                    slot = local[indices[position]]
                    if slot != -1:
                        exposed_rows[slot].append(row)
            per_trial, per_vulnerability = _scalar_campaign_partials(
                exposed_rows,
                sparse.powers,
                point.probabilities,
                trials=trials,
                seed=point.seed,
                trial_offset=trial_offset,
                row_offset=row_offset,
                total_rows=total,
            )
            results.append(
                SparseGridPartial(
                    per_trial_compromised=per_trial,
                    per_vulnerability_totals=per_vulnerability,
                )
            )
        return tuple(results)

    def shannon_entropy(self, probabilities: Sequence[float], *, base: float = 2.0) -> float:
        return entropy_module.shannon_entropy(probabilities, base=base)

    def asarray(self, values: Sequence[float]) -> Sequence[float]:
        return tuple(float(value) for value in values)

    def asarray_matrix(
        self, rows: Sequence[Sequence[float]]
    ) -> Tuple[Tuple[float, ...], ...]:
        return tuple(tuple(float(value) for value in row) for row in rows)
