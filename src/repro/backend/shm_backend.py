"""Shared-memory multiprocess compute backend.

The ``shm`` backend runs the four hot campaign kernels —
:meth:`campaign_trials`, :meth:`campaign_grid`,
:meth:`sparse_campaign_trials`, :meth:`sparse_campaign_grid` — by splitting
the trial range across a persistent pool of worker processes.  The
counter-based splitmix64 stream makes trial partitions bit-identical to a
serial run by construction (the same seam ``ShardedCampaignRun`` and
``ShardedGridRun`` already exploit), so fan-out is pure engineering:

- **Build once, map everywhere.**  The exposure/powers arrays (and the CSR
  buffers on the sparse path) are copied into
  :mod:`multiprocessing.shared_memory` segments the first time they are
  seen; workers attach read-only NumPy views by segment name.  No per-call
  pickling of the population — a dispatch ships only the segment names and
  a handful of scalars.
- **Existing merge seams.**  Worker partials merge through
  ``merge_campaign_batches`` / ``merge_campaign_grid_batches`` (dense) and
  per-trial concatenation in offset order (sparse), the exact associations
  the sharding test-suite already pins bit-identical to the serial kernels.
- **Inner NumPy delegation.**  Every non-hot primitive
  (:meth:`violation_trials`, :meth:`masked_power_sums`,
  :meth:`shannon_entropy`, array construction, …) delegates to an inner
  :class:`~repro.backend.numpy_backend.NumpyBackend`, and the workers run
  the NumPy kernels too — the shm backend is a scheduler, not a new
  numerics implementation, which is what keeps it byte-identical to numpy.

On top of the fan-out, the sparse path applies **exact column pruning**:
when the resolved grid points select only a subset of the vulnerability
columns (the top-k budget sweeps), the CSR structure is rebuilt — with
vectorized NumPy ops, never the scalar ``select_columns`` loop — to keep
only the selected columns' cells.  The campaign uniform for a sparse cell
is indexed by ``(trial, global row, position in point.columns)``; none of
those change under pruning, so the pruned kernel draws the identical stream
over the identical cells and the output stays bit-identical, while the
per-trial work drops from O(nnz) to O(nnz restricted to selected columns).
The per-chunk kept-cell presummary also powers an exact chunk skip: a row
chunk with zero selected-column cells contributes exactly-zero partials
without touching a kernel.

Selection: the backend registers *behind* numpy in auto-detection order, so
it is opt-in via ``REPRO_BACKEND=shm`` (or ``--backend shm``).  Environment
knobs:

- ``REPRO_SHM_WORKERS`` — worker-process count (default
  ``min(4, cpu_count)``); changing it recycles the pool on the next call.
- ``REPRO_SHM_PRUNE`` — set to ``0``/``false`` to disable column pruning
  (the benchmark uses this to assert pruned == unpruned exactly).
- ``REPRO_SHM_INLINE_CELLS`` — workloads below this many trial-cells run
  inline on the inner NumPy backend instead of paying a pool round-trip
  (default ``65536``; tests set ``0`` to force the pool path everywhere).

Fork safety: the pool is only ever built in the top-level process.  Inside
a multiprocessing child (an engine shard, an orchestrator worker) dispatch
degrades to the inline NumPy path — nested pools would oversubscribe the
host, and pool workers exit via ``os._exit`` without running ``atexit``,
which would orphan a nested pool's processes into the exit join.  A child
that inherited this instance through ``fork`` also drops the parent's pool
handle and segment cache on first use (they are corpses there); the parent
keeps sole ownership of the published segments.

Per-kernel dispatch timings are recorded into
:data:`repro.backend.timing.KERNEL_TIMINGS` under ``shm_campaign_trials``,
``shm_campaign_grid`` and ``shm_sparse_partials``, so the serve layer's
``/metrics`` endpoint exposes the multiprocess path in production.
"""

from __future__ import annotations

import array as _stdlib_array
import atexit
import importlib
import multiprocessing
import os
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised indirectly via availability_error()
    import numpy as _np
except ImportError:  # pragma: no cover - the numpy-less environment
    _np = None

try:  # pragma: no cover - stdlib, but gate anyway for exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

try:  # pragma: no cover - present wherever shared_memory is
    from multiprocessing import resource_tracker as _resource_tracker
except ImportError:  # pragma: no cover
    _resource_tracker = None

from repro.backend.base import (
    CampaignBatchResult,
    CampaignGridPoint,
    CampaignGridPointResult,
    ComputeBackend,
    ResolvedGridPoint,
    SparseExposure,
    SparseGridPartial,
    TrialBatchResult,
    validate_campaign_arguments,
    validate_grid_arguments,
    validate_sparse_partial_arguments,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.timing import timed_kernel
from repro.core.exceptions import BackendError

#: Environment variable selecting the worker-process count.
WORKERS_ENV_VAR = "REPRO_SHM_WORKERS"

#: Environment variable toggling exact sparse column pruning (default on).
PRUNE_ENV_VAR = "REPRO_SHM_PRUNE"

#: Environment variable overriding the inline-dispatch threshold.
INLINE_ENV_VAR = "REPRO_SHM_INLINE_CELLS"

#: Below this many trial-cells a kernel call runs inline on the inner
#: NumPy backend — a pool round-trip costs more than the arithmetic.
DEFAULT_INLINE_CELL_LIMIT = 1 << 16

_FALSE_VALUES = frozenset({"0", "false", "off", "no"})

#: Parent-side cap on pinned shared-memory publications (LRU evicted).
_PUBLISH_CAPACITY = 16

#: Worker-side cap on attached segment views (LRU evicted).
_ATTACH_CAPACITY = 16

#: Cap on cached per-structure exposed-power presummaries.
_PRESUMMARY_CAPACITY = 8


# -- worker-process side -------------------------------------------------------
#
# Everything below runs inside pool workers.  Workers never call
# ``get_backend`` (which would resolve REPRO_BACKEND=shm right back to this
# module); they hold their own NumpyBackend and a by-name cache of attached
# shared-memory views.

_WORKER_BACKEND: Optional[NumpyBackend] = None
_WORKER_SEGMENTS: "OrderedDict[str, Tuple[object, object]]" = OrderedDict()

#: Whether attaching a segment must be unregistered from this process's
#: resource tracker.  True only for spawn-style pools, where each worker
#: runs its *own* tracker that would otherwise unlink the parent's segment
#: when the worker exits (the Python <= 3.12 register-on-attach behavior).
#: Fork-style pools share the parent's tracker, so the registrations
#: dedupe in one set and a worker-side unregister would instead *steal*
#: the parent's own registration.
_UNREGISTER_ON_ATTACH = False


def _worker_init(unregister_on_attach: bool) -> None:
    global _UNREGISTER_ON_ATTACH
    _UNREGISTER_ON_ATTACH = unregister_on_attach

#: (segment name, dtype string, shape tuple) — all a worker needs to map one
#: published array.
SegmentRef = Tuple[str, str, Tuple[int, ...]]


def _worker_numpy() -> NumpyBackend:
    global _WORKER_BACKEND
    if _WORKER_BACKEND is None:
        _WORKER_BACKEND = NumpyBackend()
    return _WORKER_BACKEND


def _attach_view(ref: SegmentRef):
    """Attach (or reuse) the read-only NumPy view of a published segment."""
    name, dtype, shape = ref
    cached = _WORKER_SEGMENTS.get(name)
    if cached is not None:
        _WORKER_SEGMENTS.move_to_end(name)
        return cached[1]
    segment = _shared_memory.SharedMemory(name=name)
    if _UNREGISTER_ON_ATTACH and _resource_tracker is not None:
        try:
            _resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
    view = _np.ndarray(shape, dtype=_np.dtype(dtype), buffer=segment.buf)
    view.flags.writeable = False
    _WORKER_SEGMENTS[name] = (segment, view)
    while len(_WORKER_SEGMENTS) > _ATTACH_CAPACITY:
        _, (old_segment, old_view) = _WORKER_SEGMENTS.popitem(last=False)
        del old_view
        try:
            old_segment.close()
        except BufferError:  # pragma: no cover - a live export pins the map
            pass
    return view


def _worker_campaign_trials(
    exposure_ref: SegmentRef,
    powers_ref: SegmentRef,
    probabilities: Tuple[float, ...],
    trials: int,
    seed: int,
    tolerance: float,
    total_power: float,
    trial_offset: int,
) -> Tuple[int, int, float, Tuple[float, ...]]:
    """One trial range of :meth:`campaign_trials`, as plain tuples."""
    batch = _worker_numpy().campaign_trials(
        _attach_view(exposure_ref),
        _attach_view(powers_ref),
        probabilities,
        trials=trials,
        seed=seed,
        tolerance=tolerance,
        total_power=total_power,
        trial_offset=trial_offset,
    )
    return (
        batch.trials,
        batch.violations,
        batch.compromised_total,
        batch.per_vulnerability_totals,
    )


def _worker_campaign_grid(
    exposure_ref: SegmentRef,
    powers_ref: SegmentRef,
    probabilities: Tuple[float, ...],
    points: Tuple[CampaignGridPoint, ...],
    trials: int,
    seed: int,
    total_power: float,
    trial_offset: int,
    dtype: str,
    topk: str,
):
    """One trial range of :meth:`campaign_grid`, as plain tuples per point.

    Every worker resolves the grid points itself (top-k over the shared
    exposure is a single small matmul), so point resolution never has to
    cross the process boundary and each range selects identical columns.
    """
    results = _worker_numpy().campaign_grid(
        _attach_view(exposure_ref),
        _attach_view(powers_ref),
        probabilities,
        points,
        trials=trials,
        seed=seed,
        total_power=total_power,
        trial_offset=trial_offset,
        dtype=dtype,
        topk=topk,
    )
    return tuple(
        (
            result.trials,
            result.columns,
            result.violations,
            result.compromised_total,
            result.per_vulnerability_totals,
        )
        for result in results
    )


def _worker_sparse_partials(
    indptr_ref: SegmentRef,
    indices_ref: SegmentRef,
    powers_ref: SegmentRef,
    probabilities: Tuple[float, ...],
    disclosed: Tuple[float, ...],
    points: Tuple[ResolvedGridPoint, ...],
    trials: int,
    trial_offset: int,
    row_offset: int,
    total_rows: int,
):
    """One trial range of :meth:`sparse_grid_partials`, as plain tuples.

    The CSR structure is rebuilt from shared views with the validation flag
    pre-set: the parent already validated the structure once, and the
    O(nnz) scalar re-validation would dwarf the kernel at 10⁷ replicas.
    """
    sparse = SparseExposure(
        indptr=_attach_view(indptr_ref),
        indices=_attach_view(indices_ref),
        powers=_attach_view(powers_ref),
        success_probabilities=probabilities,
        disclosed_at=disclosed,
    )
    object.__setattr__(sparse, "_validated", True)
    partials = _worker_numpy().sparse_grid_partials(
        sparse,
        points,
        trials=trials,
        trial_offset=trial_offset,
        row_offset=row_offset,
        total_rows=total_rows,
    )
    return tuple(
        (partial.per_trial_compromised, partial.per_vulnerability_totals)
        for partial in partials
    )


# -- parent-process side -------------------------------------------------------


def _as_ndarray(values, dtype: str):
    """``values`` as a C-contiguous ndarray of ``dtype`` (zero-copy when it is)."""
    if isinstance(values, _np.ndarray):
        array = values
    elif isinstance(values, _stdlib_array.array):
        array = _np.frombuffer(values, dtype=values.typecode)
    else:
        array = _np.asarray(values)
    return _np.ascontiguousarray(array, dtype=_np.dtype(dtype))


class _SharedSegment:
    """Parent-side handle for one array's shared-memory publication."""

    __slots__ = ("segment", "dtype", "shape")

    def __init__(self, segment, dtype: str, shape: Tuple[int, ...]) -> None:
        self.segment = segment
        self.dtype = dtype
        self.shape = shape

    def ref(self) -> SegmentRef:
        return (self.segment.name, self.dtype, self.shape)

    def release(self) -> None:
        try:
            self.segment.close()
        except BufferError:  # pragma: no cover - a live export pins the map
            return
        try:
            self.segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ShmBackend(ComputeBackend):
    """Multiprocess kernels over shared-memory array views.

    Bit-identical to :class:`NumpyBackend` on every kernel (the workers run
    the NumPy kernels on trial sub-ranges whose merge associations the
    sharding suite already pins); opt-in via ``REPRO_BACKEND=shm``.
    """

    name = "shm"

    _availability_checked = False
    _availability_reason: Optional[str] = None

    def __init__(self) -> None:
        reason = type(self).availability_error()
        if reason is not None:
            raise BackendError(f"shm backend unavailable: {reason}")
        self._inner = NumpyBackend()
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        # id-keyed, strong-ref LRUs: holding the source object pins its id,
        # so a cache hit can never alias a recycled address.
        self._published: "OrderedDict[int, Tuple[object, _SharedSegment]]" = (
            OrderedDict()
        )
        self._presummaries: "OrderedDict[int, Tuple[object, Tuple[float, ...]]]" = (
            OrderedDict()
        )
        atexit.register(self.close)

    # -- availability ----------------------------------------------------------

    @classmethod
    def availability_error(cls) -> Optional[str]:
        if not cls._availability_checked:
            cls._availability_reason = cls._probe()
            cls._availability_checked = True
        return cls._availability_reason

    @classmethod
    def is_available(cls) -> bool:
        return cls.availability_error() is None

    @staticmethod
    def _probe() -> Optional[str]:
        if _np is None:
            return (
                "numpy is not importable (the shm workers run the NumPy "
                "kernels; install numpy or use REPRO_BACKEND=python)"
            )
        if _shared_memory is None:  # pragma: no cover - exotic builds only
            return "multiprocessing.shared_memory is not importable"
        try:
            # Platforms without POSIX semaphores (multiprocessing's
            # synchronize module) cannot host the worker pool at all.
            importlib.import_module("multiprocessing.synchronize")
        except ImportError as error:  # pragma: no cover - platform-specific
            return f"multiprocessing synchronization is unavailable: {error}"
        try:
            probe = _shared_memory.SharedMemory(create=True, size=16)
        except (OSError, ValueError) as error:
            return f"cannot create a shared-memory segment: {error}"
        try:
            probe.close()
            probe.unlink()
        except OSError:  # pragma: no cover - probe cleanup best-effort
            pass
        return None

    # -- configuration ---------------------------------------------------------

    def _worker_count(self) -> int:
        raw = os.environ.get(WORKERS_ENV_VAR)
        if raw is None or not raw.strip():
            return max(1, min(4, os.cpu_count() or 1))
        try:
            value = int(raw)
        except ValueError:
            raise BackendError(
                f"{WORKERS_ENV_VAR} must be a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise BackendError(
                f"{WORKERS_ENV_VAR} must be a positive integer, got {raw!r}"
            )
        return value

    @staticmethod
    def _prune_enabled() -> bool:
        raw = os.environ.get(PRUNE_ENV_VAR)
        if raw is None:
            return True
        return raw.strip().lower() not in _FALSE_VALUES

    @staticmethod
    def _inline_cell_limit() -> int:
        raw = os.environ.get(INLINE_ENV_VAR)
        if raw is None or not raw.strip():
            return DEFAULT_INLINE_CELL_LIMIT
        try:
            value = int(raw)
        except ValueError:
            raise BackendError(
                f"{INLINE_ENV_VAR} must be a non-negative integer, got {raw!r}"
            ) from None
        if value < 0:
            raise BackendError(
                f"{INLINE_ENV_VAR} must be a non-negative integer, got {raw!r}"
            )
        return value

    def _dispatch_workers(self, cells: int) -> int:
        """Pool size for a workload of ``cells`` trial-cells (1 = inline).

        Any multiprocessing child (an engine shard, an orchestrator
        ``--parallel`` worker, a daemonic pool member) degrades to inline.
        Nested pools would oversubscribe the host for no speedup — the
        outer fan-out already owns the cores — and a ``ProcessPoolExecutor``
        worker exits through ``os._exit``, which skips ``atexit``: a nested
        pool built there is never shut down, so the worker's exit handler
        (``multiprocessing.util._exit_function``) joins the orphaned
        grandchildren forever and the outer run deadlocks.  Inline dispatch
        runs the exact inner NumPy kernels, so only the fan-out strategy
        changes, never the bytes.
        """
        workers = self._worker_count()
        if workers <= 1 or cells < self._inline_cell_limit():
            return 1
        current = multiprocessing.current_process()
        if multiprocessing.parent_process() is not None or current.daemon:
            return 1
        return workers

    # -- pool and publication management ---------------------------------------

    def _reset_after_fork_locked(self) -> None:
        """Drop state inherited through ``fork`` — it is not ours.

        The selection cache is process-global, so a forked worker (an engine
        shard, an orchestrator ``--parallel`` child) inherits this very
        instance.  Its pool object is a corpse there — the executor's feeder
        thread died in the fork, so a submit would hang forever — and its
        published segments belong to the parent, which may unlink them at
        any time.  First use in a new process discards both; the child
        rebuilds its own pool and publications on demand.
        """
        if self._pid == os.getpid():
            return
        self._pool = None
        self._pool_workers = 0
        self._published.clear()
        self._presummaries.clear()
        self._pid = os.getpid()

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        with self._lock:
            self._reset_after_fork_locked()
            if self._pool is not None and self._pool_workers != workers:
                stale, self._pool = self._pool, None
            else:
                stale = None
        if stale is not None:
            # Shut the stale pool down outside the lock; REPRO_SHM_WORKERS
            # changed and the next call deserves the requested width.
            stale.shutdown(wait=True)
        with self._lock:
            if self._pool is None:
                # Prefer fork: workers inherit the attached segments' fds
                # cheaply and share the parent's resource tracker (see
                # _worker_init for the unregister-on-attach asymmetry).
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=context,
                    initializer=_worker_init,
                    initargs=(context.get_start_method() != "fork",),
                )
                self._pool_workers = workers
            return self._pool

    def _discard_pool(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            self._pool_workers = 0
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _publish(self, values, dtype: str) -> SegmentRef:
        """Pin ``values`` into shared memory once; return the worker ref."""
        key = id(values)
        with self._lock:
            self._reset_after_fork_locked()
            entry = self._published.get(key)
            if entry is not None and entry[0] is values and entry[1].dtype == dtype:
                self._published.move_to_end(key)
                return entry[1].ref()
        source = _as_ndarray(values, dtype)
        segment = _shared_memory.SharedMemory(
            create=True, size=max(1, source.nbytes)
        )
        staged = _np.ndarray(source.shape, dtype=source.dtype, buffer=segment.buf)
        staged[...] = source
        del staged  # drop the buffer export so release() can close the map
        handle = _SharedSegment(segment, dtype, tuple(source.shape))
        evicted: List[_SharedSegment] = []
        with self._lock:
            self._published[key] = (values, handle)
            while len(self._published) > _PUBLISH_CAPACITY:
                _, (_, old_handle) = self._published.popitem(last=False)
                evicted.append(old_handle)
        for old_handle in evicted:
            old_handle.release()
        return handle.ref()

    def close(self) -> None:
        """Shut the worker pool down and unlink every published segment."""
        with self._lock:
            self._reset_after_fork_locked()
            pool, self._pool = self._pool, None
            self._pool_workers = 0
            published = [handle for _, handle in self._published.values()]
            self._published.clear()
            self._presummaries.clear()
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        for handle in published:
            handle.release()

    # -- delegated primitives --------------------------------------------------

    def violation_trials(
        self,
        shares: Sequence[float],
        *,
        vulnerability_probability: float,
        exploit_budget: int,
        trials: int,
        seed: int,
        tolerance: float,
    ) -> TrialBatchResult:
        return self._inner.violation_trials(
            shares,
            vulnerability_probability=vulnerability_probability,
            exploit_budget=exploit_budget,
            trials=trials,
            seed=seed,
            tolerance=tolerance,
        )

    def masked_power_sums(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
    ) -> Tuple[float, ...]:
        return self._inner.masked_power_sums(exposure, powers)

    def shannon_entropy(
        self, probabilities: Sequence[float], *, base: float = 2.0
    ) -> float:
        return self._inner.shannon_entropy(probabilities, base=base)

    def asarray(self, values: Sequence[float]) -> Sequence[float]:
        return self._inner.asarray(values)

    def asarray_matrix(
        self, rows: Sequence[Sequence[float]]
    ) -> Sequence[Sequence[float]]:
        return self._inner.asarray_matrix(rows)

    def sparse_masked_power_sums(self, sparse: SparseExposure) -> Tuple[float, ...]:
        """Exposed-power presummary, cached per CSR structure.

        The budget top-k resolution consults this once per structure; the
        cached tuple is the NumPy reduction verbatim, so the resolved
        columns — and the pruning derived from them — match the plain NumPy
        backend exactly.
        """
        key = id(sparse)
        with self._lock:
            entry = self._presummaries.get(key)
            if entry is not None and entry[0] is sparse:
                self._presummaries.move_to_end(key)
                return entry[1]
        sums = self._inner.sparse_masked_power_sums(sparse)
        with self._lock:
            self._presummaries[key] = (sparse, sums)
            while len(self._presummaries) > _PRESUMMARY_CAPACITY:
                self._presummaries.popitem(last=False)
        return sums

    # -- hot kernels -----------------------------------------------------------

    def campaign_trials(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        *,
        trials: int,
        seed: int,
        tolerance: float,
        total_power: float,
        trial_offset: int = 0,
    ) -> CampaignBatchResult:
        validate_campaign_arguments(
            exposure,
            powers,
            success_probabilities,
            trials=trials,
            tolerance=tolerance,
            total_power=total_power,
            trial_offset=trial_offset,
        )
        workers = self._dispatch_workers(
            trials * len(powers) * len(success_probabilities)
        )
        with timed_kernel("shm_campaign_trials", trials=trials):
            if workers <= 1:
                return self._inner.campaign_trials(
                    exposure,
                    powers,
                    success_probabilities,
                    trials=trials,
                    seed=seed,
                    tolerance=tolerance,
                    total_power=total_power,
                    trial_offset=trial_offset,
                )
            from repro.faults.engine import (
                merge_campaign_batches,
                split_trial_ranges,
            )

            ranges = split_trial_ranges(trials, workers)
            exposure_ref = self._publish(exposure, "float64")
            powers_ref = self._publish(powers, "float64")
            probabilities = tuple(float(p) for p in success_probabilities)
            pool = self._ensure_pool(workers)
            try:
                futures = [
                    pool.submit(
                        _worker_campaign_trials,
                        exposure_ref,
                        powers_ref,
                        probabilities,
                        count,
                        seed,
                        tolerance,
                        total_power,
                        trial_offset + offset,
                    )
                    for offset, count in ranges
                ]
                payloads = [future.result() for future in futures]
            except BrokenProcessPool:  # pragma: no cover - crashed workers
                self._discard_pool()
                return self._inner.campaign_trials(
                    exposure,
                    powers,
                    success_probabilities,
                    trials=trials,
                    seed=seed,
                    tolerance=tolerance,
                    total_power=total_power,
                    trial_offset=trial_offset,
                )
            batches = [
                CampaignBatchResult(
                    trials=payload[0],
                    violations=payload[1],
                    compromised_total=payload[2],
                    per_vulnerability_totals=tuple(payload[3]),
                )
                for payload in payloads
            ]
            return merge_campaign_batches(batches)

    def campaign_grid(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        points: Sequence[CampaignGridPoint],
        *,
        trials: int,
        seed: int,
        total_power: float,
        trial_offset: int = 0,
        dtype: str = "float64",
        topk: str = "sort",
    ) -> Tuple[CampaignGridPointResult, ...]:
        validate_grid_arguments(
            exposure,
            powers,
            success_probabilities,
            points,
            trials=trials,
            total_power=total_power,
            trial_offset=trial_offset,
            dtype=dtype,
            topk=topk,
        )
        workers = self._dispatch_workers(
            trials
            * len(powers)
            * len(success_probabilities)
            * max(1, len(points))
        )
        with timed_kernel("shm_campaign_grid", trials=trials * len(points)):
            if workers <= 1:
                return self._inner.campaign_grid(
                    exposure,
                    powers,
                    success_probabilities,
                    points,
                    trials=trials,
                    seed=seed,
                    total_power=total_power,
                    trial_offset=trial_offset,
                    dtype=dtype,
                    topk=topk,
                )
            from repro.faults.engine import (
                merge_campaign_grid_batches,
                split_trial_ranges,
            )

            ranges = split_trial_ranges(trials, workers)
            exposure_ref = self._publish(exposure, "float64")
            powers_ref = self._publish(powers, "float64")
            probabilities = tuple(float(p) for p in success_probabilities)
            staged_points = tuple(points)
            pool = self._ensure_pool(workers)
            try:
                futures = [
                    pool.submit(
                        _worker_campaign_grid,
                        exposure_ref,
                        powers_ref,
                        probabilities,
                        staged_points,
                        count,
                        seed,
                        total_power,
                        trial_offset + offset,
                        dtype,
                        topk,
                    )
                    for offset, count in ranges
                ]
                payloads = [future.result() for future in futures]
            except BrokenProcessPool:  # pragma: no cover - crashed workers
                self._discard_pool()
                return self._inner.campaign_grid(
                    exposure,
                    powers,
                    success_probabilities,
                    points,
                    trials=trials,
                    seed=seed,
                    total_power=total_power,
                    trial_offset=trial_offset,
                    dtype=dtype,
                    topk=topk,
                )
            batches = [
                tuple(
                    CampaignGridPointResult(
                        trials=point[0],
                        columns=tuple(point[1]),
                        violations=tuple(point[2]),
                        compromised_total=point[3],
                        per_vulnerability_totals=tuple(point[4]),
                    )
                    for point in payload
                )
                for payload in payloads
            ]
            return merge_campaign_grid_batches(batches)

    def sparse_grid_partials(
        self,
        sparse: SparseExposure,
        points: Sequence[ResolvedGridPoint],
        *,
        trials: int,
        trial_offset: int = 0,
        row_offset: int = 0,
        total_rows: Optional[int] = None,
    ) -> Tuple[SparseGridPartial, ...]:
        total = validate_sparse_partial_arguments(
            sparse,
            points,
            trials=trials,
            trial_offset=trial_offset,
            row_offset=row_offset,
            total_rows=total_rows,
        )
        staged_points = tuple(points)
        work_sparse, work_points = self._pruned_workload(sparse, staged_points)
        with timed_kernel(
            "shm_sparse_partials", trials=trials * max(1, len(staged_points))
        ):
            if work_sparse.nnz == 0:
                # Exact chunk skip: with no selected-column cells in this row
                # range, every trial compromises nothing here — the kernels
                # would return these exact zeros after an O(nnz) scan.
                return tuple(
                    SparseGridPartial(
                        per_trial_compromised=(0.0,) * trials,
                        per_vulnerability_totals=(0.0,) * len(point.columns),
                    )
                    for point in staged_points
                )
            workers = self._dispatch_workers(trials * work_sparse.nnz)
            if workers <= 1:
                return self._inner.sparse_grid_partials(
                    work_sparse,
                    work_points,
                    trials=trials,
                    trial_offset=trial_offset,
                    row_offset=row_offset,
                    total_rows=total,
                )
            from repro.faults.engine import split_trial_ranges

            ranges = split_trial_ranges(trials, workers)
            indptr_ref = self._publish(work_sparse.indptr, "int64")
            indices_ref = self._publish(work_sparse.indices, "int64")
            powers_ref = self._publish(work_sparse.powers, "float64")
            probabilities = tuple(
                float(p) for p in work_sparse.success_probabilities
            )
            disclosed = tuple(float(t) for t in work_sparse.disclosed_at)
            pool = self._ensure_pool(workers)
            try:
                futures = [
                    pool.submit(
                        _worker_sparse_partials,
                        indptr_ref,
                        indices_ref,
                        powers_ref,
                        probabilities,
                        disclosed,
                        work_points,
                        count,
                        trial_offset + offset,
                        row_offset,
                        total,
                    )
                    for offset, count in ranges
                ]
                payloads = [future.result() for future in futures]
            except BrokenProcessPool:  # pragma: no cover - crashed workers
                self._discard_pool()
                return self._inner.sparse_grid_partials(
                    work_sparse,
                    work_points,
                    trials=trials,
                    trial_offset=trial_offset,
                    row_offset=row_offset,
                    total_rows=total,
                )
            return self._merge_sparse_ranges(staged_points, payloads)

    @staticmethod
    def _merge_sparse_ranges(
        points: Tuple[ResolvedGridPoint, ...],
        payloads: Sequence[Sequence[Tuple[Tuple[float, ...], Tuple[float, ...]]]],
    ) -> Tuple[SparseGridPartial, ...]:
        """Merge trial-range partials back into full-range partials.

        ``per_trial_compromised`` concatenates in offset order (each trial's
        value comes from exactly one range — exact); the per-column totals
        sum in offset order, the association the serial kernel's own trial
        batching uses (dyadic-power caveat, like every existing merge seam).
        """
        merged = []
        for position, point in enumerate(points):
            per_trial: List[float] = []
            per_vulnerability = [0.0] * len(point.columns)
            for payload in payloads:
                range_trials, range_totals = payload[position]
                per_trial.extend(range_trials)
                for column, value in enumerate(range_totals):
                    per_vulnerability[column] += value
            merged.append(
                SparseGridPartial(
                    per_trial_compromised=tuple(per_trial),
                    per_vulnerability_totals=tuple(per_vulnerability),
                )
            )
        return tuple(merged)

    # -- exact column pruning --------------------------------------------------

    def _pruned_workload(
        self,
        sparse: SparseExposure,
        points: Tuple[ResolvedGridPoint, ...],
    ) -> Tuple[SparseExposure, Tuple[ResolvedGridPoint, ...]]:
        """Drop CSR cells in columns no grid point selects — exactly.

        The campaign uniform for a sparse cell is indexed by the trial, the
        *global* row and the cell's position within ``point.columns``; the
        CSR column numbering never enters the stream.  Rebuilding the
        structure over the selected-column union (ascending, so within-row
        order is preserved) and renumbering each point's columns to union
        positions therefore draws the identical uniforms over the identical
        cells — output is bit-identical while every unselected column's
        cells vanish from the per-trial scan.  Disabled via REPRO_SHM_PRUNE=0.
        """
        if not points or not self._prune_enabled():
            return sparse, points
        column_count = sparse.column_count
        union = sorted({column for point in points for column in point.columns})
        if len(union) >= column_count:
            return sparse, points
        indptr = _as_ndarray(sparse.indptr, "int64")
        indices = _as_ndarray(sparse.indices, "int64")
        lut = _np.full(column_count, -1, dtype=_np.int64)
        lut[_np.asarray(union, dtype=_np.int64)] = _np.arange(
            len(union), dtype=_np.int64
        )
        local = lut[indices]
        keep = local >= 0
        # The kept-cell presummary: prefix[i] = kept cells before position i,
        # so gathering it at the original indptr *is* the pruned indptr.
        prefix = _np.zeros(len(indices) + 1, dtype=_np.int64)
        _np.cumsum(keep, dtype=_np.int64, out=prefix[1:])
        new_indptr = prefix[indptr]
        new_indices = local[keep]
        pruned = SparseExposure(
            indptr=new_indptr,
            indices=new_indices,
            powers=sparse.powers,
            success_probabilities=tuple(
                float(sparse.success_probabilities[column]) for column in union
            ),
            disclosed_at=tuple(
                float(sparse.disclosed_at[column]) for column in union
            ),
        )
        object.__setattr__(pruned, "_validated", True)
        remapped = tuple(
            ResolvedGridPoint(
                columns=tuple(int(lut[column]) for column in point.columns),
                probabilities=point.probabilities,
                tolerances=point.tolerances,
                seed=point.seed,
            )
            for point in points
        )
        return pruned, remapped
