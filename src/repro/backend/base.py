"""Abstract interface every compute backend implements.

A :class:`ComputeBackend` bundles the numeric hot paths of the reproduction —
batched Monte-Carlo vulnerability trials, Shannon entropy and weighted label
accumulation — behind one seam, so the same analysis code can run on the
dependency-free pure-Python implementation or on a vectorized NumPy one.

The contract every implementation must honor:

- **Determinism per backend.** Given identical arguments (including the
  seed), repeated calls return identical results.  Different backends may use
  different RNG streams, so cross-backend results agree only statistically
  (within Monte-Carlo tolerance), while *verdict*-level quantities derived
  from exact share arithmetic (e.g. "can a single exploit reach the
  tolerance") agree exactly.
- **Semantics over speed.** Both backends implement the same trial model: in
  each trial every configuration independently turns out vulnerable with
  probability ``p``, the attacker exploits the ``budget`` largest vulnerable
  shares, and the trial violates safety when the compromised power reaches
  the tolerance.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence, Tuple

#: Slack applied when a compromised-power *fraction* is compared against a
#: tolerance (mirrors ``CampaignOutcome.violates``): a trial violates safety
#: when ``compromised / total >= tolerance - CAMPAIGN_FRACTION_SLACK``.
CAMPAIGN_FRACTION_SLACK = 1e-12

# -- counter-based campaign RNG ------------------------------------------------
#
# The campaign kernels draw their per-(trial, replica, vulnerability) exploit
# indicators from a *counter-based* splitmix64 stream instead of a sequential
# generator: uniform #n depends only on (seed, n), never on how many draws
# came before it.  That is what makes the batched NumPy kernel and the scalar
# fallback bit-identical — the scalar path may skip unexposed cells entirely
# while the array path masks them after a dense draw, and both still read the
# exact same uniforms for the cells that matter.

_MASK64 = (1 << 64) - 1
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_SPLITMIX_MIX1 = 0xBF58476D1CE4E5B9
_SPLITMIX_MIX2 = 0x94D049BB133111EB
_INV_2_53 = 1.0 / (1 << 53)


def campaign_uniform(seed: int, index: int) -> float:
    """Uniform in ``[0, 1)`` for cell ``index`` of the seeded campaign stream.

    This is the scalar reference implementation (splitmix64 finalizer over a
    Weyl sequence); array backends must reproduce it bit for bit.
    """
    z = ((seed & _MASK64) + ((index + 1) * _SPLITMIX_GAMMA)) & _MASK64
    z = ((z ^ (z >> 30)) * _SPLITMIX_MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _SPLITMIX_MIX2) & _MASK64
    z ^= z >> 31
    return (z >> 11) * _INV_2_53


@dataclass(frozen=True)
class TrialBatchResult:
    """Aggregate outcome of a batch of Monte-Carlo vulnerability trials.

    Attributes:
        trials: number of trials simulated.
        violations: trials in which compromised power reached the tolerance.
        compromised_total: sum of compromised power fractions over all trials
            (``compromised_total / trials`` is the mean compromised fraction).
    """

    trials: int
    violations: int
    compromised_total: float


@dataclass(frozen=True)
class CampaignBatchResult:
    """Aggregate outcome of a batch of randomized exploit-campaign trials.

    Attributes:
        trials: number of campaign trials simulated.
        violations: trials whose compromised-power fraction reached the
            tolerance (with :data:`CAMPAIGN_FRACTION_SLACK`).
        compromised_total: sum of compromised voting power (absolute units)
            over all trials; ``compromised_total / (trials * total_power)``
            is the mean compromised fraction.
        per_vulnerability_totals: per-column sums of the power compromised
            through each exploited vulnerability (the ``f_t^i`` of Section
            II-C), accumulated over all trials in column order.
    """

    trials: int
    violations: int
    compromised_total: float
    per_vulnerability_totals: Tuple[float, ...]


@dataclass(frozen=True)
class CampaignGridPoint:
    """One scenario point of a fused campaign grid.

    A grid point selects a subset of the shared exposure matrix's columns —
    either explicitly (``columns``, in selection order) or as the ``budget``
    most damaging columns by exposed power (ranked descending, column index
    as tie-break) — and pins the per-point randomness and verdicts:

    Attributes:
        tolerances: compromised-power fractions evaluated as verdicts on the
            same sampled trials (one exploit draw, several thresholds).
        columns: explicit column indices into the shared matrix, in the
            order the per-point kernel sees them (mutually exclusive with
            ``budget``).
        budget: select the top-``budget`` columns by exposed power inside
            the kernel instead of naming them (the ``topk`` option picks the
            ranking algorithm).
        success_probabilities: per-selected-column exploit probabilities
            overriding the matrix-wide vector (aligned with ``columns``).
        success_probability: scalar override applied to every selected
            column (how a reliability sweep varies one knob per point).
        seed_offset: the point's RNG seed is ``seed + seed_offset``; its
            sub-stream is exactly the stream a standalone
            :meth:`ComputeBackend.campaign_trials` call with that seed draws
            on the column-sliced matrix.
    """

    tolerances: Tuple[float, ...]
    columns: Optional[Tuple[int, ...]] = None
    budget: Optional[int] = None
    success_probabilities: Optional[Tuple[float, ...]] = None
    success_probability: Optional[float] = None
    seed_offset: int = 0


@dataclass(frozen=True)
class ResolvedGridPoint:
    """A grid point after validation: explicit columns, probabilities, seed."""

    columns: Tuple[int, ...]
    probabilities: Tuple[float, ...]
    tolerances: Tuple[float, ...]
    seed: int


@dataclass(frozen=True)
class CampaignGridPointResult:
    """One grid point's aggregate campaign outcome.

    Equivalent to a :class:`CampaignBatchResult` per tolerance, sharing the
    trial draws: ``violations[k]`` is the violation count at
    ``tolerances[k]``, while ``compromised_total`` and
    ``per_vulnerability_totals`` (aligned with ``columns``) are
    tolerance-independent.
    """

    trials: int
    columns: Tuple[int, ...]
    violations: Tuple[int, ...]
    compromised_total: float
    per_vulnerability_totals: Tuple[float, ...]


#: Accepted values of ``campaign_grid``'s accumulation-dtype fast-path knob.
GRID_DTYPES = ("float64", "float32")
#: Accepted values of ``campaign_grid``'s top-k selection knob.
GRID_TOPK_MODES = ("sort", "argpartition")


def grid_topk_columns(
    exposed_powers: Sequence[float], count: int
) -> Tuple[int, ...]:
    """The ``count`` columns with the largest exposed power.

    Ranked by descending power with the column index as tie-break — the
    exact (``topk="sort"``) selection both backends share.  ``count`` beyond
    the column count selects every column.
    """
    order = sorted(
        range(len(exposed_powers)), key=lambda c: (-exposed_powers[c], c)
    )
    return tuple(order[:count])


class ComputeBackend(abc.ABC):
    """Numeric kernel provider for the analysis layer.

    Subclasses are stateless; one shared instance per backend is cached by
    :func:`repro.backend.get_backend`.
    """

    #: Registry name of the backend ("python", "numpy", ...).
    name: str = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether the backend can run in the current environment."""
        return True

    # -- Monte-Carlo kernel -----------------------------------------------------

    @abc.abstractmethod
    def violation_trials(
        self,
        shares: Sequence[float],
        *,
        vulnerability_probability: float,
        exploit_budget: int,
        trials: int,
        seed: int,
        tolerance: float,
    ) -> TrialBatchResult:
        """Run ``trials`` independent vulnerability scenarios.

        Args:
            shares: voting-power shares sorted in descending order (callers
                are responsible for the sort; backends rely on it to take the
                ``exploit_budget`` largest vulnerable shares without
                re-sorting per trial).
            vulnerability_probability: per-configuration vulnerability
                probability in ``[0, 1]``.
            exploit_budget: number of vulnerable configurations the attacker
                exploits simultaneously (greedily, largest shares first).
            trials: number of scenarios to sample (positive).
            seed: RNG seed; fixes the backend's stream deterministically.
            tolerance: compromised-power fraction at which a trial counts as
                a safety violation.
        """

    # -- campaign kernels -------------------------------------------------------

    @abc.abstractmethod
    def masked_power_sums(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
    ) -> Tuple[float, ...]:
        """Per-column masked power reduction: ``powers @ exposure``.

        ``exposure`` is a replicas × vulnerabilities 0/1 matrix (each row the
        indicator vector of one replica's fault domains) and ``powers`` the
        per-replica voting power; the result is each vulnerability's exposed
        power — the ``f_t^i`` upper bound before exploit reliability.

        Array backends reduce along the replica axis with their native
        (pairwise) summation; the scalar fallback sums sequentially in row
        order.  The two are bit-identical whenever the power values sum
        exactly in float64 (integers and other dyadic rationals — every
        shipped scenario), and agree to float tolerance otherwise.
        """

    @abc.abstractmethod
    def campaign_trials(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        *,
        trials: int,
        seed: int,
        tolerance: float,
        total_power: float,
        trial_offset: int = 0,
    ) -> CampaignBatchResult:
        """Run ``trials`` randomized exploit campaigns over an exposure matrix.

        In every trial, each (replica, vulnerability) cell with
        ``exposure[r][v] != 0`` is independently compromised with probability
        ``success_probabilities[v]``; a replica compromised through *any*
        vulnerability contributes its power once to the trial's compromised
        total (and to each relevant per-vulnerability ``f_t^i``), and the
        trial violates safety when the compromised fraction of
        ``total_power`` reaches ``tolerance`` (slack
        :data:`CAMPAIGN_FRACTION_SLACK`).

        The exploit indicator for cell ``(t, r, v)`` is
        ``campaign_uniform(seed, t*R*V + r*V + v) < success_probabilities[v]``
        with ``R = len(powers)`` and ``V = len(success_probabilities)``, so
        every backend draws the **same stream** and the results are
        bit-identical across backends (float reductions under the same
        dyadic-power caveat as :meth:`masked_power_sums`; the violation
        verdicts and counts agree exactly for the shipped scenarios).

        ``trial_offset`` shifts the trial counter: the call computes trials
        ``trial_offset .. trial_offset + trials - 1`` of the logical
        campaign, drawing the exact uniforms a single full-range call would
        draw for those trials.  This is the sharding seam — a worker
        computing ``[lo, hi)`` with ``trial_offset=lo`` produces the same
        per-trial outcomes as the serial run, so shard results sum back to
        the serial result and a retried shard is bit-identical to its first
        attempt.
        """

    @abc.abstractmethod
    def campaign_grid(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        points: Sequence[CampaignGridPoint],
        *,
        trials: int,
        seed: int,
        total_power: float,
        trial_offset: int = 0,
        dtype: str = "float64",
        topk: str = "sort",
    ) -> Tuple[CampaignGridPointResult, ...]:
        """Run ``trials`` campaigns at every grid point in one fused call.

        The whole grid shares one staged ``exposure`` matrix, ``powers``
        vector and base ``success_probabilities`` vector; each point selects
        columns (explicitly or by ``budget`` top-k) and may override the
        probabilities.  Per point ``p``, the exploit indicator for trial
        ``t`` and local cell ``(r, v)`` is::

            campaign_uniform(seed + p.seed_offset,
                             (trial_offset + t) * R * V_p + r * V_p + v)
                < probability_p[v]

        with ``V_p = len(columns_p)`` — exactly the stream a standalone
        :meth:`campaign_trials` call on the column-sliced matrix with seed
        ``seed + p.seed_offset`` draws.  In the default mode
        (``dtype="float64"``) every point's result is therefore
        **bit-identical** to the per-point loop it replaces, across
        backends, under the same dyadic-power summation caveat as
        :meth:`campaign_trials`; all the fused call removes is the repeated
        Python dispatch, RNG staging and matrix slicing.  Each point
        evaluates every entry of ``tolerances`` as a verdict on the same
        sampled trials, so tolerance pairs (BFT vs majority) cost one draw.

        ``trial_offset`` shifts every point's trial counter exactly as in
        :meth:`campaign_trials` — chunked and sharded grid runs partition
        the serial trial sequence invisibly.

        Fast paths (opt-in, *tolerance*-pinned rather than byte-pinned):
        ``dtype="float32"`` draws reduced-precision uniforms and accumulates
        compromised power in float32 (Monte-Carlo noise dominates the
        difference); ``topk="argpartition"`` ranks ``budget`` selections via
        ``numpy.argpartition`` on the NumPy backend (ties straddling the
        partition boundary may select differently).  Backends without a
        faster implementation fall back to the exact path — never an error.
        """

    # -- entropy kernel ---------------------------------------------------------

    @abc.abstractmethod
    def shannon_entropy(self, probabilities: Sequence[float], *, base: float = 2.0) -> float:
        """Shannon entropy of an already-validated probability vector.

        Zero entries contribute nothing (the paper's ``0 * log(1/0) = 0``
        convention).  Validation (non-negativity, normalization) is the
        caller's job — this is the inner-loop kernel only.
        """

    # -- weighted accumulation kernel -------------------------------------------

    def weighted_bincount(
        self,
        labels: Sequence[Hashable],
        weights: Sequence[float],
    ) -> Dict[Hashable, float]:
        """Sum ``weights`` grouped by label, preserving first-appearance order.

        The returned dict maps each distinct label to the sum of the weights
        at its positions; iteration order matches the order in which labels
        first appear, so downstream :class:`ConfigurationDistribution`
        construction is identical across backends.

        The dict accumulation here is the shared default: census labels are
        arbitrary hashables (usually strings), which array libraries can
        only group via an object-dtype sort that loses to a plain hash loop.
        Backends with a genuinely faster grouping may override.
        """
        accumulated: Dict[Hashable, float] = {}
        for label, weight in zip(labels, weights):
            accumulated[label] = accumulated.get(label, 0.0) + float(weight)
        return accumulated

    # -- array construction -----------------------------------------------------

    @abc.abstractmethod
    def asarray(self, values: Sequence[float]) -> Sequence[float]:
        """The backend's preferred array representation of a float sequence.

        The pure-Python backend returns a tuple; array backends return their
        native array type, frozen read-only.  :class:`ConfigurationDistribution`
        caches the result per backend so hot paths hand the kernels a
        ready-made array instead of rebuilding one per call — callers must
        treat it as immutable (copy before mutating).
        """

    @abc.abstractmethod
    def asarray_matrix(
        self, rows: Sequence[Sequence[float]]
    ) -> Sequence[Sequence[float]]:
        """The backend's preferred 2-D representation of a row-major matrix.

        The pure-Python backend returns a tuple of row tuples; array backends
        return their native 2-D array, frozen read-only.
        :class:`~repro.faults.matrix.PopulationMatrix` caches the result per
        backend so the campaign kernels receive a ready-made matrix — callers
        must treat it as immutable.
        """

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


def validate_trial_arguments(
    shares: Sequence[float],
    *,
    vulnerability_probability: float,
    exploit_budget: int,
    trials: int,
    tolerance: float,
) -> None:
    """Shared argument validation for :meth:`ComputeBackend.violation_trials`.

    Raises :class:`~repro.core.exceptions.BackendError` on invalid input so a
    backend never has to trust its caller.
    """
    from repro.core.exceptions import BackendError

    if len(shares) == 0:
        raise BackendError("violation_trials needs at least one share")
    if not 0.0 <= vulnerability_probability <= 1.0:
        raise BackendError(
            f"vulnerability probability must be in [0, 1], got {vulnerability_probability}"
        )
    if exploit_budget < 0:
        raise BackendError(f"exploit budget must be non-negative, got {exploit_budget}")
    if trials <= 0:
        raise BackendError(f"trial count must be positive, got {trials}")
    if not 0.0 < tolerance <= 1.0:
        raise BackendError(f"tolerance must be in (0, 1], got {tolerance}")
    if any(later > earlier for earlier, later in zip(shares, shares[1:])):
        raise BackendError("shares must be sorted in descending order")


def validate_campaign_arguments(
    exposure: Sequence[Sequence[float]],
    powers: Sequence[float],
    success_probabilities: Sequence[float],
    *,
    trials: int,
    tolerance: float,
    total_power: float,
    trial_offset: int = 0,
) -> None:
    """Shared argument validation for :meth:`ComputeBackend.campaign_trials`."""
    from repro.core.exceptions import BackendError

    replica_count = len(powers)
    column_count = len(success_probabilities)
    if replica_count == 0:
        raise BackendError("campaign_trials needs at least one replica")
    if column_count == 0:
        raise BackendError("campaign_trials needs at least one vulnerability")
    if len(exposure) != replica_count:
        raise BackendError(
            f"exposure has {len(exposure)} rows for {replica_count} replicas"
        )
    for row in exposure:
        if len(row) != column_count:
            raise BackendError(
                f"exposure row has {len(row)} columns for "
                f"{column_count} vulnerabilities"
            )
    if any(power < 0 for power in powers):
        raise BackendError("replica powers must be non-negative")
    if any(not 0.0 <= p <= 1.0 for p in success_probabilities):
        raise BackendError("success probabilities must be in [0, 1]")
    if trials <= 0:
        raise BackendError(f"trial count must be positive, got {trials}")
    if trial_offset < 0:
        raise BackendError(f"trial offset must be non-negative, got {trial_offset}")
    if not 0.0 < tolerance <= 1.0:
        raise BackendError(f"tolerance must be in (0, 1], got {tolerance}")
    if total_power <= 0:
        raise BackendError(f"total power must be positive, got {total_power}")


def validate_grid_arguments(
    exposure: Sequence[Sequence[float]],
    powers: Sequence[float],
    success_probabilities: Sequence[float],
    points: Sequence[CampaignGridPoint],
    *,
    trials: int,
    total_power: float,
    trial_offset: int = 0,
    dtype: str = "float64",
    topk: str = "sort",
) -> None:
    """Shared argument validation for :meth:`ComputeBackend.campaign_grid`.

    Rejects empty grids, duplicate grid points and malformed scenario
    parameters (NaN/out-of-range tolerances and probabilities, bad column
    selections) with a :class:`~repro.core.exceptions.BackendError` so a
    fused call never silently produces a zero-length or garbage result.
    """
    from repro.core.exceptions import BackendError

    replica_count = len(powers)
    column_count = len(success_probabilities)
    if replica_count == 0:
        raise BackendError("campaign_grid needs at least one replica")
    if column_count == 0:
        raise BackendError("campaign_grid needs at least one vulnerability")
    if len(exposure) != replica_count:
        raise BackendError(
            f"exposure has {len(exposure)} rows for {replica_count} replicas"
        )
    for row in exposure:
        if len(row) != column_count:
            raise BackendError(
                f"exposure row has {len(row)} columns for "
                f"{column_count} vulnerabilities"
            )
    if any(power < 0 for power in powers):
        raise BackendError("replica powers must be non-negative")
    if any(not 0.0 <= p <= 1.0 for p in success_probabilities):
        raise BackendError("success probabilities must be in [0, 1]")
    if trials <= 0:
        raise BackendError(f"trial count must be positive, got {trials}")
    if trial_offset < 0:
        raise BackendError(f"trial offset must be non-negative, got {trial_offset}")
    if total_power <= 0:
        raise BackendError(f"total power must be positive, got {total_power}")
    if dtype not in GRID_DTYPES:
        raise BackendError(
            f"grid dtype must be one of {GRID_DTYPES}, got {dtype!r}"
        )
    if topk not in GRID_TOPK_MODES:
        raise BackendError(
            f"grid topk mode must be one of {GRID_TOPK_MODES}, got {topk!r}"
        )
    if len(points) == 0:
        raise BackendError(
            "campaign_grid needs at least one grid point — an empty grid is a "
            "usage error, not an empty result"
        )
    for position, point in enumerate(points):
        where = f"grid point #{position}"
        if len(point.tolerances) == 0:
            raise BackendError(f"{where} has no tolerances")
        for tolerance in point.tolerances:
            if not 0.0 < tolerance <= 1.0:  # also rejects NaN
                raise BackendError(
                    f"{where}: tolerance must be in (0, 1], got {tolerance}"
                )
        if (point.columns is None) == (point.budget is None):
            raise BackendError(
                f"{where} must set exactly one of columns= or budget="
            )
        if point.columns is not None:
            if len(point.columns) == 0:
                raise BackendError(f"{where} selects no columns")
            seen = set()
            for column in point.columns:
                if not 0 <= column < column_count:
                    raise BackendError(
                        f"{where}: column {column} out of range for "
                        f"{column_count} vulnerabilities"
                    )
                if column in seen:
                    raise BackendError(f"{where}: duplicate column {column}")
                seen.add(column)
        if point.budget is not None:
            if point.budget < 1:
                raise BackendError(
                    f"{where}: budget must be positive, got {point.budget}"
                )
            if point.success_probabilities is not None:
                raise BackendError(
                    f"{where}: per-column success_probabilities need explicit "
                    "columns (budget selection is made inside the kernel)"
                )
        if (
            point.success_probabilities is not None
            and point.success_probability is not None
        ):
            raise BackendError(
                f"{where} sets both success_probabilities and "
                "success_probability"
            )
        if point.success_probabilities is not None:
            if len(point.success_probabilities) != len(point.columns):
                raise BackendError(
                    f"{where}: {len(point.success_probabilities)} probability "
                    f"overrides for {len(point.columns)} columns"
                )
            if any(not 0.0 <= p <= 1.0 for p in point.success_probabilities):
                raise BackendError(
                    f"{where}: success probabilities must be in [0, 1]"
                )
        if point.success_probability is not None and not (
            0.0 <= point.success_probability <= 1.0
        ):
            raise BackendError(
                f"{where}: success probability must be in [0, 1], got "
                f"{point.success_probability}"
            )
        if point.seed_offset < 0:
            raise BackendError(
                f"{where}: seed offset must be non-negative, got "
                f"{point.seed_offset}"
            )
    if len(set(points)) != len(points):
        raise BackendError(
            "campaign_grid points must be distinct — duplicate grid points "
            "share a seed offset and would silently double-count one scenario"
        )


def resolve_grid_points(
    points: Sequence[CampaignGridPoint],
    *,
    base_probabilities: Sequence[float],
    seed: int,
    exposed_powers: Optional[Sequence[float]] = None,
    topk_fn=grid_topk_columns,
) -> Tuple[ResolvedGridPoint, ...]:
    """Turn validated grid points into explicit (columns, probabilities, seed).

    ``exposed_powers`` is required when any point selects by ``budget``;
    ``topk_fn`` is the ranking used for those selections (backends substitute
    their ``argpartition`` variant here for the fast path).
    """
    resolved = []
    for point in points:
        if point.columns is not None:
            columns = tuple(point.columns)
        else:
            if exposed_powers is None:
                raise ValueError(
                    "budget grid points need exposed_powers for top-k selection"
                )
            columns = tuple(topk_fn(exposed_powers, point.budget))
        if point.success_probabilities is not None:
            probabilities = tuple(
                float(p) for p in point.success_probabilities
            )
        elif point.success_probability is not None:
            probabilities = (float(point.success_probability),) * len(columns)
        else:
            probabilities = tuple(
                float(base_probabilities[column]) for column in columns
            )
        resolved.append(
            ResolvedGridPoint(
                columns=columns,
                probabilities=probabilities,
                tolerances=tuple(point.tolerances),
                seed=seed + point.seed_offset,
            )
        )
    return tuple(resolved)
