"""Abstract interface every compute backend implements.

A :class:`ComputeBackend` bundles the numeric hot paths of the reproduction —
batched Monte-Carlo vulnerability trials, Shannon entropy and weighted label
accumulation — behind one seam, so the same analysis code can run on the
dependency-free pure-Python implementation or on a vectorized NumPy one.

The contract every implementation must honor:

- **Determinism per backend.** Given identical arguments (including the
  seed), repeated calls return identical results.  Different backends may use
  different RNG streams, so cross-backend results agree only statistically
  (within Monte-Carlo tolerance), while *verdict*-level quantities derived
  from exact share arithmetic (e.g. "can a single exploit reach the
  tolerance") agree exactly.
- **Semantics over speed.** Both backends implement the same trial model: in
  each trial every configuration independently turns out vulnerable with
  probability ``p``, the attacker exploits the ``budget`` largest vulnerable
  shares, and the trial violates safety when the compromised power reaches
  the tolerance.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Hashable, Sequence, Tuple


@dataclass(frozen=True)
class TrialBatchResult:
    """Aggregate outcome of a batch of Monte-Carlo vulnerability trials.

    Attributes:
        trials: number of trials simulated.
        violations: trials in which compromised power reached the tolerance.
        compromised_total: sum of compromised power fractions over all trials
            (``compromised_total / trials`` is the mean compromised fraction).
    """

    trials: int
    violations: int
    compromised_total: float


class ComputeBackend(abc.ABC):
    """Numeric kernel provider for the analysis layer.

    Subclasses are stateless; one shared instance per backend is cached by
    :func:`repro.backend.get_backend`.
    """

    #: Registry name of the backend ("python", "numpy", ...).
    name: str = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether the backend can run in the current environment."""
        return True

    # -- Monte-Carlo kernel -----------------------------------------------------

    @abc.abstractmethod
    def violation_trials(
        self,
        shares: Sequence[float],
        *,
        vulnerability_probability: float,
        exploit_budget: int,
        trials: int,
        seed: int,
        tolerance: float,
    ) -> TrialBatchResult:
        """Run ``trials`` independent vulnerability scenarios.

        Args:
            shares: voting-power shares sorted in descending order (callers
                are responsible for the sort; backends rely on it to take the
                ``exploit_budget`` largest vulnerable shares without
                re-sorting per trial).
            vulnerability_probability: per-configuration vulnerability
                probability in ``[0, 1]``.
            exploit_budget: number of vulnerable configurations the attacker
                exploits simultaneously (greedily, largest shares first).
            trials: number of scenarios to sample (positive).
            seed: RNG seed; fixes the backend's stream deterministically.
            tolerance: compromised-power fraction at which a trial counts as
                a safety violation.
        """

    # -- entropy kernel ---------------------------------------------------------

    @abc.abstractmethod
    def shannon_entropy(self, probabilities: Sequence[float], *, base: float = 2.0) -> float:
        """Shannon entropy of an already-validated probability vector.

        Zero entries contribute nothing (the paper's ``0 * log(1/0) = 0``
        convention).  Validation (non-negativity, normalization) is the
        caller's job — this is the inner-loop kernel only.
        """

    # -- weighted accumulation kernel -------------------------------------------

    def weighted_bincount(
        self,
        labels: Sequence[Hashable],
        weights: Sequence[float],
    ) -> Dict[Hashable, float]:
        """Sum ``weights`` grouped by label, preserving first-appearance order.

        The returned dict maps each distinct label to the sum of the weights
        at its positions; iteration order matches the order in which labels
        first appear, so downstream :class:`ConfigurationDistribution`
        construction is identical across backends.

        The dict accumulation here is the shared default: census labels are
        arbitrary hashables (usually strings), which array libraries can
        only group via an object-dtype sort that loses to a plain hash loop.
        Backends with a genuinely faster grouping may override.
        """
        accumulated: Dict[Hashable, float] = {}
        for label, weight in zip(labels, weights):
            accumulated[label] = accumulated.get(label, 0.0) + float(weight)
        return accumulated

    # -- array construction -----------------------------------------------------

    @abc.abstractmethod
    def asarray(self, values: Sequence[float]) -> Sequence[float]:
        """The backend's preferred array representation of a float sequence.

        The pure-Python backend returns a tuple; array backends return their
        native array type, frozen read-only.  :class:`ConfigurationDistribution`
        caches the result per backend so hot paths hand the kernels a
        ready-made array instead of rebuilding one per call — callers must
        treat it as immutable (copy before mutating).
        """

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


def validate_trial_arguments(
    shares: Sequence[float],
    *,
    vulnerability_probability: float,
    exploit_budget: int,
    trials: int,
    tolerance: float,
) -> None:
    """Shared argument validation for :meth:`ComputeBackend.violation_trials`.

    Raises :class:`~repro.core.exceptions.BackendError` on invalid input so a
    backend never has to trust its caller.
    """
    from repro.core.exceptions import BackendError

    if len(shares) == 0:
        raise BackendError("violation_trials needs at least one share")
    if not 0.0 <= vulnerability_probability <= 1.0:
        raise BackendError(
            f"vulnerability probability must be in [0, 1], got {vulnerability_probability}"
        )
    if exploit_budget < 0:
        raise BackendError(f"exploit budget must be non-negative, got {exploit_budget}")
    if trials <= 0:
        raise BackendError(f"trial count must be positive, got {trials}")
    if not 0.0 < tolerance <= 1.0:
        raise BackendError(f"tolerance must be in (0, 1], got {tolerance}")
    if any(later > earlier for earlier, later in zip(shares, shares[1:])):
        raise BackendError("shares must be sorted in descending order")
