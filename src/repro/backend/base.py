"""Abstract interface every compute backend implements.

A :class:`ComputeBackend` bundles the numeric hot paths of the reproduction —
batched Monte-Carlo vulnerability trials, Shannon entropy and weighted label
accumulation — behind one seam, so the same analysis code can run on the
dependency-free pure-Python implementation or on a vectorized NumPy one.

The contract every implementation must honor:

- **Determinism per backend.** Given identical arguments (including the
  seed), repeated calls return identical results.  Different backends may use
  different RNG streams, so cross-backend results agree only statistically
  (within Monte-Carlo tolerance), while *verdict*-level quantities derived
  from exact share arithmetic (e.g. "can a single exploit reach the
  tolerance") agree exactly.
- **Semantics over speed.** Both backends implement the same trial model: in
  each trial every configuration independently turns out vulnerable with
  probability ``p``, the attacker exploits the ``budget`` largest vulnerable
  shares, and the trial violates safety when the compromised power reaches
  the tolerance.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Hashable, Sequence, Tuple

#: Slack applied when a compromised-power *fraction* is compared against a
#: tolerance (mirrors ``CampaignOutcome.violates``): a trial violates safety
#: when ``compromised / total >= tolerance - CAMPAIGN_FRACTION_SLACK``.
CAMPAIGN_FRACTION_SLACK = 1e-12

# -- counter-based campaign RNG ------------------------------------------------
#
# The campaign kernels draw their per-(trial, replica, vulnerability) exploit
# indicators from a *counter-based* splitmix64 stream instead of a sequential
# generator: uniform #n depends only on (seed, n), never on how many draws
# came before it.  That is what makes the batched NumPy kernel and the scalar
# fallback bit-identical — the scalar path may skip unexposed cells entirely
# while the array path masks them after a dense draw, and both still read the
# exact same uniforms for the cells that matter.

_MASK64 = (1 << 64) - 1
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_SPLITMIX_MIX1 = 0xBF58476D1CE4E5B9
_SPLITMIX_MIX2 = 0x94D049BB133111EB
_INV_2_53 = 1.0 / (1 << 53)


def campaign_uniform(seed: int, index: int) -> float:
    """Uniform in ``[0, 1)`` for cell ``index`` of the seeded campaign stream.

    This is the scalar reference implementation (splitmix64 finalizer over a
    Weyl sequence); array backends must reproduce it bit for bit.
    """
    z = ((seed & _MASK64) + ((index + 1) * _SPLITMIX_GAMMA)) & _MASK64
    z = ((z ^ (z >> 30)) * _SPLITMIX_MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _SPLITMIX_MIX2) & _MASK64
    z ^= z >> 31
    return (z >> 11) * _INV_2_53


@dataclass(frozen=True)
class TrialBatchResult:
    """Aggregate outcome of a batch of Monte-Carlo vulnerability trials.

    Attributes:
        trials: number of trials simulated.
        violations: trials in which compromised power reached the tolerance.
        compromised_total: sum of compromised power fractions over all trials
            (``compromised_total / trials`` is the mean compromised fraction).
    """

    trials: int
    violations: int
    compromised_total: float


@dataclass(frozen=True)
class CampaignBatchResult:
    """Aggregate outcome of a batch of randomized exploit-campaign trials.

    Attributes:
        trials: number of campaign trials simulated.
        violations: trials whose compromised-power fraction reached the
            tolerance (with :data:`CAMPAIGN_FRACTION_SLACK`).
        compromised_total: sum of compromised voting power (absolute units)
            over all trials; ``compromised_total / (trials * total_power)``
            is the mean compromised fraction.
        per_vulnerability_totals: per-column sums of the power compromised
            through each exploited vulnerability (the ``f_t^i`` of Section
            II-C), accumulated over all trials in column order.
    """

    trials: int
    violations: int
    compromised_total: float
    per_vulnerability_totals: Tuple[float, ...]


class ComputeBackend(abc.ABC):
    """Numeric kernel provider for the analysis layer.

    Subclasses are stateless; one shared instance per backend is cached by
    :func:`repro.backend.get_backend`.
    """

    #: Registry name of the backend ("python", "numpy", ...).
    name: str = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether the backend can run in the current environment."""
        return True

    # -- Monte-Carlo kernel -----------------------------------------------------

    @abc.abstractmethod
    def violation_trials(
        self,
        shares: Sequence[float],
        *,
        vulnerability_probability: float,
        exploit_budget: int,
        trials: int,
        seed: int,
        tolerance: float,
    ) -> TrialBatchResult:
        """Run ``trials`` independent vulnerability scenarios.

        Args:
            shares: voting-power shares sorted in descending order (callers
                are responsible for the sort; backends rely on it to take the
                ``exploit_budget`` largest vulnerable shares without
                re-sorting per trial).
            vulnerability_probability: per-configuration vulnerability
                probability in ``[0, 1]``.
            exploit_budget: number of vulnerable configurations the attacker
                exploits simultaneously (greedily, largest shares first).
            trials: number of scenarios to sample (positive).
            seed: RNG seed; fixes the backend's stream deterministically.
            tolerance: compromised-power fraction at which a trial counts as
                a safety violation.
        """

    # -- campaign kernels -------------------------------------------------------

    @abc.abstractmethod
    def masked_power_sums(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
    ) -> Tuple[float, ...]:
        """Per-column masked power reduction: ``powers @ exposure``.

        ``exposure`` is a replicas × vulnerabilities 0/1 matrix (each row the
        indicator vector of one replica's fault domains) and ``powers`` the
        per-replica voting power; the result is each vulnerability's exposed
        power — the ``f_t^i`` upper bound before exploit reliability.

        Array backends reduce along the replica axis with their native
        (pairwise) summation; the scalar fallback sums sequentially in row
        order.  The two are bit-identical whenever the power values sum
        exactly in float64 (integers and other dyadic rationals — every
        shipped scenario), and agree to float tolerance otherwise.
        """

    @abc.abstractmethod
    def campaign_trials(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        *,
        trials: int,
        seed: int,
        tolerance: float,
        total_power: float,
        trial_offset: int = 0,
    ) -> CampaignBatchResult:
        """Run ``trials`` randomized exploit campaigns over an exposure matrix.

        In every trial, each (replica, vulnerability) cell with
        ``exposure[r][v] != 0`` is independently compromised with probability
        ``success_probabilities[v]``; a replica compromised through *any*
        vulnerability contributes its power once to the trial's compromised
        total (and to each relevant per-vulnerability ``f_t^i``), and the
        trial violates safety when the compromised fraction of
        ``total_power`` reaches ``tolerance`` (slack
        :data:`CAMPAIGN_FRACTION_SLACK`).

        The exploit indicator for cell ``(t, r, v)`` is
        ``campaign_uniform(seed, t*R*V + r*V + v) < success_probabilities[v]``
        with ``R = len(powers)`` and ``V = len(success_probabilities)``, so
        every backend draws the **same stream** and the results are
        bit-identical across backends (float reductions under the same
        dyadic-power caveat as :meth:`masked_power_sums`; the violation
        verdicts and counts agree exactly for the shipped scenarios).

        ``trial_offset`` shifts the trial counter: the call computes trials
        ``trial_offset .. trial_offset + trials - 1`` of the logical
        campaign, drawing the exact uniforms a single full-range call would
        draw for those trials.  This is the sharding seam — a worker
        computing ``[lo, hi)`` with ``trial_offset=lo`` produces the same
        per-trial outcomes as the serial run, so shard results sum back to
        the serial result and a retried shard is bit-identical to its first
        attempt.
        """

    # -- entropy kernel ---------------------------------------------------------

    @abc.abstractmethod
    def shannon_entropy(self, probabilities: Sequence[float], *, base: float = 2.0) -> float:
        """Shannon entropy of an already-validated probability vector.

        Zero entries contribute nothing (the paper's ``0 * log(1/0) = 0``
        convention).  Validation (non-negativity, normalization) is the
        caller's job — this is the inner-loop kernel only.
        """

    # -- weighted accumulation kernel -------------------------------------------

    def weighted_bincount(
        self,
        labels: Sequence[Hashable],
        weights: Sequence[float],
    ) -> Dict[Hashable, float]:
        """Sum ``weights`` grouped by label, preserving first-appearance order.

        The returned dict maps each distinct label to the sum of the weights
        at its positions; iteration order matches the order in which labels
        first appear, so downstream :class:`ConfigurationDistribution`
        construction is identical across backends.

        The dict accumulation here is the shared default: census labels are
        arbitrary hashables (usually strings), which array libraries can
        only group via an object-dtype sort that loses to a plain hash loop.
        Backends with a genuinely faster grouping may override.
        """
        accumulated: Dict[Hashable, float] = {}
        for label, weight in zip(labels, weights):
            accumulated[label] = accumulated.get(label, 0.0) + float(weight)
        return accumulated

    # -- array construction -----------------------------------------------------

    @abc.abstractmethod
    def asarray(self, values: Sequence[float]) -> Sequence[float]:
        """The backend's preferred array representation of a float sequence.

        The pure-Python backend returns a tuple; array backends return their
        native array type, frozen read-only.  :class:`ConfigurationDistribution`
        caches the result per backend so hot paths hand the kernels a
        ready-made array instead of rebuilding one per call — callers must
        treat it as immutable (copy before mutating).
        """

    @abc.abstractmethod
    def asarray_matrix(
        self, rows: Sequence[Sequence[float]]
    ) -> Sequence[Sequence[float]]:
        """The backend's preferred 2-D representation of a row-major matrix.

        The pure-Python backend returns a tuple of row tuples; array backends
        return their native 2-D array, frozen read-only.
        :class:`~repro.faults.matrix.PopulationMatrix` caches the result per
        backend so the campaign kernels receive a ready-made matrix — callers
        must treat it as immutable.
        """

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


def validate_trial_arguments(
    shares: Sequence[float],
    *,
    vulnerability_probability: float,
    exploit_budget: int,
    trials: int,
    tolerance: float,
) -> None:
    """Shared argument validation for :meth:`ComputeBackend.violation_trials`.

    Raises :class:`~repro.core.exceptions.BackendError` on invalid input so a
    backend never has to trust its caller.
    """
    from repro.core.exceptions import BackendError

    if len(shares) == 0:
        raise BackendError("violation_trials needs at least one share")
    if not 0.0 <= vulnerability_probability <= 1.0:
        raise BackendError(
            f"vulnerability probability must be in [0, 1], got {vulnerability_probability}"
        )
    if exploit_budget < 0:
        raise BackendError(f"exploit budget must be non-negative, got {exploit_budget}")
    if trials <= 0:
        raise BackendError(f"trial count must be positive, got {trials}")
    if not 0.0 < tolerance <= 1.0:
        raise BackendError(f"tolerance must be in (0, 1], got {tolerance}")
    if any(later > earlier for earlier, later in zip(shares, shares[1:])):
        raise BackendError("shares must be sorted in descending order")


def validate_campaign_arguments(
    exposure: Sequence[Sequence[float]],
    powers: Sequence[float],
    success_probabilities: Sequence[float],
    *,
    trials: int,
    tolerance: float,
    total_power: float,
    trial_offset: int = 0,
) -> None:
    """Shared argument validation for :meth:`ComputeBackend.campaign_trials`."""
    from repro.core.exceptions import BackendError

    replica_count = len(powers)
    column_count = len(success_probabilities)
    if replica_count == 0:
        raise BackendError("campaign_trials needs at least one replica")
    if column_count == 0:
        raise BackendError("campaign_trials needs at least one vulnerability")
    if len(exposure) != replica_count:
        raise BackendError(
            f"exposure has {len(exposure)} rows for {replica_count} replicas"
        )
    for row in exposure:
        if len(row) != column_count:
            raise BackendError(
                f"exposure row has {len(row)} columns for "
                f"{column_count} vulnerabilities"
            )
    if any(power < 0 for power in powers):
        raise BackendError("replica powers must be non-negative")
    if any(not 0.0 <= p <= 1.0 for p in success_probabilities):
        raise BackendError("success probabilities must be in [0, 1]")
    if trials <= 0:
        raise BackendError(f"trial count must be positive, got {trials}")
    if trial_offset < 0:
        raise BackendError(f"trial offset must be non-negative, got {trial_offset}")
    if not 0.0 < tolerance <= 1.0:
        raise BackendError(f"tolerance must be in (0, 1], got {tolerance}")
    if total_power <= 0:
        raise BackendError(f"total power must be positive, got {total_power}")
