"""Abstract interface every compute backend implements.

A :class:`ComputeBackend` bundles the numeric hot paths of the reproduction —
batched Monte-Carlo vulnerability trials, Shannon entropy and weighted label
accumulation — behind one seam, so the same analysis code can run on the
dependency-free pure-Python implementation or on a vectorized NumPy one.

The contract every implementation must honor:

- **Determinism per backend.** Given identical arguments (including the
  seed), repeated calls return identical results.  Different backends may use
  different RNG streams, so cross-backend results agree only statistically
  (within Monte-Carlo tolerance), while *verdict*-level quantities derived
  from exact share arithmetic (e.g. "can a single exploit reach the
  tolerance") agree exactly.
- **Semantics over speed.** Both backends implement the same trial model: in
  each trial every configuration independently turns out vulnerable with
  probability ``p``, the attacker exploits the ``budget`` largest vulnerable
  shares, and the trial violates safety when the compromised power reaches
  the tolerance.
"""

from __future__ import annotations

import abc
import array as _stdlib_array
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Optional, Sequence, Tuple

#: Slack applied when a compromised-power *fraction* is compared against a
#: tolerance (mirrors ``CampaignOutcome.violates``): a trial violates safety
#: when ``compromised / total >= tolerance - CAMPAIGN_FRACTION_SLACK``.
CAMPAIGN_FRACTION_SLACK = 1e-12

# -- counter-based campaign RNG ------------------------------------------------
#
# The campaign kernels draw their per-(trial, replica, vulnerability) exploit
# indicators from a *counter-based* splitmix64 stream instead of a sequential
# generator: uniform #n depends only on (seed, n), never on how many draws
# came before it.  That is what makes the batched NumPy kernel and the scalar
# fallback bit-identical — the scalar path may skip unexposed cells entirely
# while the array path masks them after a dense draw, and both still read the
# exact same uniforms for the cells that matter.

_MASK64 = (1 << 64) - 1
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_SPLITMIX_MIX1 = 0xBF58476D1CE4E5B9
_SPLITMIX_MIX2 = 0x94D049BB133111EB
_INV_2_53 = 1.0 / (1 << 53)


def campaign_uniform(seed: int, index: int) -> float:
    """Uniform in ``[0, 1)`` for cell ``index`` of the seeded campaign stream.

    This is the scalar reference implementation (splitmix64 finalizer over a
    Weyl sequence); array backends must reproduce it bit for bit.
    """
    z = ((seed & _MASK64) + ((index + 1) * _SPLITMIX_GAMMA)) & _MASK64
    z = ((z ^ (z >> 30)) * _SPLITMIX_MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _SPLITMIX_MIX2) & _MASK64
    z ^= z >> 31
    return (z >> 11) * _INV_2_53


@dataclass(frozen=True)
class TrialBatchResult:
    """Aggregate outcome of a batch of Monte-Carlo vulnerability trials.

    Attributes:
        trials: number of trials simulated.
        violations: trials in which compromised power reached the tolerance.
        compromised_total: sum of compromised power fractions over all trials
            (``compromised_total / trials`` is the mean compromised fraction).
    """

    trials: int
    violations: int
    compromised_total: float


@dataclass(frozen=True)
class CampaignBatchResult:
    """Aggregate outcome of a batch of randomized exploit-campaign trials.

    Attributes:
        trials: number of campaign trials simulated.
        violations: trials whose compromised-power fraction reached the
            tolerance (with :data:`CAMPAIGN_FRACTION_SLACK`).
        compromised_total: sum of compromised voting power (absolute units)
            over all trials; ``compromised_total / (trials * total_power)``
            is the mean compromised fraction.
        per_vulnerability_totals: per-column sums of the power compromised
            through each exploited vulnerability (the ``f_t^i`` of Section
            II-C), accumulated over all trials in column order.
    """

    trials: int
    violations: int
    compromised_total: float
    per_vulnerability_totals: Tuple[float, ...]


@dataclass(frozen=True)
class CampaignGridPoint:
    """One scenario point of a fused campaign grid.

    A grid point selects a subset of the shared exposure matrix's columns —
    either explicitly (``columns``, in selection order) or as the ``budget``
    most damaging columns by exposed power (ranked descending, column index
    as tie-break) — and pins the per-point randomness and verdicts:

    Attributes:
        tolerances: compromised-power fractions evaluated as verdicts on the
            same sampled trials (one exploit draw, several thresholds).
        columns: explicit column indices into the shared matrix, in the
            order the per-point kernel sees them (mutually exclusive with
            ``budget``).
        budget: select the top-``budget`` columns by exposed power inside
            the kernel instead of naming them (the ``topk`` option picks the
            ranking algorithm).
        success_probabilities: per-selected-column exploit probabilities
            overriding the matrix-wide vector (aligned with ``columns``).
        success_probability: scalar override applied to every selected
            column (how a reliability sweep varies one knob per point).
        seed_offset: the point's RNG seed is ``seed + seed_offset``; its
            sub-stream is exactly the stream a standalone
            :meth:`ComputeBackend.campaign_trials` call with that seed draws
            on the column-sliced matrix.
    """

    tolerances: Tuple[float, ...]
    columns: Optional[Tuple[int, ...]] = None
    budget: Optional[int] = None
    success_probabilities: Optional[Tuple[float, ...]] = None
    success_probability: Optional[float] = None
    seed_offset: int = 0


@dataclass(frozen=True)
class ResolvedGridPoint:
    """A grid point after validation: explicit columns, probabilities, seed."""

    columns: Tuple[int, ...]
    probabilities: Tuple[float, ...]
    tolerances: Tuple[float, ...]
    seed: int


@dataclass(frozen=True)
class CampaignGridPointResult:
    """One grid point's aggregate campaign outcome.

    Equivalent to a :class:`CampaignBatchResult` per tolerance, sharing the
    trial draws: ``violations[k]`` is the violation count at
    ``tolerances[k]``, while ``compromised_total`` and
    ``per_vulnerability_totals`` (aligned with ``columns``) are
    tolerance-independent.
    """

    trials: int
    columns: Tuple[int, ...]
    violations: Tuple[int, ...]
    compromised_total: float
    per_vulnerability_totals: Tuple[float, ...]


# -- sparse exposure -----------------------------------------------------------


@dataclass(frozen=True, eq=False)
class SparseExposure:
    """CSR-compressed replica → vulnerability exposure plus campaign vectors.

    Row ``r``'s exposed columns are ``indices[indptr[r]:indptr[r + 1]]``,
    strictly increasing within each row; ``powers`` is per replica while
    ``success_probabilities`` and ``disclosed_at`` are per column.  The
    structure is the sparse analogue of the dense ``exposure`` argument the
    campaign kernels take: cell ``(r, v)`` is exposed exactly when ``v``
    appears in row ``r``'s index slice, so a densified copy fed to the dense
    kernels produces bit-identical results.

    Storage is whatever integer/float sequences the caller provides; the
    :func:`from_rows` constructor packs stdlib ``array`` buffers (``'q'`` and
    ``'d'`` typecodes), which keep a million-replica structure in tens of
    megabytes, pickle compactly for shard workers, and convert to NumPy
    zero-copy.  Treat a constructed instance as immutable — kernels cache the
    structural validation on it.
    """

    indptr: Sequence[int]
    indices: Sequence[int]
    powers: Sequence[float]
    success_probabilities: Sequence[float]
    disclosed_at: Sequence[float]
    _validated: bool = field(default=False, init=False, repr=False, compare=False)

    @property
    def replica_count(self) -> int:
        return len(self.indptr) - 1

    @property
    def column_count(self) -> int:
        return len(self.success_probabilities)

    @property
    def nnz(self) -> int:
        """Number of exposed (replica, vulnerability) cells."""
        return len(self.indices)

    @property
    def density(self) -> float:
        """Exposed-cell fraction of the dense replicas × vulnerabilities grid."""
        cells = self.replica_count * self.column_count
        return len(self.indices) / cells if cells else 0.0

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Sequence[int]],
        powers: Iterable[float],
        success_probabilities: Sequence[float],
        disclosed_at: Optional[Sequence[float]] = None,
    ) -> "SparseExposure":
        """Pack per-row exposed-column index sequences into validated CSR."""
        indptr = _stdlib_array.array("q", [0])
        indices = _stdlib_array.array("q")
        for row in rows:
            indices.extend(row)
            indptr.append(len(indices))
        probabilities = tuple(float(p) for p in success_probabilities)
        disclosed = (
            tuple(float(value) for value in disclosed_at)
            if disclosed_at is not None
            else (0.0,) * len(probabilities)
        )
        sparse = cls(
            indptr=indptr,
            indices=indices,
            powers=_stdlib_array.array("d", (float(p) for p in powers)),
            success_probabilities=probabilities,
            disclosed_at=disclosed,
        )
        sparse.validate()
        return sparse

    @classmethod
    def from_dense(
        cls,
        exposure: Sequence[Sequence[float]],
        powers: Iterable[float],
        success_probabilities: Sequence[float],
        disclosed_at: Optional[Sequence[float]] = None,
    ) -> "SparseExposure":
        """Compress a dense 0/1 exposure matrix (row-major) to CSR."""
        rows = (
            tuple(column for column, cell in enumerate(row) if cell)
            for row in exposure
        )
        return cls.from_rows(rows, powers, success_probabilities, disclosed_at)

    def validate(self) -> "SparseExposure":
        """Check the CSR invariants once; later calls are a cached no-op."""
        if self._validated:
            return self
        from repro.core.exceptions import BackendError

        if len(self.indptr) == 0 or self.indptr[0] != 0:
            raise BackendError(
                "sparse exposure indptr must start with 0 and have one entry "
                "per replica plus one"
            )
        if self.indptr[-1] != len(self.indices):
            raise BackendError(
                f"sparse exposure indptr ends at {self.indptr[-1]} but there "
                f"are {len(self.indices)} column indices"
            )
        replica_count = self.replica_count
        column_count = self.column_count
        if len(self.powers) != replica_count:
            raise BackendError(
                f"sparse exposure has {len(self.powers)} powers for "
                f"{replica_count} replicas"
            )
        if len(self.disclosed_at) != column_count:
            raise BackendError(
                f"sparse exposure has {len(self.disclosed_at)} disclosure "
                f"times for {column_count} vulnerabilities"
            )
        indptr = self.indptr
        indices = self.indices
        for row in range(replica_count):
            begin, end = indptr[row], indptr[row + 1]
            if end < begin:
                raise BackendError("sparse exposure indptr must be non-decreasing")
            previous = -1
            for position in range(begin, end):
                column = indices[position]
                if not 0 <= column < column_count:
                    raise BackendError(
                        f"sparse exposure column {column} out of range for "
                        f"{column_count} vulnerabilities"
                    )
                if column <= previous:
                    raise BackendError(
                        "sparse exposure columns must be strictly increasing "
                        "within each row (sorted, no duplicates)"
                    )
                previous = column
        if any(power < 0 for power in self.powers):
            raise BackendError("replica powers must be non-negative")
        if any(not 0.0 <= p <= 1.0 for p in self.success_probabilities):
            raise BackendError("success probabilities must be in [0, 1]")
        object.__setattr__(self, "_validated", True)
        return self

    def row_slice(self, start: int, stop: int) -> "SparseExposure":
        """Rows ``[start, stop)`` as a standalone structure (rebased indptr).

        The slice keeps every column, so local column indices — and with them
        the campaign counter stream, given the right ``row_offset`` — are
        unchanged.
        """
        from repro.core.exceptions import BackendError

        if not 0 <= start <= stop <= self.replica_count:
            raise BackendError(
                f"row slice [{start}, {stop}) out of range for "
                f"{self.replica_count} replicas"
            )
        base = self.indptr[start]
        indptr = _stdlib_array.array(
            "q", (self.indptr[row] - base for row in range(start, stop + 1))
        )
        sliced = SparseExposure(
            indptr=indptr,
            indices=self.indices[base : self.indptr[stop]],
            powers=self.powers[start:stop],
            success_probabilities=self.success_probabilities,
            disclosed_at=self.disclosed_at,
        )
        if self._validated:
            object.__setattr__(sliced, "_validated", True)
        return sliced

    def select_columns(self, columns: Sequence[int]) -> "SparseExposure":
        """Column-sliced structure in the selection's local column space.

        ``columns`` are distinct global column indices in selection order;
        the result has ``len(columns)`` columns and keeps every row, with
        each row's surviving cells renumbered to local indices and re-sorted
        ascending (the CSR invariant).  The campaign stream depends only on
        (row, local column), so kernels on the result draw exactly what the
        dense kernels draw on a ``columns_for``-sliced matrix.
        """
        from repro.core.exceptions import BackendError

        self.validate()
        lut = [-1] * self.column_count
        for local, column in enumerate(columns):
            if not 0 <= column < self.column_count:
                raise BackendError(
                    f"column {column} out of range for {self.column_count} "
                    "vulnerabilities"
                )
            if lut[column] != -1:
                raise BackendError(f"duplicate column {column} in selection")
            lut[column] = local
        indptr = _stdlib_array.array("q", [0])
        indices = _stdlib_array.array("q")
        for row in range(self.replica_count):
            selected = [
                lut[self.indices[position]]
                for position in range(self.indptr[row], self.indptr[row + 1])
                if lut[self.indices[position]] != -1
            ]
            selected.sort()
            indices.extend(selected)
            indptr.append(len(indices))
        sliced = SparseExposure(
            indptr=indptr,
            indices=indices,
            powers=self.powers,
            success_probabilities=tuple(
                self.success_probabilities[column] for column in columns
            ),
            disclosed_at=tuple(self.disclosed_at[column] for column in columns),
        )
        object.__setattr__(sliced, "_validated", True)
        return sliced


@dataclass(frozen=True)
class SparseGridPartial:
    """Row-range partial sums of one grid point's campaign trials.

    ``per_trial_compromised[t]`` is the power compromised in trial
    ``trial_offset + t`` *within the computed row range only*; the verdict
    (compromised fraction vs tolerance) couples all rows of a trial, so it
    can only be taken after every row chunk's partials are summed —
    :func:`merge_sparse_partials` + :func:`finalize_sparse_point` do exactly
    that.  ``per_vulnerability_totals`` is the usual per-local-column
    compromised-power total over the range's rows and all trials.
    """

    per_trial_compromised: Tuple[float, ...]
    per_vulnerability_totals: Tuple[float, ...]


def merge_sparse_partials(
    chunks: Sequence[Sequence[SparseGridPartial]],
) -> Tuple[SparseGridPartial, ...]:
    """Sum per-row-chunk partials elementwise, in chunk (= row) order.

    ``chunks[k][p]`` is row chunk ``k``'s partial for grid point ``p``.
    Summing chunk partials in ascending row order adds each trial's
    compromised power in the same ascending-row sequence a full-range kernel
    uses, so the merge is exact for dyadic powers (the shipped scenarios) and
    chunk boundaries stay invisible.
    """
    from repro.core.exceptions import BackendError

    if len(chunks) == 0:
        raise BackendError("cannot merge zero sparse partial chunks")
    point_count = len(chunks[0])
    for chunk in chunks:
        if len(chunk) != point_count:
            raise BackendError(
                "sparse partial chunks disagree on the grid point count"
            )
    merged = []
    for position in range(point_count):
        first = chunks[0][position]
        per_trial = [0.0] * len(first.per_trial_compromised)
        per_vulnerability = [0.0] * len(first.per_vulnerability_totals)
        for chunk in chunks:
            partial = chunk[position]
            if len(partial.per_trial_compromised) != len(per_trial) or len(
                partial.per_vulnerability_totals
            ) != len(per_vulnerability):
                raise BackendError(
                    "sparse partial chunks disagree on trial or column counts"
                )
            for trial, value in enumerate(partial.per_trial_compromised):
                per_trial[trial] += value
            for column, value in enumerate(partial.per_vulnerability_totals):
                per_vulnerability[column] += value
        merged.append(
            SparseGridPartial(
                per_trial_compromised=tuple(per_trial),
                per_vulnerability_totals=tuple(per_vulnerability),
            )
        )
    return tuple(merged)


def finalize_sparse_point(
    partial: SparseGridPartial,
    *,
    trials: int,
    columns: Tuple[int, ...],
    tolerances: Sequence[float],
    total_power: float,
) -> CampaignGridPointResult:
    """Apply the per-trial verdicts to fully merged partial sums.

    Walks the trials in order, accumulating ``compromised_total`` and
    counting a violation whenever ``compromised / total_power`` reaches a
    tolerance (slack :data:`CAMPAIGN_FRACTION_SLACK`) — the same comparisons,
    in the same order, as the dense scalar loop.
    """
    thresholds = tuple(
        tolerance - CAMPAIGN_FRACTION_SLACK for tolerance in tolerances
    )
    violations = [0] * len(thresholds)
    compromised_total = 0.0
    for compromised in partial.per_trial_compromised:
        compromised_total += compromised
        fraction = compromised / total_power
        for position, threshold in enumerate(thresholds):
            if fraction >= threshold:
                violations[position] += 1
    return CampaignGridPointResult(
        trials=trials,
        columns=tuple(columns),
        violations=tuple(violations),
        compromised_total=compromised_total,
        per_vulnerability_totals=partial.per_vulnerability_totals,
    )


#: Accepted values of ``campaign_grid``'s accumulation-dtype fast-path knob.
GRID_DTYPES = ("float64", "float32")
#: Accepted values of ``campaign_grid``'s top-k selection knob.
GRID_TOPK_MODES = ("sort", "argpartition")


def grid_topk_columns(
    exposed_powers: Sequence[float], count: int
) -> Tuple[int, ...]:
    """The ``count`` columns with the largest exposed power.

    Ranked by descending power with the column index as tie-break — the
    exact (``topk="sort"``) selection both backends share.  ``count`` beyond
    the column count selects every column.
    """
    order = sorted(
        range(len(exposed_powers)), key=lambda c: (-exposed_powers[c], c)
    )
    return tuple(order[:count])


class ComputeBackend(abc.ABC):
    """Numeric kernel provider for the analysis layer.

    Subclasses are stateless; one shared instance per backend is cached by
    :func:`repro.backend.get_backend`.
    """

    #: Registry name of the backend ("python", "numpy", ...).
    name: str = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether the backend can run in the current environment."""
        return True

    @classmethod
    def availability_error(cls) -> Optional[str]:
        """Why the backend is unavailable, or ``None`` when it can run.

        Backends with optional dependencies override this to surface the
        captured import/probe error; ``repro.cli backends`` prints it so an
        operator sees *why* a backend is missing, not just that it is.
        Implementations must agree with :meth:`is_available`.
        """
        if cls.is_available():
            return None
        return f"backend {cls.name!r} reports itself unavailable"

    # -- Monte-Carlo kernel -----------------------------------------------------

    @abc.abstractmethod
    def violation_trials(
        self,
        shares: Sequence[float],
        *,
        vulnerability_probability: float,
        exploit_budget: int,
        trials: int,
        seed: int,
        tolerance: float,
    ) -> TrialBatchResult:
        """Run ``trials`` independent vulnerability scenarios.

        Args:
            shares: voting-power shares sorted in descending order (callers
                are responsible for the sort; backends rely on it to take the
                ``exploit_budget`` largest vulnerable shares without
                re-sorting per trial).
            vulnerability_probability: per-configuration vulnerability
                probability in ``[0, 1]``.
            exploit_budget: number of vulnerable configurations the attacker
                exploits simultaneously (greedily, largest shares first).
            trials: number of scenarios to sample (positive).
            seed: RNG seed; fixes the backend's stream deterministically.
            tolerance: compromised-power fraction at which a trial counts as
                a safety violation.
        """

    # -- campaign kernels -------------------------------------------------------

    @abc.abstractmethod
    def masked_power_sums(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
    ) -> Tuple[float, ...]:
        """Per-column masked power reduction: ``powers @ exposure``.

        ``exposure`` is a replicas × vulnerabilities 0/1 matrix (each row the
        indicator vector of one replica's fault domains) and ``powers`` the
        per-replica voting power; the result is each vulnerability's exposed
        power — the ``f_t^i`` upper bound before exploit reliability.

        Array backends reduce along the replica axis with their native
        (pairwise) summation; the scalar fallback sums sequentially in row
        order.  The two are bit-identical whenever the power values sum
        exactly in float64 (integers and other dyadic rationals — every
        shipped scenario), and agree to float tolerance otherwise.
        """

    @abc.abstractmethod
    def campaign_trials(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        *,
        trials: int,
        seed: int,
        tolerance: float,
        total_power: float,
        trial_offset: int = 0,
    ) -> CampaignBatchResult:
        """Run ``trials`` randomized exploit campaigns over an exposure matrix.

        In every trial, each (replica, vulnerability) cell with
        ``exposure[r][v] != 0`` is independently compromised with probability
        ``success_probabilities[v]``; a replica compromised through *any*
        vulnerability contributes its power once to the trial's compromised
        total (and to each relevant per-vulnerability ``f_t^i``), and the
        trial violates safety when the compromised fraction of
        ``total_power`` reaches ``tolerance`` (slack
        :data:`CAMPAIGN_FRACTION_SLACK`).

        The exploit indicator for cell ``(t, r, v)`` is
        ``campaign_uniform(seed, t*R*V + r*V + v) < success_probabilities[v]``
        with ``R = len(powers)`` and ``V = len(success_probabilities)``, so
        every backend draws the **same stream** and the results are
        bit-identical across backends (float reductions under the same
        dyadic-power caveat as :meth:`masked_power_sums`; the violation
        verdicts and counts agree exactly for the shipped scenarios).

        ``trial_offset`` shifts the trial counter: the call computes trials
        ``trial_offset .. trial_offset + trials - 1`` of the logical
        campaign, drawing the exact uniforms a single full-range call would
        draw for those trials.  This is the sharding seam — a worker
        computing ``[lo, hi)`` with ``trial_offset=lo`` produces the same
        per-trial outcomes as the serial run, so shard results sum back to
        the serial result and a retried shard is bit-identical to its first
        attempt.
        """

    @abc.abstractmethod
    def campaign_grid(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        points: Sequence[CampaignGridPoint],
        *,
        trials: int,
        seed: int,
        total_power: float,
        trial_offset: int = 0,
        dtype: str = "float64",
        topk: str = "sort",
    ) -> Tuple[CampaignGridPointResult, ...]:
        """Run ``trials`` campaigns at every grid point in one fused call.

        The whole grid shares one staged ``exposure`` matrix, ``powers``
        vector and base ``success_probabilities`` vector; each point selects
        columns (explicitly or by ``budget`` top-k) and may override the
        probabilities.  Per point ``p``, the exploit indicator for trial
        ``t`` and local cell ``(r, v)`` is::

            campaign_uniform(seed + p.seed_offset,
                             (trial_offset + t) * R * V_p + r * V_p + v)
                < probability_p[v]

        with ``V_p = len(columns_p)`` — exactly the stream a standalone
        :meth:`campaign_trials` call on the column-sliced matrix with seed
        ``seed + p.seed_offset`` draws.  In the default mode
        (``dtype="float64"``) every point's result is therefore
        **bit-identical** to the per-point loop it replaces, across
        backends, under the same dyadic-power summation caveat as
        :meth:`campaign_trials`; all the fused call removes is the repeated
        Python dispatch, RNG staging and matrix slicing.  Each point
        evaluates every entry of ``tolerances`` as a verdict on the same
        sampled trials, so tolerance pairs (BFT vs majority) cost one draw.

        ``trial_offset`` shifts every point's trial counter exactly as in
        :meth:`campaign_trials` — chunked and sharded grid runs partition
        the serial trial sequence invisibly.

        Fast paths (opt-in, *tolerance*-pinned rather than byte-pinned):
        ``dtype="float32"`` draws reduced-precision uniforms and accumulates
        compromised power in float32 (Monte-Carlo noise dominates the
        difference); ``topk="argpartition"`` ranks ``budget`` selections via
        ``numpy.argpartition`` on the NumPy backend (same columns as the
        exact path, ties included — only the selection cost changes).
        Backends without a faster implementation fall back to the exact
        path — never an error.
        """

    # -- sparse campaign kernels ------------------------------------------------

    @abc.abstractmethod
    def sparse_masked_power_sums(
        self, sparse: SparseExposure
    ) -> Tuple[float, ...]:
        """Per-column exposed-power reduction over a CSR exposure.

        The sparse variant of :meth:`masked_power_sums`: each vulnerability's
        exposed power, summed over the replicas whose row slice contains its
        column.  The scalar fallback adds in ascending row order; array
        backends group with their native reductions — bit-identical under the
        same dyadic-power caveat as the dense method.
        """

    @abc.abstractmethod
    def sparse_grid_partials(
        self,
        sparse: SparseExposure,
        points: Sequence[ResolvedGridPoint],
        *,
        trials: int,
        trial_offset: int = 0,
        row_offset: int = 0,
        total_rows: Optional[int] = None,
    ) -> Tuple[SparseGridPartial, ...]:
        """Row-range partial campaign sums for every resolved grid point.

        This is the one sparse primitive backends implement; the concrete
        :meth:`sparse_campaign_trials` / :meth:`sparse_campaign_grid` wrappers
        and the engines' replica-range chunking are built on it.  ``sparse``
        holds rows ``row_offset .. row_offset + sparse.replica_count - 1`` of
        a logical ``total_rows``-replica exposure (``total_rows=None`` means
        the structure is the whole population).  Per point ``p``, the exploit
        indicator for trial ``t`` and local cell ``(r, v)`` is::

            campaign_uniform(p.seed,
                             (trial_offset + t) * total_rows * V_p
                             + (row_offset + r) * V_p + v)
                < p.probabilities[v]

        with ``V_p = len(p.columns)`` and ``p.columns`` indexing
        ``sparse``'s column space — the exact cells a full-range dense
        :meth:`campaign_grid` call draws for these rows.  Both the trial and
        the row counter are global, so partitioning the rows (or the trials)
        across calls and summing the partials reproduces the unpartitioned
        sums: chunk boundaries are invisible by construction.

        Returns one :class:`SparseGridPartial` per point; callers apply the
        per-trial verdicts via :func:`finalize_sparse_point` only after all
        row ranges are merged.
        """

    def sparse_campaign_trials(
        self,
        sparse: SparseExposure,
        *,
        trials: int,
        seed: int,
        tolerance: float,
        total_power: float,
        trial_offset: int = 0,
    ) -> CampaignBatchResult:
        """Sparse variant of :meth:`campaign_trials` — same stream, CSR input.

        Bit-identical to a dense :meth:`campaign_trials` call on the
        densified matrix (dyadic-power caveat on the float totals; verdicts
        and counts exact for the shipped scenarios).  Concrete: one
        full-row-range :meth:`sparse_grid_partials` call over every column
        plus the shared verdict reduction.  Engines that need bounded memory
        chunk the rows through the partials primitive directly.
        """
        from repro.core.exceptions import BackendError

        sparse.validate()
        if sparse.replica_count == 0:
            raise BackendError("campaign_trials needs at least one replica")
        if sparse.column_count == 0:
            raise BackendError("campaign_trials needs at least one vulnerability")
        if trials <= 0:
            raise BackendError(f"trial count must be positive, got {trials}")
        if trial_offset < 0:
            raise BackendError(
                f"trial offset must be non-negative, got {trial_offset}"
            )
        if not 0.0 < tolerance <= 1.0:
            raise BackendError(f"tolerance must be in (0, 1], got {tolerance}")
        if total_power <= 0:
            raise BackendError(f"total power must be positive, got {total_power}")
        point = ResolvedGridPoint(
            columns=tuple(range(sparse.column_count)),
            probabilities=tuple(
                float(p) for p in sparse.success_probabilities
            ),
            tolerances=(tolerance,),
            seed=seed,
        )
        partial = self.sparse_grid_partials(
            sparse, (point,), trials=trials, trial_offset=trial_offset
        )[0]
        result = finalize_sparse_point(
            partial,
            trials=trials,
            columns=point.columns,
            tolerances=point.tolerances,
            total_power=total_power,
        )
        return CampaignBatchResult(
            trials=trials,
            violations=result.violations[0],
            compromised_total=result.compromised_total,
            per_vulnerability_totals=result.per_vulnerability_totals,
        )

    def sparse_campaign_grid(
        self,
        sparse: SparseExposure,
        points: Sequence[CampaignGridPoint],
        *,
        trials: int,
        seed: int,
        total_power: float,
        trial_offset: int = 0,
        dtype: str = "float64",
        topk: str = "sort",
    ) -> Tuple[CampaignGridPointResult, ...]:
        """Sparse variant of :meth:`campaign_grid` over a CSR exposure.

        Points select columns of ``sparse`` exactly as the dense method
        selects matrix columns (explicitly or by ``budget`` over the sparse
        exposed powers), and every point's sub-stream matches the dense fused
        kernel's.  The ``dtype``/``topk`` knobs are validated for parity but
        the sparse path always runs the exact float64/sort route — the
        contract's fall-back, never an error.
        """
        validate_sparse_grid_arguments(
            sparse,
            points,
            trials=trials,
            total_power=total_power,
            trial_offset=trial_offset,
            dtype=dtype,
            topk=topk,
        )
        exposed = (
            self.sparse_masked_power_sums(sparse)
            if any(point.budget is not None for point in points)
            else None
        )
        resolved = resolve_grid_points(
            points,
            base_probabilities=sparse.success_probabilities,
            seed=seed,
            exposed_powers=exposed,
        )
        partials = self.sparse_grid_partials(
            sparse, resolved, trials=trials, trial_offset=trial_offset
        )
        return tuple(
            finalize_sparse_point(
                partial,
                trials=trials,
                columns=point.columns,
                tolerances=point.tolerances,
                total_power=total_power,
            )
            for point, partial in zip(resolved, partials)
        )

    # -- entropy kernel ---------------------------------------------------------

    @abc.abstractmethod
    def shannon_entropy(self, probabilities: Sequence[float], *, base: float = 2.0) -> float:
        """Shannon entropy of an already-validated probability vector.

        Zero entries contribute nothing (the paper's ``0 * log(1/0) = 0``
        convention).  Validation (non-negativity, normalization) is the
        caller's job — this is the inner-loop kernel only.
        """

    # -- weighted accumulation kernel -------------------------------------------

    def weighted_bincount(
        self,
        labels: Sequence[Hashable],
        weights: Sequence[float],
    ) -> Dict[Hashable, float]:
        """Sum ``weights`` grouped by label, preserving first-appearance order.

        The returned dict maps each distinct label to the sum of the weights
        at its positions; iteration order matches the order in which labels
        first appear, so downstream :class:`ConfigurationDistribution`
        construction is identical across backends.

        The dict accumulation here is the shared default: census labels are
        arbitrary hashables (usually strings), which array libraries can
        only group via an object-dtype sort that loses to a plain hash loop.
        Backends with a genuinely faster grouping may override.
        """
        accumulated: Dict[Hashable, float] = {}
        for label, weight in zip(labels, weights):
            accumulated[label] = accumulated.get(label, 0.0) + float(weight)
        return accumulated

    # -- array construction -----------------------------------------------------

    @abc.abstractmethod
    def asarray(self, values: Sequence[float]) -> Sequence[float]:
        """The backend's preferred array representation of a float sequence.

        The pure-Python backend returns a tuple; array backends return their
        native array type, frozen read-only.  :class:`ConfigurationDistribution`
        caches the result per backend so hot paths hand the kernels a
        ready-made array instead of rebuilding one per call — callers must
        treat it as immutable (copy before mutating).
        """

    @abc.abstractmethod
    def asarray_matrix(
        self, rows: Sequence[Sequence[float]]
    ) -> Sequence[Sequence[float]]:
        """The backend's preferred 2-D representation of a row-major matrix.

        The pure-Python backend returns a tuple of row tuples; array backends
        return their native 2-D array, frozen read-only.
        :class:`~repro.faults.matrix.PopulationMatrix` caches the result per
        backend so the campaign kernels receive a ready-made matrix — callers
        must treat it as immutable.
        """

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


def validate_trial_arguments(
    shares: Sequence[float],
    *,
    vulnerability_probability: float,
    exploit_budget: int,
    trials: int,
    tolerance: float,
) -> None:
    """Shared argument validation for :meth:`ComputeBackend.violation_trials`.

    Raises :class:`~repro.core.exceptions.BackendError` on invalid input so a
    backend never has to trust its caller.
    """
    from repro.core.exceptions import BackendError

    if len(shares) == 0:
        raise BackendError("violation_trials needs at least one share")
    if not 0.0 <= vulnerability_probability <= 1.0:
        raise BackendError(
            f"vulnerability probability must be in [0, 1], got {vulnerability_probability}"
        )
    if exploit_budget < 0:
        raise BackendError(f"exploit budget must be non-negative, got {exploit_budget}")
    if trials <= 0:
        raise BackendError(f"trial count must be positive, got {trials}")
    if not 0.0 < tolerance <= 1.0:
        raise BackendError(f"tolerance must be in (0, 1], got {tolerance}")
    if any(later > earlier for earlier, later in zip(shares, shares[1:])):
        raise BackendError("shares must be sorted in descending order")


def validate_campaign_arguments(
    exposure: Sequence[Sequence[float]],
    powers: Sequence[float],
    success_probabilities: Sequence[float],
    *,
    trials: int,
    tolerance: float,
    total_power: float,
    trial_offset: int = 0,
) -> None:
    """Shared argument validation for :meth:`ComputeBackend.campaign_trials`."""
    from repro.core.exceptions import BackendError

    replica_count = len(powers)
    column_count = len(success_probabilities)
    if replica_count == 0:
        raise BackendError("campaign_trials needs at least one replica")
    if column_count == 0:
        raise BackendError("campaign_trials needs at least one vulnerability")
    if len(exposure) != replica_count:
        raise BackendError(
            f"exposure has {len(exposure)} rows for {replica_count} replicas"
        )
    for row in exposure:
        if len(row) != column_count:
            raise BackendError(
                f"exposure row has {len(row)} columns for "
                f"{column_count} vulnerabilities"
            )
    if any(power < 0 for power in powers):
        raise BackendError("replica powers must be non-negative")
    if any(not 0.0 <= p <= 1.0 for p in success_probabilities):
        raise BackendError("success probabilities must be in [0, 1]")
    if trials <= 0:
        raise BackendError(f"trial count must be positive, got {trials}")
    if trial_offset < 0:
        raise BackendError(f"trial offset must be non-negative, got {trial_offset}")
    if not 0.0 < tolerance <= 1.0:
        raise BackendError(f"tolerance must be in (0, 1], got {tolerance}")
    if total_power <= 0:
        raise BackendError(f"total power must be positive, got {total_power}")


def validate_grid_arguments(
    exposure: Sequence[Sequence[float]],
    powers: Sequence[float],
    success_probabilities: Sequence[float],
    points: Sequence[CampaignGridPoint],
    *,
    trials: int,
    total_power: float,
    trial_offset: int = 0,
    dtype: str = "float64",
    topk: str = "sort",
) -> None:
    """Shared argument validation for :meth:`ComputeBackend.campaign_grid`.

    Rejects empty grids, duplicate grid points and malformed scenario
    parameters (NaN/out-of-range tolerances and probabilities, bad column
    selections) with a :class:`~repro.core.exceptions.BackendError` so a
    fused call never silently produces a zero-length or garbage result.
    """
    from repro.core.exceptions import BackendError

    replica_count = len(powers)
    column_count = len(success_probabilities)
    if replica_count == 0:
        raise BackendError("campaign_grid needs at least one replica")
    if column_count == 0:
        raise BackendError("campaign_grid needs at least one vulnerability")
    if len(exposure) != replica_count:
        raise BackendError(
            f"exposure has {len(exposure)} rows for {replica_count} replicas"
        )
    for row in exposure:
        if len(row) != column_count:
            raise BackendError(
                f"exposure row has {len(row)} columns for "
                f"{column_count} vulnerabilities"
            )
    if any(power < 0 for power in powers):
        raise BackendError("replica powers must be non-negative")
    if any(not 0.0 <= p <= 1.0 for p in success_probabilities):
        raise BackendError("success probabilities must be in [0, 1]")
    if trials <= 0:
        raise BackendError(f"trial count must be positive, got {trials}")
    if trial_offset < 0:
        raise BackendError(f"trial offset must be non-negative, got {trial_offset}")
    if total_power <= 0:
        raise BackendError(f"total power must be positive, got {total_power}")
    if dtype not in GRID_DTYPES:
        raise BackendError(
            f"grid dtype must be one of {GRID_DTYPES}, got {dtype!r}"
        )
    if topk not in GRID_TOPK_MODES:
        raise BackendError(
            f"grid topk mode must be one of {GRID_TOPK_MODES}, got {topk!r}"
        )
    _validate_grid_point_list(points, column_count)


def _validate_grid_point_list(
    points: Sequence[CampaignGridPoint], column_count: int
) -> None:
    """Per-point grid validation shared by the dense and sparse entry points."""
    from repro.core.exceptions import BackendError

    if len(points) == 0:
        raise BackendError(
            "campaign_grid needs at least one grid point — an empty grid is a "
            "usage error, not an empty result"
        )
    for position, point in enumerate(points):
        where = f"grid point #{position}"
        if len(point.tolerances) == 0:
            raise BackendError(f"{where} has no tolerances")
        for tolerance in point.tolerances:
            if not 0.0 < tolerance <= 1.0:  # also rejects NaN
                raise BackendError(
                    f"{where}: tolerance must be in (0, 1], got {tolerance}"
                )
        if (point.columns is None) == (point.budget is None):
            raise BackendError(
                f"{where} must set exactly one of columns= or budget="
            )
        if point.columns is not None:
            if len(point.columns) == 0:
                raise BackendError(f"{where} selects no columns")
            seen = set()
            for column in point.columns:
                if not 0 <= column < column_count:
                    raise BackendError(
                        f"{where}: column {column} out of range for "
                        f"{column_count} vulnerabilities"
                    )
                if column in seen:
                    raise BackendError(f"{where}: duplicate column {column}")
                seen.add(column)
        if point.budget is not None:
            if point.budget < 1:
                raise BackendError(
                    f"{where}: budget must be positive, got {point.budget}"
                )
            if point.success_probabilities is not None:
                raise BackendError(
                    f"{where}: per-column success_probabilities need explicit "
                    "columns (budget selection is made inside the kernel)"
                )
        if (
            point.success_probabilities is not None
            and point.success_probability is not None
        ):
            raise BackendError(
                f"{where} sets both success_probabilities and "
                "success_probability"
            )
        if point.success_probabilities is not None:
            if len(point.success_probabilities) != len(point.columns):
                raise BackendError(
                    f"{where}: {len(point.success_probabilities)} probability "
                    f"overrides for {len(point.columns)} columns"
                )
            if any(not 0.0 <= p <= 1.0 for p in point.success_probabilities):
                raise BackendError(
                    f"{where}: success probabilities must be in [0, 1]"
                )
        if point.success_probability is not None and not (
            0.0 <= point.success_probability <= 1.0
        ):
            raise BackendError(
                f"{where}: success probability must be in [0, 1], got "
                f"{point.success_probability}"
            )
        if point.seed_offset < 0:
            raise BackendError(
                f"{where}: seed offset must be non-negative, got "
                f"{point.seed_offset}"
            )
    if len(set(points)) != len(points):
        raise BackendError(
            "campaign_grid points must be distinct — duplicate grid points "
            "share a seed offset and would silently double-count one scenario"
        )


def validate_sparse_grid_arguments(
    sparse: SparseExposure,
    points: Sequence[CampaignGridPoint],
    *,
    trials: int,
    total_power: float,
    trial_offset: int = 0,
    dtype: str = "float64",
    topk: str = "sort",
) -> None:
    """Shared validation for :meth:`ComputeBackend.sparse_campaign_grid`.

    Mirrors :func:`validate_grid_arguments` over a CSR structure — the same
    errors for the same malformed input, on both backends.
    """
    from repro.core.exceptions import BackendError

    sparse.validate()
    if sparse.replica_count == 0:
        raise BackendError("campaign_grid needs at least one replica")
    if sparse.column_count == 0:
        raise BackendError("campaign_grid needs at least one vulnerability")
    if trials <= 0:
        raise BackendError(f"trial count must be positive, got {trials}")
    if trial_offset < 0:
        raise BackendError(f"trial offset must be non-negative, got {trial_offset}")
    if total_power <= 0:
        raise BackendError(f"total power must be positive, got {total_power}")
    if dtype not in GRID_DTYPES:
        raise BackendError(
            f"grid dtype must be one of {GRID_DTYPES}, got {dtype!r}"
        )
    if topk not in GRID_TOPK_MODES:
        raise BackendError(
            f"grid topk mode must be one of {GRID_TOPK_MODES}, got {topk!r}"
        )
    _validate_grid_point_list(points, sparse.column_count)


def validate_sparse_partial_arguments(
    sparse: SparseExposure,
    points: Sequence[ResolvedGridPoint],
    *,
    trials: int,
    trial_offset: int = 0,
    row_offset: int = 0,
    total_rows: Optional[int] = None,
) -> int:
    """Shared validation for :meth:`ComputeBackend.sparse_grid_partials`.

    Returns the effective logical row count (``total_rows`` or the
    structure's own), after checking that the row chunk fits inside it.
    """
    from repro.core.exceptions import BackendError

    sparse.validate()
    if sparse.replica_count == 0:
        raise BackendError("sparse_grid_partials needs at least one replica")
    if sparse.column_count == 0:
        raise BackendError("sparse_grid_partials needs at least one vulnerability")
    if trials <= 0:
        raise BackendError(f"trial count must be positive, got {trials}")
    if trial_offset < 0:
        raise BackendError(f"trial offset must be non-negative, got {trial_offset}")
    if row_offset < 0:
        raise BackendError(f"row offset must be non-negative, got {row_offset}")
    total = (
        total_rows if total_rows is not None else row_offset + sparse.replica_count
    )
    if total < row_offset + sparse.replica_count:
        raise BackendError(
            f"total_rows={total} cannot hold rows "
            f"[{row_offset}, {row_offset + sparse.replica_count})"
        )
    if len(points) == 0:
        raise BackendError("sparse_grid_partials needs at least one grid point")
    for position, point in enumerate(points):
        where = f"resolved grid point #{position}"
        if len(point.columns) == 0:
            raise BackendError(f"{where} selects no columns")
        if len(point.probabilities) != len(point.columns):
            raise BackendError(
                f"{where}: {len(point.probabilities)} probabilities for "
                f"{len(point.columns)} columns"
            )
        seen = set()
        for column in point.columns:
            if not 0 <= column < sparse.column_count:
                raise BackendError(
                    f"{where}: column {column} out of range for "
                    f"{sparse.column_count} vulnerabilities"
                )
            if column in seen:
                raise BackendError(f"{where}: duplicate column {column}")
            seen.add(column)
        if any(not 0.0 <= p <= 1.0 for p in point.probabilities):
            raise BackendError(f"{where}: success probabilities must be in [0, 1]")
    return total


def resolve_grid_points(
    points: Sequence[CampaignGridPoint],
    *,
    base_probabilities: Sequence[float],
    seed: int,
    exposed_powers: Optional[Sequence[float]] = None,
    topk_fn=grid_topk_columns,
) -> Tuple[ResolvedGridPoint, ...]:
    """Turn validated grid points into explicit (columns, probabilities, seed).

    ``exposed_powers`` is required when any point selects by ``budget``;
    ``topk_fn`` is the ranking used for those selections (backends substitute
    their ``argpartition`` variant here for the fast path).
    """
    resolved = []
    for point in points:
        if point.columns is not None:
            columns = tuple(point.columns)
        else:
            if exposed_powers is None:
                raise ValueError(
                    "budget grid points need exposed_powers for top-k selection"
                )
            columns = tuple(topk_fn(exposed_powers, point.budget))
        if point.success_probabilities is not None:
            probabilities = tuple(
                float(p) for p in point.success_probabilities
            )
        elif point.success_probability is not None:
            probabilities = (float(point.success_probability),) * len(columns)
        else:
            probabilities = tuple(
                float(base_probabilities[column]) for column in columns
            )
        resolved.append(
            ResolvedGridPoint(
                columns=columns,
                probabilities=probabilities,
                tolerances=tuple(point.tolerances),
                seed=seed + point.seed_offset,
            )
        )
    return tuple(resolved)
