"""Process-wide per-kernel timing counters.

Every hot-path kernel call in the fault engine wraps itself in
:func:`timed_kernel`, accumulating (calls, seconds, trials processed) per
kernel name into the module-global :data:`KERNEL_TIMINGS`.  The orchestrator
snapshots the registry around each experiment build and attaches the delta to
the result's volatile section, and the serve layer aggregates those deltas
into ``/metrics`` — so fused-vs-looped kernel wins are observable in
production, not just in benchmarks.

Counters are volatile observability data: they never enter canonical result
documents, golden snapshots, or cache keys.
"""

from __future__ import annotations

import resource
import sys
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator


def peak_rss_kb() -> int:
    """This process's lifetime peak resident set size, in KiB.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalised here so
    callers never branch on platform.  The value is a lifetime high-water mark
    — it only ever grows — so bounded-memory claims must be gated in a process
    that runs *only* the workload under test (``repro.cli bench-population``
    runs its sparse-only sweep that way), while the orchestrator attaches it
    to result volatile sections as a per-worker observability signal.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        peak //= 1024
    return int(peak)

#: One kernel's accumulated counters as a plain JSON-safe dict.
KernelCounter = Dict[str, float]


class KernelTimings:
    """Thread-safe kernel-name → (calls, seconds, trials) accumulator."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[str, float]] = {}

    def record(self, kernel: str, *, seconds: float, trials: int) -> None:
        """Add one kernel invocation to the counters."""
        with self._lock:
            counter = self._counters.setdefault(
                kernel, {"calls": 0, "seconds": 0.0, "trials": 0}
            )
            counter["calls"] += 1
            counter["seconds"] += float(seconds)
            counter["trials"] += int(trials)

    def snapshot(self) -> Dict[str, KernelCounter]:
        """A deep copy of the current counters."""
        with self._lock:
            return {name: dict(counter) for name, counter in self._counters.items()}

    def delta_since(
        self, before: Dict[str, KernelCounter]
    ) -> Dict[str, KernelCounter]:
        """Counters accumulated since ``before`` (a prior :meth:`snapshot`).

        Kernels with no new calls are omitted, so an experiment that never
        touched the backends reports an empty delta.
        """
        delta: Dict[str, KernelCounter] = {}
        for name, counter in self.snapshot().items():
            previous = before.get(name, {})
            calls = counter["calls"] - previous.get("calls", 0)
            if calls <= 0:
                continue
            delta[name] = {
                "calls": calls,
                "seconds": counter["seconds"] - previous.get("seconds", 0.0),
                "trials": counter["trials"] - previous.get("trials", 0),
            }
        return delta

    def reset(self) -> None:
        """Drop all counters (tests)."""
        with self._lock:
            self._counters.clear()


#: The process-wide registry every kernel call site records into.
KERNEL_TIMINGS = KernelTimings()


@contextmanager
def timed_kernel(kernel: str, *, trials: int) -> Iterator[None]:
    """Time one kernel call into :data:`KERNEL_TIMINGS`.

    ``trials`` is the work metric, not wall time: for grid kernels it is
    point-trials (trials × grid points), so throughput comparisons between
    fused and looped paths stay apples-to-apples.
    """
    started = time.perf_counter()
    try:
        yield
    finally:
        KERNEL_TIMINGS.record(
            kernel, seconds=time.perf_counter() - started, trials=trials
        )
