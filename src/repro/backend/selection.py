"""Backend registry and selection logic.

Resolution order for :func:`get_backend`:

1. an explicit ``name`` argument (or an already-constructed backend
   instance, passed through unchanged);
2. the process-wide default installed by :func:`set_default_backend`
   (the CLI's ``--backend`` flag uses this);
3. the ``REPRO_BACKEND`` environment variable;
4. auto-detection: the fastest available backend (NumPy when importable,
   otherwise the pure-Python fallback).  The multiprocess ``shm`` backend
   registers *behind* numpy — it is opt-in via ``REPRO_BACKEND=shm`` (or an
   explicit name), never auto-picked.

``"auto"`` is accepted anywhere a name is and triggers step 4 explicitly.
Backend instances are stateless and cached, so repeated calls are cheap
enough for per-estimate resolution.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.backend.base import ComputeBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.python_backend import PythonBackend
from repro.backend.shm_backend import ShmBackend
from repro.core.exceptions import BackendError

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Name that explicitly requests auto-detection.
AUTO = "auto"

#: Registered backends, in auto-detection preference order (fastest first).
#: ``shm`` sits behind ``numpy`` deliberately: it is only worth its pool
#: overhead on large campaign workloads, so it must be requested explicitly.
_REGISTRY: Tuple[Type[ComputeBackend], ...] = (
    NumpyBackend,
    ShmBackend,
    PythonBackend,
)

_instances: Dict[str, ComputeBackend] = {}
_default_name: Optional[str] = None
_lock = threading.Lock()

BackendLike = Union[str, ComputeBackend, None]


def registered_backends() -> Tuple[str, ...]:
    """Names of every registered backend, in auto-detection order."""
    return tuple(cls.name for cls in _REGISTRY)


def available_backends() -> Tuple[str, ...]:
    """Names of the backends that can run in this environment."""
    return tuple(cls.name for cls in _REGISTRY if cls.is_available())


def availability_errors() -> Dict[str, Optional[str]]:
    """Per-registered-backend unavailability reason (``None`` = available).

    The CLI's ``backends`` command renders this so a missing backend shows
    the captured import/probe error instead of silently dropping out.
    """
    return {cls.name: cls.availability_error() for cls in _REGISTRY}


def _instantiate(name: str) -> ComputeBackend:
    with _lock:
        instance = _instances.get(name)
        if instance is None:
            for cls in _REGISTRY:
                if cls.name == name:
                    if not cls.is_available():
                        raise BackendError(
                            f"backend {name!r} is not available in this environment "
                            f"(available: {', '.join(available_backends())})"
                        )
                    instance = cls()
                    break
            else:
                raise BackendError(
                    f"unknown backend {name!r} "
                    f"(registered: {', '.join(registered_backends())}, plus {AUTO!r})"
                )
            _instances[name] = instance
        return instance


def _auto_name() -> str:
    for cls in _REGISTRY:
        if cls.is_available():
            return cls.name
    raise BackendError("no compute backend is available")  # pragma: no cover


def get_backend(backend: BackendLike = None) -> ComputeBackend:
    """Resolve a backend name/instance/None to a ready :class:`ComputeBackend`.

    See the module docstring for the resolution order.  Raises
    :class:`~repro.core.exceptions.BackendError` for unknown or unavailable
    names, including via the environment variable.
    """
    if isinstance(backend, ComputeBackend):
        return backend
    name = backend
    if name is None:
        name = _default_name
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or None
    if name is not None:
        name = name.strip().lower()
    if name is None or name == AUTO:
        name = _auto_name()
    return _instantiate(name)


def set_default_backend(backend: Optional[str]) -> Optional[str]:
    """Install a process-wide default backend name; returns the previous one.

    Pass ``None`` (or ``"auto"``) to restore auto-detection.  The name is
    validated eagerly so misconfiguration surfaces at selection time, not in
    the middle of an estimate.
    """
    global _default_name
    if backend is not None and backend != AUTO:
        _instantiate(backend.strip().lower())  # validate eagerly
        new_name: Optional[str] = backend.strip().lower()
    else:
        new_name = None
    previous = _default_name
    _default_name = new_name
    return previous


class use_backend:
    """Context manager scoping a default backend (handy in tests/benchmarks).

    Example::

        with use_backend("python"):
            estimate_violation_probability(census, trials=100)
    """

    def __init__(self, backend: Optional[str]) -> None:
        self._backend = backend
        self._previous: Optional[str] = None

    def __enter__(self) -> ComputeBackend:
        self._previous = set_default_backend(self._backend)
        return get_backend()

    def __exit__(self, *exc_info: object) -> None:
        set_default_backend(self._previous)
