"""Vectorized NumPy compute backend.

Replaces the scalar per-trial loop of the Monte-Carlo estimator with one
array-batched computation: all ``trials × n_configs`` vulnerability
indicators are drawn as a single RNG batch and reduced with a masked top-k
sum, with no Python-level work per trial.  The batch is processed in
bounded-memory chunks so a 10k-trials × 1k-configs estimate never
materializes more than a few tens of megabytes at once.

NumPy is an optional dependency (``pip install repro[fast]``); this module
imports it lazily so merely importing :mod:`repro.backend` never requires it.
The backend uses ``numpy.random.default_rng`` (PCG64), which is a *different*
stream from the pure-Python backend's ``random.Random`` — results agree with
the fallback statistically, not bit for bit, while staying fully
deterministic for a fixed seed on this backend.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.backend.base import (
    CAMPAIGN_FRACTION_SLACK,
    CampaignBatchResult,
    ComputeBackend,
    TrialBatchResult,
    _INV_2_53,
    _MASK64,
    _SPLITMIX_GAMMA,
    _SPLITMIX_MIX1,
    _SPLITMIX_MIX2,
    validate_campaign_arguments,
    validate_trial_arguments,
)
from repro.core.exceptions import BackendError

try:  # pragma: no cover - exercised indirectly via is_available()
    import numpy as _np
except ImportError:  # pragma: no cover - depends on environment
    _np = None

#: Upper bound on the number of matrix cells (trials × configs) drawn per
#: chunk; 2M float64 cells ≈ 16 MB for the uniform draw plus smaller masks.
_CHUNK_CELLS = 2_000_000


class NumpyBackend(ComputeBackend):
    """Array-batched implementation of the compute kernels."""

    name = "numpy"

    def __init__(self) -> None:
        if _np is None:
            raise BackendError(
                "the numpy backend requires NumPy; install it with "
                "'pip install repro[fast]' or select REPRO_BACKEND=python"
            )

    @classmethod
    def is_available(cls) -> bool:
        return _np is not None

    def violation_trials(
        self,
        shares: Sequence[float],
        *,
        vulnerability_probability: float,
        exploit_budget: int,
        trials: int,
        seed: int,
        tolerance: float,
    ) -> TrialBatchResult:
        validate_trial_arguments(
            shares,
            vulnerability_probability=vulnerability_probability,
            exploit_budget=exploit_budget,
            trials=trials,
            tolerance=tolerance,
        )
        share_row = _np.asarray(shares, dtype=_np.float64)
        n_configs = share_row.size
        rng = _np.random.default_rng(seed)

        if exploit_budget == 0:
            # No exploits -> nothing is ever compromised; tolerance > 0 so no
            # trial violates.  Skip the RNG batch entirely.
            return TrialBatchResult(trials=trials, violations=0, compromised_total=0.0)

        violations = 0
        compromised_total = 0.0
        chunk_rows = max(1, _CHUNK_CELLS // max(1, n_configs))
        remaining = trials
        take_all = exploit_budget >= n_configs
        # The running vulnerable-count per row fits int16 for any realistic
        # census; fall back to int32 beyond that.
        rank_dtype = _np.int16 if n_configs <= 30_000 else _np.int32
        row_index = _np.arange(chunk_rows)
        while remaining > 0:
            rows = min(chunk_rows, remaining)
            remaining -= rows
            # float32 uniforms halve RNG time and memory; 24 bits of
            # resolution is far below Monte-Carlo noise at any trial count.
            vulnerable = (
                rng.random((rows, n_configs), dtype=_np.float32)
                < vulnerability_probability
            )
            if take_all:
                # Budget covers every configuration: the attacker takes all
                # vulnerable shares, so the masked row-sum is the answer.
                compromised = vulnerable @ share_row
            elif exploit_budget == 1:
                # One exploit takes the first (= largest) vulnerable share;
                # argmax finds the first True, and the gathered mask value
                # zeroes out rows with no vulnerable configuration at all.
                first = vulnerable.argmax(axis=1)
                rows_range = row_index[:rows]
                compromised = share_row[first] * vulnerable[rows_range, first]
            else:
                # Shares are descending, so within each trial the vulnerable
                # entries appear in decreasing order; the running count of
                # vulnerable entries ranks them, and ranks <= budget select
                # exactly the attacker's greedy top-k picks.
                ranks = _np.cumsum(vulnerable, axis=1, dtype=rank_dtype)
                picked = vulnerable & (ranks <= exploit_budget)
                compromised = picked @ share_row
            violations += int(_np.count_nonzero(compromised >= tolerance))
            compromised_total += float(compromised.sum())
        return TrialBatchResult(
            trials=trials,
            violations=violations,
            compromised_total=compromised_total,
        )

    def masked_power_sums(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
    ) -> Tuple[float, ...]:
        matrix = _np.asarray(exposure, dtype=_np.float64)
        power_row = _np.asarray(powers, dtype=_np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != power_row.size:
            raise BackendError(
                f"exposure shape {matrix.shape} does not match "
                f"{power_row.size} replica powers"
            )
        return tuple(float(value) for value in power_row @ matrix)

    def campaign_trials(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        *,
        trials: int,
        seed: int,
        tolerance: float,
        total_power: float,
        trial_offset: int = 0,
    ) -> CampaignBatchResult:
        validate_campaign_arguments(
            exposure,
            powers,
            success_probabilities,
            trials=trials,
            tolerance=tolerance,
            total_power=total_power,
            trial_offset=trial_offset,
        )
        exposed = _np.asarray(exposure, dtype=_np.float64) > 0
        power_row = _np.asarray(powers, dtype=_np.float64)
        probability_row = _np.asarray(success_probabilities, dtype=_np.float64)
        replica_count, column_count = exposed.shape
        cells_per_trial = replica_count * column_count
        threshold = tolerance - CAMPAIGN_FRACTION_SLACK
        # Per-cell uniforms come from the shared counter-based splitmix64
        # stream (see repro.backend.base.campaign_uniform) so the dense draw
        # here reads the exact same numbers the scalar fallback computes for
        # the exposed cells it visits.
        seed64 = _np.uint64(seed & _MASK64)
        gamma = _np.uint64(_SPLITMIX_GAMMA)
        cell_offsets = (
            _np.arange(replica_count, dtype=_np.uint64)[:, None]
            * _np.uint64(column_count)
            + _np.arange(column_count, dtype=_np.uint64)[None, :]
        )
        chunk_trials = max(1, _CHUNK_CELLS // max(1, cells_per_trial))
        violations = 0
        compromised_total = 0.0
        per_vulnerability = _np.zeros(column_count, dtype=_np.float64)
        start = 0
        while start < trials:
            batch = min(chunk_trials, trials - start)
            counters = (
                _np.arange(
                    trial_offset + start, trial_offset + start + batch, dtype=_np.uint64
                )[:, None, None]
                * _np.uint64(cells_per_trial)
                + cell_offsets[None, :, :]
            )
            z = (seed64 + (counters + _np.uint64(1)) * gamma)
            z = (z ^ (z >> _np.uint64(30))) * _np.uint64(_SPLITMIX_MIX1)
            z = (z ^ (z >> _np.uint64(27))) * _np.uint64(_SPLITMIX_MIX2)
            z ^= z >> _np.uint64(31)
            uniforms = (z >> _np.uint64(11)).astype(_np.float64) * _INV_2_53
            success = exposed[None, :, :] & (uniforms < probability_row[None, None, :])
            per_vulnerability += _np.einsum(
                "trv,r->v", success.astype(_np.float64), power_row
            )
            compromised = success.any(axis=2).astype(_np.float64) @ power_row
            violations += int(
                _np.count_nonzero(compromised / total_power >= threshold)
            )
            compromised_total += float(compromised.sum())
            start += batch
        return CampaignBatchResult(
            trials=trials,
            violations=violations,
            compromised_total=compromised_total,
            per_vulnerability_totals=tuple(
                float(value) for value in per_vulnerability
            ),
        )

    def shannon_entropy(self, probabilities: Sequence[float], *, base: float = 2.0) -> float:
        if base <= 0 or base == 1:
            raise BackendError(f"logarithm base must be positive and != 1, got {base}")
        p = _np.asarray(probabilities, dtype=_np.float64)
        positive = p[p > 0]
        if positive.size == 0:
            return 0.0
        entropy = float(-(positive * (_np.log(positive) / _np.log(base))).sum())
        return 0.0 if entropy == 0.0 else entropy

    def asarray(self, values: Sequence[float]) -> "_np.ndarray":
        array = _np.asarray(values, dtype=_np.float64)
        if array.flags.writeable:
            # Cached by ConfigurationDistribution and handed to many callers;
            # freeze so nobody can poison the shared copy in place.
            array.setflags(write=False)
        return array

    def asarray_matrix(self, rows: Sequence[Sequence[float]]) -> "_np.ndarray":
        matrix = _np.asarray(rows, dtype=_np.float64)
        if matrix.ndim != 2:
            raise BackendError(
                f"expected a row-major 2-D matrix, got {matrix.ndim} dimension(s)"
            )
        if matrix.flags.writeable:
            # Cached by PopulationMatrix per backend; freeze the shared copy.
            matrix.setflags(write=False)
        return matrix

