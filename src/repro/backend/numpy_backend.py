"""Vectorized NumPy compute backend.

Replaces the scalar per-trial loop of the Monte-Carlo estimator with one
array-batched computation: all ``trials × n_configs`` vulnerability
indicators are drawn as a single RNG batch and reduced with a masked top-k
sum, with no Python-level work per trial.  The batch is processed in
bounded-memory chunks so a 10k-trials × 1k-configs estimate never
materializes more than a few tens of megabytes at once.

NumPy is an optional dependency (``pip install repro[fast]``); this module
imports it lazily so merely importing :mod:`repro.backend` never requires it.
The backend uses ``numpy.random.default_rng`` (PCG64), which is a *different*
stream from the pure-Python backend's ``random.Random`` — results agree with
the fallback statistically, not bit for bit, while staying fully
deterministic for a fixed seed on this backend.
"""

from __future__ import annotations

import array as _stdlib_array
from typing import Optional, Sequence, Tuple

from repro.backend.base import (
    CAMPAIGN_FRACTION_SLACK,
    CampaignBatchResult,
    CampaignGridPoint,
    CampaignGridPointResult,
    ComputeBackend,
    ResolvedGridPoint,
    SparseExposure,
    SparseGridPartial,
    TrialBatchResult,
    _INV_2_53,
    _MASK64,
    _SPLITMIX_GAMMA,
    _SPLITMIX_MIX1,
    _SPLITMIX_MIX2,
    grid_topk_columns,
    resolve_grid_points,
    validate_campaign_arguments,
    validate_grid_arguments,
    validate_sparse_partial_arguments,
    validate_trial_arguments,
)
from repro.core.exceptions import BackendError

try:  # pragma: no cover - exercised indirectly via is_available()
    import numpy as _np
except ImportError as _numpy_import_error:  # pragma: no cover - env-dependent
    _np = None
    _NUMPY_IMPORT_ERROR: Optional[str] = str(_numpy_import_error)
else:  # pragma: no cover - the numpy-equipped environment
    _NUMPY_IMPORT_ERROR = None

#: Upper bound on the number of matrix cells (trials × configs) drawn per
#: chunk; 2M float64 cells ≈ 16 MB for the uniform draw plus smaller masks.
_CHUNK_CELLS = 2_000_000


def _buffer_array(values: Sequence, dtype) -> "_np.ndarray":
    """A NumPy view/copy of a sequence, zero-copy for stdlib ``array`` buffers.

    ``np.asarray`` walks stdlib arrays element by element (they expose no
    ``__array_interface__``); ``frombuffer`` reads the million-entry CSR
    index buffers without a Python-level loop.
    """
    if isinstance(values, _stdlib_array.array):
        viewed = _np.frombuffer(values, dtype=_np.dtype(values.typecode))
        return viewed.astype(dtype, copy=False)
    return _np.asarray(values, dtype=dtype)


def _argpartition_topk(exposed_powers: Sequence[float], count: int) -> Tuple[int, ...]:
    """``grid_topk_columns`` via ``argpartition`` — O(V) selection, O(k log k) order.

    Bit-identical to the exact sort path, ties included: ``argpartition``
    breaks power ties arbitrarily, so the partition only determines the
    threshold (the ``count``-th largest power); the selection itself takes
    every strictly-greater column plus threshold-tied columns in ascending
    index order — exactly the ``(-power, column)`` ranking of
    :func:`~repro.backend.base.grid_topk_columns`.
    """
    powers = _np.asarray(exposed_powers, dtype=_np.float64)
    if count >= powers.size:
        return grid_topk_columns(exposed_powers, count)
    threshold = powers[_np.argpartition(-powers, count - 1)[count - 1]]
    above = _np.nonzero(powers > threshold)[0]
    tied = _np.nonzero(powers == threshold)[0]
    selected = above.tolist() + tied[: count - above.size].tolist()
    selected.sort(key=lambda column: (-powers[column], column))
    return tuple(selected)


class NumpyBackend(ComputeBackend):
    """Array-batched implementation of the compute kernels."""

    name = "numpy"

    def __init__(self) -> None:
        if _np is None:
            raise BackendError(
                "the numpy backend requires NumPy; install it with "
                "'pip install repro[fast]' or select REPRO_BACKEND=python"
            )

    @classmethod
    def is_available(cls) -> bool:
        return _np is not None

    @classmethod
    def availability_error(cls) -> Optional[str]:
        if _np is not None:
            return None
        return (
            f"numpy is not importable ({_NUMPY_IMPORT_ERROR}); install it "
            "with 'pip install repro[fast]' or use REPRO_BACKEND=python"
        )

    def violation_trials(
        self,
        shares: Sequence[float],
        *,
        vulnerability_probability: float,
        exploit_budget: int,
        trials: int,
        seed: int,
        tolerance: float,
    ) -> TrialBatchResult:
        validate_trial_arguments(
            shares,
            vulnerability_probability=vulnerability_probability,
            exploit_budget=exploit_budget,
            trials=trials,
            tolerance=tolerance,
        )
        share_row = _np.asarray(shares, dtype=_np.float64)
        n_configs = share_row.size
        rng = _np.random.default_rng(seed)

        if exploit_budget == 0:
            # No exploits -> nothing is ever compromised; tolerance > 0 so no
            # trial violates.  Skip the RNG batch entirely.
            return TrialBatchResult(trials=trials, violations=0, compromised_total=0.0)

        violations = 0
        compromised_total = 0.0
        chunk_rows = max(1, _CHUNK_CELLS // max(1, n_configs))
        remaining = trials
        take_all = exploit_budget >= n_configs
        # The running vulnerable-count per row fits int16 for any realistic
        # census; fall back to int32 beyond that.
        rank_dtype = _np.int16 if n_configs <= 30_000 else _np.int32
        row_index = _np.arange(chunk_rows)
        while remaining > 0:
            rows = min(chunk_rows, remaining)
            remaining -= rows
            # float32 uniforms halve RNG time and memory; 24 bits of
            # resolution is far below Monte-Carlo noise at any trial count.
            vulnerable = (
                rng.random((rows, n_configs), dtype=_np.float32)
                < vulnerability_probability
            )
            if take_all:
                # Budget covers every configuration: the attacker takes all
                # vulnerable shares, so the masked row-sum is the answer.
                compromised = vulnerable @ share_row
            elif exploit_budget == 1:
                # One exploit takes the first (= largest) vulnerable share;
                # argmax finds the first True, and the gathered mask value
                # zeroes out rows with no vulnerable configuration at all.
                first = vulnerable.argmax(axis=1)
                rows_range = row_index[:rows]
                compromised = share_row[first] * vulnerable[rows_range, first]
            else:
                # Shares are descending, so within each trial the vulnerable
                # entries appear in decreasing order; the running count of
                # vulnerable entries ranks them, and ranks <= budget select
                # exactly the attacker's greedy top-k picks.
                ranks = _np.cumsum(vulnerable, axis=1, dtype=rank_dtype)
                picked = vulnerable & (ranks <= exploit_budget)
                compromised = picked @ share_row
            violations += int(_np.count_nonzero(compromised >= tolerance))
            compromised_total += float(compromised.sum())
        return TrialBatchResult(
            trials=trials,
            violations=violations,
            compromised_total=compromised_total,
        )

    def masked_power_sums(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
    ) -> Tuple[float, ...]:
        matrix = _np.asarray(exposure, dtype=_np.float64)
        power_row = _np.asarray(powers, dtype=_np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != power_row.size:
            raise BackendError(
                f"exposure shape {matrix.shape} does not match "
                f"{power_row.size} replica powers"
            )
        return tuple(float(value) for value in power_row @ matrix)

    def campaign_trials(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        *,
        trials: int,
        seed: int,
        tolerance: float,
        total_power: float,
        trial_offset: int = 0,
    ) -> CampaignBatchResult:
        validate_campaign_arguments(
            exposure,
            powers,
            success_probabilities,
            trials=trials,
            tolerance=tolerance,
            total_power=total_power,
            trial_offset=trial_offset,
        )
        exposed = _np.asarray(exposure, dtype=_np.float64) > 0
        power_row = _np.asarray(powers, dtype=_np.float64)
        probability_row = _np.asarray(success_probabilities, dtype=_np.float64)
        replica_count, column_count = exposed.shape
        cells_per_trial = replica_count * column_count
        threshold = tolerance - CAMPAIGN_FRACTION_SLACK
        # Per-cell uniforms come from the shared counter-based splitmix64
        # stream (see repro.backend.base.campaign_uniform) so the dense draw
        # here reads the exact same numbers the scalar fallback computes for
        # the exposed cells it visits.
        seed64 = _np.uint64(seed & _MASK64)
        gamma = _np.uint64(_SPLITMIX_GAMMA)
        cell_offsets = (
            _np.arange(replica_count, dtype=_np.uint64)[:, None]
            * _np.uint64(column_count)
            + _np.arange(column_count, dtype=_np.uint64)[None, :]
        )
        chunk_trials = max(1, _CHUNK_CELLS // max(1, cells_per_trial))
        violations = 0
        compromised_total = 0.0
        per_vulnerability = _np.zeros(column_count, dtype=_np.float64)
        start = 0
        while start < trials:
            batch = min(chunk_trials, trials - start)
            counters = (
                _np.arange(
                    trial_offset + start, trial_offset + start + batch, dtype=_np.uint64
                )[:, None, None]
                * _np.uint64(cells_per_trial)
                + cell_offsets[None, :, :]
            )
            z = (seed64 + (counters + _np.uint64(1)) * gamma)
            z = (z ^ (z >> _np.uint64(30))) * _np.uint64(_SPLITMIX_MIX1)
            z = (z ^ (z >> _np.uint64(27))) * _np.uint64(_SPLITMIX_MIX2)
            z ^= z >> _np.uint64(31)
            uniforms = (z >> _np.uint64(11)).astype(_np.float64) * _INV_2_53
            success = exposed[None, :, :] & (uniforms < probability_row[None, None, :])
            per_vulnerability += _np.einsum(
                "trv,r->v", success.astype(_np.float64), power_row
            )
            compromised = success.any(axis=2).astype(_np.float64) @ power_row
            violations += int(
                _np.count_nonzero(compromised / total_power >= threshold)
            )
            compromised_total += float(compromised.sum())
            start += batch
        return CampaignBatchResult(
            trials=trials,
            violations=violations,
            compromised_total=compromised_total,
            per_vulnerability_totals=tuple(
                float(value) for value in per_vulnerability
            ),
        )

    def campaign_grid(
        self,
        exposure: Sequence[Sequence[float]],
        powers: Sequence[float],
        success_probabilities: Sequence[float],
        points: Sequence[CampaignGridPoint],
        *,
        trials: int,
        seed: int,
        total_power: float,
        trial_offset: int = 0,
        dtype: str = "float64",
        topk: str = "sort",
    ) -> Tuple[CampaignGridPointResult, ...]:
        validate_grid_arguments(
            exposure,
            powers,
            success_probabilities,
            points,
            trials=trials,
            total_power=total_power,
            trial_offset=trial_offset,
            dtype=dtype,
            topk=topk,
        )
        exposed_mask = _np.asarray(exposure, dtype=_np.float64) > 0
        power_row = _np.asarray(powers, dtype=_np.float64)
        exposed = (
            self.masked_power_sums(exposure, powers)
            if any(point.budget is not None for point in points)
            else None
        )
        resolved = resolve_grid_points(
            points,
            base_probabilities=success_probabilities,
            seed=seed,
            exposed_powers=exposed,
            topk_fn=_argpartition_topk if topk == "argpartition" else grid_topk_columns,
        )
        replica_count = exposed_mask.shape[0]
        float32 = dtype == "float32"
        # The uniform-vs-probability test is an *integer* compare: the draw
        # u = z >> 11 is exact in [0, 2^53), and u * 2^-53 < p iff
        # u < ceil(p * 2^53) (the product is exact in float64, ceil turns the
        # open real bound into a closed integer one) — the float draw is
        # never materialized.  The float32 path tests the 24-bit draw
        # u = z >> 40 against ceil(float32(p) * 2^24) the same way.
        if float32:
            draw_shift, scale = _np.uint64(40), float(1 << 24)
        else:
            draw_shift, scale = _np.uint64(11), float(1 << 53)
        point_count = len(resolved)
        # Flat cell layout: every point's exposed (row, local column) cells —
        # row-major, which is exactly the counter order r*V + c — concatenate
        # into one vector with per-cell counter stride, offset, seed and draw
        # threshold.  The whole grid then mixes as a single trials × cells
        # 2-D pass per chunk: no per-point staging, dispatch, or padding.
        mult_parts, offset_parts, seed_parts, threshold_parts = [], [], [], []
        power_parts, slot_parts = [], []
        seg_start_parts, seg_point_parts, seg_weight_parts = [], [], []
        thresholds = []
        slot_base = []
        slots = 0
        cells_total = 0
        narrow = True
        for index, point in enumerate(resolved):
            column_count = len(point.columns)
            slot_base.append(slots)
            thresholds.append(
                _np.asarray(
                    [t - CAMPAIGN_FRACTION_SLACK for t in point.tolerances],
                    dtype=_np.float64,
                )
            )
            rows, cols = _np.nonzero(exposed_mask[:, list(point.columns)])
            if rows.size:
                narrow = narrow and column_count < 256
                mult_parts.append(
                    _np.full(
                        rows.size,
                        replica_count * column_count,
                        dtype=_np.uint64,
                    )
                )
                offset_parts.append(
                    rows.astype(_np.uint64) * _np.uint64(column_count)
                    + cols.astype(_np.uint64)
                )
                seed_parts.append(
                    _np.full(rows.size, point.seed & _MASK64, dtype=_np.uint64)
                )
                probabilities = _np.asarray(
                    point.probabilities, dtype=_np.float64
                )
                if float32:
                    probabilities = probabilities.astype(_np.float32).astype(
                        _np.float64
                    )
                threshold_parts.append(
                    _np.ceil(probabilities[cols] * scale).astype(_np.uint64)
                )
                power_parts.append(power_row[rows])
                slot_parts.append(slots + cols)
                # Cells sort row-major, so each (point, replica) pair is one
                # contiguous run — "hit through any column" is a reduceat.
                hit_rows, row_starts = _np.unique(rows, return_index=True)
                seg_start_parts.append(cells_total + row_starts)
                seg_point_parts.append(
                    _np.full(hit_rows.size, index, dtype=_np.int64)
                )
                seg_weight_parts.append(power_row[hit_rows])
                cells_total += rows.size
            slots += column_count
        per_vulnerability = _np.zeros(slots, dtype=_np.float64)
        violations = [
            _np.zeros(point_thresholds.size, dtype=_np.int64)
            for point_thresholds in thresholds
        ]
        compromised_totals = _np.zeros(point_count, dtype=_np.float64)
        if cells_total == 0:
            # No exposed cells anywhere: nothing is ever compromised, but a
            # trial still "violates" any (degenerate) threshold at or below
            # zero, exactly like the scalar path.
            for index, point_thresholds in enumerate(thresholds):
                violations[index][point_thresholds <= 0.0] = trials
        else:
            cell_mult = _np.concatenate(mult_parts)
            cell_offset = _np.concatenate(offset_parts) + _np.uint64(1)
            cell_seed = _np.concatenate(seed_parts)
            cell_threshold = _np.concatenate(threshold_parts)
            cell_power = _np.concatenate(power_parts)
            cell_slot = _np.concatenate(slot_parts)
            seg_starts = _np.concatenate(seg_start_parts)
            seg_point = _np.concatenate(seg_point_parts)
            seg_weight = _np.concatenate(seg_weight_parts)
            # Block-sparse segment→point weight matrix: one BLAS matmul turns
            # per-(trial, replica) hits into every point's compromised power.
            weights = _np.zeros(
                (seg_starts.size, point_count),
                dtype=_np.float32 if float32 else _np.float64,
            )
            weights[_np.arange(seg_starts.size), seg_point] = seg_weight
            gamma = _np.uint64(_SPLITMIX_GAMMA)
            chunk_trials = max(1, _CHUNK_CELLS // cells_total)
            z_buffer = _np.empty((chunk_trials, cells_total), dtype=_np.uint64)
            mix_buffer = _np.empty_like(z_buffer)
            success_buffer = _np.empty(z_buffer.shape, dtype=_np.bool_)
            start = 0
            while start < trials:
                batch = min(chunk_trials, trials - start)
                z = z_buffer[:batch]
                mixed = mix_buffer[:batch]
                success = success_buffer[:batch]
                trial_ids = _np.arange(
                    trial_offset + start,
                    trial_offset + start + batch,
                    dtype=_np.uint64,
                )
                # z = seed + (trial*stride + offset + 1) * gamma, all in
                # place on two chunk-sized buffers.
                _np.multiply(trial_ids[:, None], cell_mult[None, :], out=z)
                z += cell_offset[None, :]
                z *= gamma
                z += cell_seed[None, :]
                _np.right_shift(z, _np.uint64(30), out=mixed)
                z ^= mixed
                z *= _np.uint64(_SPLITMIX_MIX1)
                _np.right_shift(z, _np.uint64(27), out=mixed)
                z ^= mixed
                z *= _np.uint64(_SPLITMIX_MIX2)
                _np.right_shift(z, _np.uint64(31), out=mixed)
                z ^= mixed
                _np.right_shift(z, draw_shift, out=mixed)
                _np.less(mixed, cell_threshold[None, :], out=success)
                # Per-cell success counts are exact integers, so the
                # per-column power totals reduce to one bincount regardless
                # of dtype mode.
                counts = success.sum(axis=0, dtype=_np.int64)
                per_vulnerability += _np.bincount(
                    cell_slot, weights=counts * cell_power, minlength=slots
                )
                # uint8 row counts suffice below 256 columns per point (a
                # row has at most one cell per selected column).
                if narrow:
                    hit = (
                        _np.add.reduceat(
                            success.view(_np.uint8), seg_starts, axis=1
                        )
                        > 0
                    )
                else:
                    hit = _np.logical_or.reduceat(success, seg_starts, axis=1)
                compromised = (hit @ weights).astype(_np.float64)
                fractions = compromised / total_power
                for index, point_thresholds in enumerate(thresholds):
                    violations[index] += (
                        fractions[:, index][:, None]
                        >= point_thresholds[None, :]
                    ).sum(axis=0)
                compromised_totals += compromised.sum(axis=0)
                start += batch
        return tuple(
            CampaignGridPointResult(
                trials=trials,
                columns=point.columns,
                violations=tuple(int(v) for v in violations[index]),
                compromised_total=float(compromised_totals[index]),
                per_vulnerability_totals=tuple(
                    float(v)
                    for v in per_vulnerability[
                        slot_base[index] : slot_base[index] + len(point.columns)
                    ]
                ),
            )
            for index, point in enumerate(resolved)
        )

    def sparse_masked_power_sums(
        self, sparse: SparseExposure
    ) -> Tuple[float, ...]:
        sparse.validate()
        indptr = _buffer_array(sparse.indptr, _np.int64)
        indices = _buffer_array(sparse.indices, _np.int64)
        powers = _buffer_array(sparse.powers, _np.float64)
        weights = _np.repeat(powers, _np.diff(indptr))
        sums = _np.bincount(
            indices, weights=weights, minlength=sparse.column_count
        )
        return tuple(float(value) for value in sums)

    def sparse_grid_partials(
        self,
        sparse: SparseExposure,
        points: Sequence[ResolvedGridPoint],
        *,
        trials: int,
        trial_offset: int = 0,
        row_offset: int = 0,
        total_rows: Optional[int] = None,
    ) -> Tuple[SparseGridPartial, ...]:
        total = validate_sparse_partial_arguments(
            sparse,
            points,
            trials=trials,
            trial_offset=trial_offset,
            row_offset=row_offset,
            total_rows=total_rows,
        )
        indptr = _buffer_array(sparse.indptr, _np.int64)
        all_columns = _buffer_array(sparse.indices, _np.int64)
        powers = _buffer_array(sparse.powers, _np.float64)
        # CSR nonzeros are already row-major — exactly the flat-cell layout
        # the dense fused grid kernel sorts into — so each point's cells come
        # straight from a boolean take over the shared (row, column) vectors.
        all_rows = _np.repeat(
            _np.arange(sparse.replica_count, dtype=_np.int64), _np.diff(indptr)
        )
        results = []
        for point in points:
            column_count = len(point.columns)
            lut = _np.full(sparse.column_count, -1, dtype=_np.int64)
            lut[_np.asarray(point.columns, dtype=_np.int64)] = _np.arange(
                column_count, dtype=_np.int64
            )
            local = lut[all_columns]
            keep = local >= 0
            rows = all_rows[keep]
            local_columns = local[keep]
            per_trial = _np.zeros(trials, dtype=_np.float64)
            per_vulnerability = _np.zeros(column_count, dtype=_np.float64)
            cells = int(rows.size)
            if cells:
                probabilities = _np.asarray(
                    point.probabilities, dtype=_np.float64
                )
                # Same integer-threshold compare as the dense grid kernel:
                # u = z >> 11 < ceil(p * 2^53) iff u * 2^-53 < p.
                cell_threshold = _np.ceil(
                    probabilities[local_columns] * float(1 << 53)
                ).astype(_np.uint64)
                cell_offset = (
                    (rows + row_offset).astype(_np.uint64)
                    * _np.uint64(column_count)
                    + local_columns.astype(_np.uint64)
                    + _np.uint64(1)
                )
                cell_power = powers[rows]
                mult = _np.uint64(total * column_count)
                seed64 = _np.uint64(point.seed & _MASK64)
                gamma = _np.uint64(_SPLITMIX_GAMMA)
                # Row-major cells make each replica one contiguous run.
                hit_rows, row_starts = _np.unique(rows, return_index=True)
                seg_weight = powers[hit_rows]
                narrow = column_count < 256
                chunk_trials = max(1, _CHUNK_CELLS // cells)
                z_buffer = _np.empty(
                    (min(chunk_trials, trials), cells), dtype=_np.uint64
                )
                mix_buffer = _np.empty_like(z_buffer)
                success_buffer = _np.empty(z_buffer.shape, dtype=_np.bool_)
                start = 0
                while start < trials:
                    batch = min(chunk_trials, trials - start)
                    z = z_buffer[:batch]
                    mixed = mix_buffer[:batch]
                    success = success_buffer[:batch]
                    trial_ids = _np.arange(
                        trial_offset + start,
                        trial_offset + start + batch,
                        dtype=_np.uint64,
                    )
                    # z = seed + (trial*stride + global_row*V + col + 1) *
                    # gamma, in place on two chunk-sized buffers.
                    _np.multiply(trial_ids[:, None], mult, out=z)
                    z += cell_offset[None, :]
                    z *= gamma
                    z += seed64
                    _np.right_shift(z, _np.uint64(30), out=mixed)
                    z ^= mixed
                    z *= _np.uint64(_SPLITMIX_MIX1)
                    _np.right_shift(z, _np.uint64(27), out=mixed)
                    z ^= mixed
                    z *= _np.uint64(_SPLITMIX_MIX2)
                    _np.right_shift(z, _np.uint64(31), out=mixed)
                    z ^= mixed
                    _np.right_shift(z, _np.uint64(11), out=mixed)
                    _np.less(mixed, cell_threshold[None, :], out=success)
                    counts = success.sum(axis=0, dtype=_np.int64)
                    per_vulnerability += _np.bincount(
                        local_columns,
                        weights=counts * cell_power,
                        minlength=column_count,
                    )
                    if narrow:
                        hit = (
                            _np.add.reduceat(
                                success.view(_np.uint8), row_starts, axis=1
                            )
                            > 0
                        )
                    else:
                        hit = _np.logical_or.reduceat(
                            success, row_starts, axis=1
                        )
                    per_trial[start : start + batch] = (
                        hit @ seg_weight
                    ).astype(_np.float64)
                    start += batch
            results.append(
                SparseGridPartial(
                    per_trial_compromised=tuple(
                        float(value) for value in per_trial
                    ),
                    per_vulnerability_totals=tuple(
                        float(value) for value in per_vulnerability
                    ),
                )
            )
        return tuple(results)

    def shannon_entropy(self, probabilities: Sequence[float], *, base: float = 2.0) -> float:
        if base <= 0 or base == 1:
            raise BackendError(f"logarithm base must be positive and != 1, got {base}")
        p = _np.asarray(probabilities, dtype=_np.float64)
        positive = p[p > 0]
        if positive.size == 0:
            return 0.0
        entropy = float(-(positive * (_np.log(positive) / _np.log(base))).sum())
        return 0.0 if entropy == 0.0 else entropy

    def asarray(self, values: Sequence[float]) -> "_np.ndarray":
        array = _np.asarray(values, dtype=_np.float64)
        if array.flags.writeable:
            # Cached by ConfigurationDistribution and handed to many callers;
            # freeze so nobody can poison the shared copy in place.
            array.setflags(write=False)
        return array

    def asarray_matrix(self, rows: Sequence[Sequence[float]]) -> "_np.ndarray":
        matrix = _np.asarray(rows, dtype=_np.float64)
        if matrix.ndim != 2:
            raise BackendError(
                f"expected a row-major 2-D matrix, got {matrix.ndim} dimension(s)"
            )
        if matrix.flags.writeable:
            # Cached by PopulationMatrix per backend; freeze the shared copy.
            matrix.setflags(write=False)
        return matrix

