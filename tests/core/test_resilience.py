"""Unit tests for repro.core.resilience (the Section II-C safety condition)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation
from repro.core.resilience import (
    ProtocolFamily,
    SafetyCondition,
    analyze_resilience,
    entropy_lower_bounds_takeover,
    tolerated_fault_fraction,
    tolerated_faults,
    worst_case_compromise,
)


class TestToleranceBounds:
    def test_bft_tolerates_one_third(self):
        assert tolerated_fault_fraction(ProtocolFamily.BFT) == pytest.approx(1 / 3)

    def test_hybrid_and_nakamoto_tolerate_one_half(self):
        assert tolerated_fault_fraction(ProtocolFamily.HYBRID) == pytest.approx(0.5)
        assert tolerated_fault_fraction(ProtocolFamily.NAKAMOTO) == pytest.approx(0.5)

    def test_integer_fault_bounds(self):
        assert tolerated_faults(4, ProtocolFamily.BFT) == 1
        assert tolerated_faults(7, ProtocolFamily.BFT) == 2
        assert tolerated_faults(3, ProtocolFamily.HYBRID) == 1
        assert tolerated_faults(7, ProtocolFamily.CRASH) == 3

    def test_nakamoto_has_no_integer_bound(self):
        with pytest.raises(FaultModelError):
            tolerated_faults(100, ProtocolFamily.NAKAMOTO)

    def test_rejects_non_positive_replicas(self):
        with pytest.raises(FaultModelError):
            tolerated_faults(0, ProtocolFamily.BFT)


class TestSafetyCondition:
    def test_replica_count_condition_is_inclusive(self):
        condition = SafetyCondition.for_replica_count(4, ProtocolFamily.BFT)
        assert condition.tolerated_power == 1
        assert condition.is_safe([1.0])  # exactly f faults is still safe
        assert not condition.is_safe([1.0, 1.0])

    def test_fraction_condition_is_exclusive(self):
        condition = SafetyCondition.for_family(ProtocolFamily.BFT, total_power=300.0)
        assert condition.is_safe([99.0])
        assert not condition.is_safe([100.0])  # exactly one third is unsafe
        assert not condition.is_safe([150.0])

    def test_multiple_vulnerabilities_sum(self):
        condition = SafetyCondition.for_family(ProtocolFamily.NAKAMOTO, total_power=100.0)
        assert condition.is_safe([20.0, 20.0])
        assert not condition.is_safe([30.0, 25.0])

    def test_margin(self):
        condition = SafetyCondition.for_replica_count(7, ProtocolFamily.BFT)
        assert condition.margin([1.0]) == pytest.approx(1.0)
        assert condition.margin([3.0]) == pytest.approx(-1.0)

    def test_rejects_negative_compromised_power(self):
        condition = SafetyCondition.for_family(ProtocolFamily.BFT, 10.0)
        with pytest.raises(FaultModelError):
            condition.is_safe([-1.0])

    def test_rejects_bad_total_power(self):
        with pytest.raises(FaultModelError):
            SafetyCondition(tolerated_power=1.0, total_power=0.0)

    def test_tolerated_fraction_property(self):
        condition = SafetyCondition.for_family(ProtocolFamily.HYBRID, 200.0)
        assert condition.tolerated_fraction == pytest.approx(0.5)


class TestAnalyzeResilience:
    def test_safe_report(self, unique_population):
        report = analyze_resilience(
            unique_population, {"cve-1": 1.0}, family=ProtocolFamily.BFT
        )
        assert report.safe
        assert report.compromised_fraction == pytest.approx(1 / 8)
        assert report.margin > 0

    def test_unsafe_report(self, unique_population):
        report = analyze_resilience(
            unique_population, {"cve-1": 2.0, "cve-2": 2.0}, family=ProtocolFamily.BFT
        )
        assert not report.safe
        assert report.compromised_power == pytest.approx(4.0)

    def test_per_vulnerability_breakdown_is_sorted(self, unique_population):
        report = analyze_resilience(unique_population, {"b": 1.0, "a": 2.0})
        assert [vuln for vuln, _ in report.per_vulnerability] == ["a", "b"]

    def test_total_power_override(self, unique_population):
        report = analyze_resilience(
            unique_population, {"cve": 4.0}, family=ProtocolFamily.NAKAMOTO, total_power=100.0
        )
        assert report.total_power == pytest.approx(100.0)
        assert report.safe


class TestWorstCaseCompromise:
    def test_picks_largest_exposures(self):
        power, chosen = worst_case_compromise(
            {"small": 1.0, "big": 10.0, "medium": 5.0}, max_vulnerabilities=2
        )
        assert power == pytest.approx(15.0)
        assert chosen == ("big", "medium")

    def test_zero_budget(self):
        power, chosen = worst_case_compromise({"a": 1.0}, max_vulnerabilities=0)
        assert power == 0.0
        assert chosen == ()

    def test_budget_larger_than_catalog(self):
        power, chosen = worst_case_compromise({"a": 1.0, "b": 2.0}, max_vulnerabilities=10)
        assert power == pytest.approx(3.0)
        assert set(chosen) == {"a", "b"}

    def test_deterministic_tie_break(self):
        _, chosen = worst_case_compromise({"b": 1.0, "a": 1.0}, max_vulnerabilities=1)
        assert chosen == ("a",)

    def test_rejects_negative_exposure(self):
        with pytest.raises(FaultModelError):
            worst_case_compromise({"a": -1.0})


class TestEntropyTakeoverLink:
    def test_dominant_share_threatens_bft(self):
        assert entropy_lower_bounds_takeover(0.34, 1 / 3)
        assert not entropy_lower_bounds_takeover(0.30, 1 / 3)

    def test_majority_threshold(self):
        assert entropy_lower_bounds_takeover(0.51, 0.5)
        assert not entropy_lower_bounds_takeover(0.49, 0.5)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(FaultModelError):
            entropy_lower_bounds_takeover(1.5, 0.5)
        with pytest.raises(FaultModelError):
            entropy_lower_bounds_takeover(0.5, 0.0)
