"""Property-based tests (hypothesis) for the core diversity mathematics."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.abundance import AbundanceVector
from repro.core.distribution import ConfigurationDistribution
from repro.core.diversity_index import gini_simpson_index, hill_number, simpson_index
from repro.core.entropy import max_entropy, normalized_entropy, shannon_entropy
from repro.core.optimality import is_kappa_optimal, optimality_gap
from repro.core.propositions import rational_takeover_fraction

#: Strictly positive weights that stay numerically comfortable.
positive_weights = st.lists(
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
)


def _distribution(weights) -> ConfigurationDistribution:
    return ConfigurationDistribution(
        {f"config-{index}": weight for index, weight in enumerate(weights)}
    )


class TestEntropyProperties:
    @given(positive_weights)
    def test_entropy_bounded_by_log_support(self, weights):
        dist = _distribution(weights)
        entropy = dist.entropy()
        assert -1e-9 <= entropy <= max_entropy(dist.support_size()) + 1e-9

    @given(positive_weights)
    def test_entropy_invariant_under_scaling(self, weights):
        dist = _distribution(weights)
        scaled = _distribution([w * 37.5 for w in weights])
        assert math.isclose(dist.entropy(), scaled.entropy(), abs_tol=1e-9)

    @given(positive_weights)
    def test_normalized_entropy_in_unit_interval(self, weights):
        value = normalized_entropy(weights, normalize=True)
        assert -1e-9 <= value <= 1.0 + 1e-9

    @given(st.integers(min_value=1, max_value=512))
    def test_uniform_distribution_attains_max_entropy(self, support):
        probs = [1.0 / support] * support
        assert math.isclose(shannon_entropy(probs), max_entropy(support), abs_tol=1e-9)

    @given(positive_weights, st.integers(min_value=0, max_value=63))
    def test_merging_two_configurations_never_increases_entropy(self, weights, index):
        # Concentration (merging two fault domains into one) cannot raise diversity.
        if len(weights) < 2:
            return
        dist = _distribution(weights)
        keys = list(dist.configurations())
        source = keys[index % len(keys)]
        target = keys[(index + 1) % len(keys)]
        merged_weights = dict(zip(keys, weights))
        merged_weights[target] += merged_weights.pop(source)
        merged = ConfigurationDistribution(merged_weights)
        assert merged.entropy() <= dist.entropy() + 1e-9


class TestDiversityIndexProperties:
    @given(positive_weights)
    def test_simpson_and_gini_simpson_are_complementary(self, weights):
        probs = _distribution(weights).probabilities()
        assert math.isclose(
            simpson_index(probs) + gini_simpson_index(probs), 1.0, abs_tol=1e-9
        )

    @given(positive_weights)
    def test_hill_numbers_are_monotone_in_order(self, weights):
        probs = _distribution(weights).probabilities()
        h0 = hill_number(probs, 0)
        h1 = hill_number(probs, 1)
        h2 = hill_number(probs, 2)
        assert h0 + 1e-9 >= h1 >= h2 - 1e-9

    @given(positive_weights)
    def test_hill_one_is_exp_entropy(self, weights):
        probs = _distribution(weights).probabilities()
        assert math.isclose(
            hill_number(probs, 1), math.exp(shannon_entropy(probs, base=math.e)), rel_tol=1e-9
        )


class TestOptimalityProperties:
    @given(st.integers(min_value=1, max_value=256))
    def test_uniform_is_always_kappa_optimal(self, kappa):
        dist = ConfigurationDistribution.uniform_labels(kappa)
        assert is_kappa_optimal(dist, kappa=kappa)
        assert optimality_gap(dist).is_optimal

    @given(positive_weights)
    def test_optimality_gap_is_non_negative(self, weights):
        gap = optimality_gap(_distribution(weights))
        assert gap.deficit >= -1e-9
        assert gap.evenness <= 1.0 + 1e-9


class TestAbundanceProperties:
    @given(positive_weights, st.floats(min_value=0.1, max_value=100.0))
    def test_scaling_preserves_relative_abundance_and_entropy(self, weights, factor):
        vector = AbundanceVector(
            {f"config-{index}": weight for index, weight in enumerate(weights)}
        )
        scaled = vector.scaled(factor)
        assert vector.has_same_relative_abundance(scaled, tolerance=1e-6)
        assert math.isclose(vector.entropy(), scaled.entropy(), abs_tol=1e-9)


class TestProposition3Properties:
    @settings(max_examples=50)
    @given(
        st.integers(min_value=2, max_value=32),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=8),
    )
    def test_rational_takeover_is_antitone_in_abundance(self, kappa, omega, coalition):
        dist = ConfigurationDistribution.uniform_labels(kappa)
        smaller = rational_takeover_fraction(dist, omega, coalition)
        larger = rational_takeover_fraction(dist, omega * 2, coalition)
        assert larger <= smaller + 1e-9
