"""Unit tests for repro.core.distribution."""

from __future__ import annotations

import pytest

from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import DistributionError


class TestConstruction:
    def test_weights_are_normalized(self):
        dist = ConfigurationDistribution({"a": 2.0, "b": 6.0})
        assert dist.share("a") == pytest.approx(0.25)
        assert dist.share("b") == pytest.approx(0.75)
        assert sum(dist.probabilities()) == pytest.approx(1.0)

    def test_from_counts(self):
        dist = ConfigurationDistribution.from_counts({"a": 3, "b": 1})
        assert dist.share("a") == pytest.approx(0.75)

    def test_from_counts_rejects_fractional(self):
        with pytest.raises(DistributionError):
            ConfigurationDistribution.from_counts({"a": 1.5})

    def test_uniform(self):
        dist = ConfigurationDistribution.uniform(["a", "b", "c", "d"])
        assert dist.is_uniform()
        assert dist.entropy() == pytest.approx(2.0)

    def test_uniform_rejects_duplicates(self):
        with pytest.raises(DistributionError):
            ConfigurationDistribution.uniform(["a", "a"])

    def test_uniform_labels(self):
        dist = ConfigurationDistribution.uniform_labels(8)
        assert dist.support_size() == 8
        assert dist.entropy() == pytest.approx(3.0)

    def test_from_probabilities_with_keys(self):
        dist = ConfigurationDistribution.from_probabilities([0.5, 0.5], keys=["x", "y"])
        assert dist.share("x") == pytest.approx(0.5)

    def test_from_probabilities_key_mismatch(self):
        with pytest.raises(DistributionError):
            ConfigurationDistribution.from_probabilities([0.5, 0.5], keys=["x"])

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            ConfigurationDistribution({})

    def test_rejects_negative_weight(self):
        with pytest.raises(DistributionError):
            ConfigurationDistribution({"a": -1.0})

    def test_rejects_zero_total(self):
        with pytest.raises(DistributionError):
            ConfigurationDistribution({"a": 0.0, "b": 0.0})


class TestQueries:
    def test_unknown_key_has_zero_share(self):
        dist = ConfigurationDistribution({"a": 1.0})
        assert dist.share("missing") == 0.0

    def test_support_excludes_zero_shares(self):
        dist = ConfigurationDistribution({"a": 1.0, "b": 0.0})
        assert dist.support() == ("a",)
        assert dist.support_size() == 1
        assert len(dist) == 2

    def test_largest(self):
        dist = ConfigurationDistribution({"a": 5.0, "b": 3.0, "c": 2.0})
        top = dist.largest(2)
        assert top[0][0] == "a"
        assert top[1][0] == "b"

    def test_entropy_deficit_zero_for_uniform(self):
        assert ConfigurationDistribution.uniform_labels(16).entropy_deficit() == pytest.approx(0.0)

    def test_diversity_profile_keys(self):
        profile = ConfigurationDistribution({"a": 0.6, "b": 0.4}).diversity_profile()
        assert "shannon_entropy" in profile and "hhi" in profile

    def test_equality_ignores_tiny_float_noise(self):
        a = ConfigurationDistribution({"x": 1.0, "y": 2.0})
        b = ConfigurationDistribution({"x": 10.0, "y": 20.0})
        assert a == b

    def test_contains_and_iter(self):
        dist = ConfigurationDistribution({"a": 1.0, "b": 1.0})
        assert "a" in dist
        assert set(dist) == {"a", "b"}


class TestTransformations:
    def test_restrict_renormalizes(self):
        dist = ConfigurationDistribution({"a": 0.5, "b": 0.25, "c": 0.25})
        restricted = dist.restrict(["b", "c"])
        assert restricted.share("b") == pytest.approx(0.5)
        assert "a" not in restricted

    def test_restrict_to_nothing_raises(self):
        dist = ConfigurationDistribution({"a": 1.0})
        with pytest.raises(DistributionError):
            dist.restrict(["missing"])

    def test_without_zero_shares(self):
        dist = ConfigurationDistribution({"a": 1.0, "b": 0.0})
        assert len(dist.without_zero_shares()) == 1

    def test_merge_convex_combination(self):
        a = ConfigurationDistribution({"x": 1.0})
        b = ConfigurationDistribution({"y": 1.0})
        merged = a.merge(b, self_weight=0.25)
        assert merged.share("x") == pytest.approx(0.25)
        assert merged.share("y") == pytest.approx(0.75)

    def test_merge_rejects_bad_weight(self):
        a = ConfigurationDistribution({"x": 1.0})
        with pytest.raises(DistributionError):
            a.merge(a, self_weight=1.5)

    def test_reweighted(self):
        dist = ConfigurationDistribution({"a": 0.5, "b": 0.5})
        reweighted = dist.reweighted({"a": 3.0})
        assert reweighted.share("a") == pytest.approx(0.75)

    def test_reweighted_rejects_negative(self):
        dist = ConfigurationDistribution({"a": 1.0})
        with pytest.raises(DistributionError):
            dist.reweighted({"a": -1.0})

    def test_reweighted_cannot_remove_all_mass(self):
        dist = ConfigurationDistribution({"a": 1.0})
        with pytest.raises(DistributionError):
            dist.reweighted({"a": 0.0})

    def test_split_configuration_preserves_total_mass(self):
        dist = ConfigurationDistribution({"pool": 0.6, "other": 0.4})
        split = dist.split_configuration("pool", 3)
        assert sum(split.probabilities()) == pytest.approx(1.0)
        assert split.support_size() == 4
        assert split.share("pool#0") == pytest.approx(0.2)

    def test_split_configuration_increases_entropy(self):
        dist = ConfigurationDistribution({"pool": 0.6, "other": 0.4})
        assert dist.split_configuration("pool", 4).entropy() > dist.entropy()

    def test_split_unknown_key_raises(self):
        dist = ConfigurationDistribution({"a": 1.0})
        with pytest.raises(DistributionError):
            dist.split_configuration("missing", 2)


class TestMemoization:
    """The distribution is frozen after init, so derived values are cached."""

    def test_probabilities_are_memoized(self):
        dist = ConfigurationDistribution({"a": 0.5, "b": 0.3, "c": 0.2})
        assert dist.probabilities() is dist.probabilities()

    def test_sorted_probabilities_descending(self):
        dist = ConfigurationDistribution({"a": 0.2, "b": 0.5, "c": 0.3})
        assert dist.sorted_probabilities() == (0.5, 0.3, 0.2)
        assert dist.sorted_probabilities() is dist.sorted_probabilities()

    def test_entropy_is_memoized_per_base(self):
        dist = ConfigurationDistribution({"a": 1, "b": 1, "c": 1, "d": 1})
        assert dist.entropy() == pytest.approx(2.0)
        assert dist.entropy() == dist.entropy()
        assert dist.entropy(base=4.0) == pytest.approx(1.0)

    def test_max_entropy_is_memoized(self):
        dist = ConfigurationDistribution({"a": 1, "b": 1})
        assert dist.max_entropy() == pytest.approx(1.0)
        assert dist.max_entropy() == dist.max_entropy()

    def test_largest_uses_cached_ranking(self):
        dist = ConfigurationDistribution({"a": 0.2, "b": 0.5, "c": 0.3})
        assert dist.largest(1) == (("b", 0.5),)
        assert dist.largest(2) == (("b", 0.5), ("c", 0.3))
        assert dist.largest(99) == (("b", 0.5), ("c", 0.3), ("a", 0.2))
        with pytest.raises(DistributionError):
            dist.largest(-1)

    def test_probabilities_array_is_cached_per_backend(self):
        from repro.backend import available_backends

        dist = ConfigurationDistribution({"a": 0.6, "b": 0.4})
        for backend in available_backends():
            array = dist.probabilities_array(backend)
            assert array is dist.probabilities_array(backend)
            assert list(array) == list(dist.probabilities())
            sorted_array = dist.sorted_probabilities_array(backend)
            assert list(sorted_array) == [0.6, 0.4]

    def test_memoization_does_not_leak_across_instances(self):
        first = ConfigurationDistribution({"a": 1, "b": 1})
        second = ConfigurationDistribution({"a": 3, "b": 1})
        assert first.entropy() == pytest.approx(1.0)
        assert second.entropy() < first.entropy()
