"""Unit tests for repro.core.entropy."""

from __future__ import annotations

import math

import pytest

from repro.core.entropy import (
    effective_configurations,
    entropy_deficit,
    jensen_shannon_divergence,
    max_entropy,
    min_entropy,
    normalized_entropy,
    renyi_entropy,
    shannon_entropy,
)
from repro.core.exceptions import DistributionError


class TestShannonEntropy:
    def test_uniform_two_outcomes_is_one_bit(self):
        assert shannon_entropy([0.5, 0.5]) == pytest.approx(1.0)

    def test_uniform_eight_outcomes_is_three_bits(self):
        # The Example 1 reference point: 8 unique replica configurations.
        assert shannon_entropy([1 / 8] * 8) == pytest.approx(3.0)

    def test_degenerate_distribution_has_zero_entropy(self):
        assert shannon_entropy([1.0, 0.0, 0.0]) == 0.0

    def test_zero_probabilities_are_ignored(self):
        with_zeros = shannon_entropy([0.5, 0.5, 0.0, 0.0])
        without = shannon_entropy([0.5, 0.5])
        assert with_zeros == pytest.approx(without)

    def test_natural_log_base(self):
        assert shannon_entropy([0.5, 0.5], base=math.e) == pytest.approx(math.log(2))

    def test_normalize_rescales_raw_weights(self):
        assert shannon_entropy([2, 2, 2, 2], normalize=True) == pytest.approx(2.0)

    def test_rejects_negative_probability(self):
        with pytest.raises(DistributionError):
            shannon_entropy([0.7, -0.3, 0.6])

    def test_rejects_non_normalized_without_flag(self):
        with pytest.raises(DistributionError):
            shannon_entropy([0.2, 0.2])

    def test_rejects_empty_vector(self):
        with pytest.raises(DistributionError):
            shannon_entropy([])

    def test_rejects_nan(self):
        with pytest.raises(DistributionError):
            shannon_entropy([float("nan"), 1.0], normalize=True)

    def test_rejects_bad_base(self):
        with pytest.raises(DistributionError):
            shannon_entropy([0.5, 0.5], base=1.0)

    def test_skewed_distribution_below_uniform(self):
        assert shannon_entropy([0.9, 0.1]) < shannon_entropy([0.5, 0.5])


class TestMaxAndNormalizedEntropy:
    def test_max_entropy_is_log_of_support(self):
        assert max_entropy(8) == pytest.approx(3.0)
        assert max_entropy(1) == 0.0

    def test_max_entropy_rejects_non_positive(self):
        with pytest.raises(DistributionError):
            max_entropy(0)

    def test_normalized_entropy_of_uniform_is_one(self):
        assert normalized_entropy([0.25] * 4) == pytest.approx(1.0)

    def test_normalized_entropy_of_single_config_is_zero(self):
        assert normalized_entropy([1.0]) == 0.0

    def test_normalized_entropy_between_zero_and_one(self):
        value = normalized_entropy([0.7, 0.2, 0.1])
        assert 0.0 < value < 1.0

    def test_entropy_deficit_zero_for_uniform(self):
        assert entropy_deficit([0.25] * 4) == pytest.approx(0.0)

    def test_entropy_deficit_positive_for_skew(self):
        assert entropy_deficit([0.7, 0.2, 0.1]) > 0.0


class TestRenyiAndMinEntropy:
    def test_renyi_order_one_matches_shannon(self):
        probs = [0.5, 0.3, 0.2]
        assert renyi_entropy(probs, 1.0) == pytest.approx(shannon_entropy(probs))

    def test_renyi_order_zero_is_hartley(self):
        assert renyi_entropy([0.7, 0.2, 0.1, 0.0], 0.0) == pytest.approx(math.log2(3))

    def test_renyi_infinite_order_is_min_entropy(self):
        probs = [0.5, 0.25, 0.25]
        assert renyi_entropy(probs, float("inf")) == pytest.approx(min_entropy(probs))

    def test_renyi_decreases_with_order(self):
        probs = [0.6, 0.3, 0.1]
        h1 = renyi_entropy(probs, 1.0)
        h2 = renyi_entropy(probs, 2.0)
        assert h2 <= h1

    def test_renyi_rejects_negative_order(self):
        with pytest.raises(DistributionError):
            renyi_entropy([0.5, 0.5], -1.0)

    def test_min_entropy_of_uniform(self):
        assert min_entropy([0.25] * 4) == pytest.approx(2.0)

    def test_min_entropy_tracks_largest_share(self):
        assert min_entropy([0.5, 0.25, 0.25]) == pytest.approx(1.0)


class TestEffectiveConfigurations:
    def test_uniform_effective_count_equals_support(self):
        assert effective_configurations([0.125] * 8) == pytest.approx(8.0)

    def test_skewed_effective_count_below_support(self):
        assert effective_configurations([0.9, 0.05, 0.05]) < 3.0


class TestJensenShannon:
    def test_identical_distributions_have_zero_divergence(self):
        assert jensen_shannon_divergence([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0)

    def test_disjoint_distributions_have_one_bit_divergence(self):
        assert jensen_shannon_divergence([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_divergence_is_symmetric(self):
        p, q = [0.7, 0.3], [0.4, 0.6]
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p)
        )

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DistributionError):
            jensen_shannon_divergence([0.5, 0.5], [1.0])
