"""Unit tests for repro.core.diversity_index."""

from __future__ import annotations

import pytest

from repro.core.diversity_index import (
    berger_parker_dominance,
    diversity_profile,
    gini_simpson_index,
    herfindahl_hirschman_index,
    hill_number,
    inverse_simpson_index,
    pielou_evenness,
    richness,
    simpson_index,
)
from repro.core.exceptions import DistributionError
from repro.datasets.bitcoin_pools import bitcoin_pool_distribution


class TestSimpsonFamily:
    def test_simpson_of_uniform(self):
        assert simpson_index([0.25] * 4) == pytest.approx(0.25)

    def test_simpson_of_monoculture_is_one(self):
        assert simpson_index([1.0]) == pytest.approx(1.0)

    def test_gini_simpson_complements_simpson(self):
        probs = [0.5, 0.3, 0.2]
        assert gini_simpson_index(probs) == pytest.approx(1.0 - simpson_index(probs))

    def test_inverse_simpson_of_uniform_equals_support(self):
        assert inverse_simpson_index([0.2] * 5) == pytest.approx(5.0)

    def test_more_even_distribution_has_lower_simpson(self):
        assert simpson_index([0.25] * 4) < simpson_index([0.7, 0.1, 0.1, 0.1])


class TestDominanceAndHHI:
    def test_berger_parker_is_largest_share(self):
        assert berger_parker_dominance([0.5, 0.3, 0.2]) == pytest.approx(0.5)

    def test_hhi_of_monopoly_is_10000(self):
        assert herfindahl_hirschman_index([1.0]) == pytest.approx(10000.0)

    def test_hhi_of_uniform_four(self):
        assert herfindahl_hirschman_index([0.25] * 4) == pytest.approx(2500.0)

    def test_bitcoin_pools_are_highly_concentrated(self):
        # The Feb-2023 snapshot is a textbook concentrated market.
        probs = bitcoin_pool_distribution().probabilities()
        assert herfindahl_hirschman_index(probs) > 1500.0


class TestHillNumbers:
    def test_hill_zero_is_richness(self):
        assert hill_number([0.5, 0.5, 0.0], 0) == pytest.approx(2.0)

    def test_hill_one_of_uniform(self):
        assert hill_number([0.125] * 8, 1.0) == pytest.approx(8.0)

    def test_hill_two_is_inverse_simpson(self):
        probs = [0.6, 0.3, 0.1]
        assert hill_number(probs, 2.0) == pytest.approx(inverse_simpson_index(probs))

    def test_hill_infinity_is_inverse_dominance(self):
        probs = [0.5, 0.25, 0.25]
        assert hill_number(probs, float("inf")) == pytest.approx(2.0)

    def test_hill_numbers_decrease_with_order(self):
        probs = [0.6, 0.2, 0.1, 0.1]
        assert hill_number(probs, 0) >= hill_number(probs, 1) >= hill_number(probs, 2)

    def test_rejects_negative_order(self):
        with pytest.raises(DistributionError):
            hill_number([0.5, 0.5], -0.5)


class TestEvennessAndProfile:
    def test_pielou_evenness_of_uniform_is_one(self):
        assert pielou_evenness([0.2] * 5) == pytest.approx(1.0)

    def test_richness_counts_nonzero_shares(self):
        assert richness([0.5, 0.5, 0.0, 0.0]) == 2

    def test_profile_contains_all_indices(self):
        profile = diversity_profile([0.5, 0.3, 0.2])
        expected_keys = {
            "shannon_entropy",
            "normalized_entropy",
            "simpson",
            "gini_simpson",
            "inverse_simpson",
            "berger_parker",
            "hhi",
            "richness",
            "hill_1",
            "hill_2",
        }
        assert expected_keys == set(profile)

    def test_profile_is_internally_consistent(self):
        profile = diversity_profile([0.4, 0.3, 0.2, 0.1])
        assert profile["gini_simpson"] == pytest.approx(1.0 - profile["simpson"])
        assert profile["richness"] == 4
