"""Unit tests for repro.core.optimality (Definitions 1 and 2)."""

from __future__ import annotations

import pytest

from repro.core.abundance import AbundanceVector
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import OptimalityError
from repro.core.optimality import (
    is_kappa_omega_optimal,
    is_kappa_optimal,
    kappa_of,
    kappa_omega_abundance,
    kappa_optimal_distribution,
    minimum_kappa_for_entropy,
    optimality_gap,
)


class TestKappaOptimal:
    def test_uniform_distribution_is_kappa_optimal(self):
        dist = ConfigurationDistribution.uniform_labels(8)
        assert is_kappa_optimal(dist)
        assert is_kappa_optimal(dist, kappa=8)
        assert kappa_of(dist) == 8

    def test_wrong_kappa_fails(self):
        dist = ConfigurationDistribution.uniform_labels(8)
        assert not is_kappa_optimal(dist, kappa=4)

    def test_skewed_distribution_is_not_optimal(self):
        dist = ConfigurationDistribution({"a": 0.7, "b": 0.3})
        assert not is_kappa_optimal(dist)

    def test_zero_shares_do_not_count_toward_kappa(self):
        dist = ConfigurationDistribution({"a": 0.5, "b": 0.5, "c": 0.0})
        assert kappa_of(dist) == 2
        assert is_kappa_optimal(dist, kappa=2)

    def test_accepts_raw_probability_sequences(self):
        assert is_kappa_optimal([0.25, 0.25, 0.25, 0.25])
        assert not is_kappa_optimal([0.4, 0.3, 0.3])

    def test_constructor_produces_optimal_distribution(self):
        assert is_kappa_optimal(kappa_optimal_distribution(5), kappa=5)

    def test_rejects_bad_kappa(self):
        with pytest.raises(OptimalityError):
            is_kappa_optimal([1.0], kappa=0)
        with pytest.raises(OptimalityError):
            kappa_optimal_distribution(0)


class TestKappaOmegaOptimal:
    def test_uniform_abundance_is_optimal(self):
        vector = AbundanceVector.uniform(["a", "b", "c"], abundance=4)
        assert is_kappa_omega_optimal(vector)
        assert is_kappa_omega_optimal(vector, kappa=3, omega=4)

    def test_wrong_omega_fails(self):
        vector = AbundanceVector.uniform(["a", "b", "c"], abundance=4)
        assert not is_kappa_omega_optimal(vector, kappa=3, omega=5)

    def test_uneven_abundance_fails(self):
        vector = AbundanceVector({"a": 4, "b": 4, "c": 5})
        assert not is_kappa_omega_optimal(vector)

    def test_classic_bft_abundance_one(self):
        # Traditional BFT-SMR: one replica per unique configuration.
        vector = AbundanceVector.uniform([f"r{i}" for i in range(4)], abundance=1)
        assert is_kappa_omega_optimal(vector, kappa=4, omega=1)

    def test_constructor(self):
        vector = kappa_omega_abundance(6, 3)
        assert vector.support_size() == 6
        assert vector.total() == pytest.approx(18.0)
        assert is_kappa_omega_optimal(vector, kappa=6, omega=3)

    def test_constructor_rejects_bad_parameters(self):
        with pytest.raises(OptimalityError):
            kappa_omega_abundance(0, 1)
        with pytest.raises(OptimalityError):
            kappa_omega_abundance(1, 0)


class TestOptimalityGap:
    def test_gap_zero_for_uniform(self):
        gap = optimality_gap(ConfigurationDistribution.uniform_labels(16))
        assert gap.is_optimal
        assert gap.deficit == pytest.approx(0.0)
        assert gap.evenness == pytest.approx(1.0)

    def test_gap_positive_for_skew(self):
        gap = optimality_gap(ConfigurationDistribution({"a": 0.9, "b": 0.1}))
        assert not gap.is_optimal
        assert gap.deficit > 0.0
        assert 0.0 < gap.evenness < 1.0
        assert gap.kappa == 2

    def test_gap_fields_are_consistent(self):
        gap = optimality_gap(ConfigurationDistribution({"a": 0.5, "b": 0.3, "c": 0.2}))
        assert gap.optimal_entropy == pytest.approx(gap.entropy + gap.deficit)


class TestMinimumKappa:
    def test_exact_power_of_two(self):
        assert minimum_kappa_for_entropy(3.0) == 8

    def test_fractional_entropy_rounds_up(self):
        assert minimum_kappa_for_entropy(2.9) == 8
        assert minimum_kappa_for_entropy(3.1) == 9

    def test_zero_entropy_needs_one_configuration(self):
        assert minimum_kappa_for_entropy(0.0) == 1

    def test_rejects_negative(self):
        with pytest.raises(OptimalityError):
            minimum_kappa_for_entropy(-1.0)
