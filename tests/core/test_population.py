"""Unit tests for repro.core.population and repro.core.power."""

from __future__ import annotations

import pytest

from repro.core.configuration import ComponentKind, ReplicaConfiguration, SoftwareComponent
from repro.core.exceptions import PopulationError
from repro.core.population import Replica, ReplicaPopulation
from repro.core.power import PowerLedger, PowerRegime


class TestReplica:
    def test_rejects_negative_power(self, linux_alpha_config):
        with pytest.raises(PopulationError):
            Replica("r", linux_alpha_config, power=-1.0)

    def test_rejects_empty_id(self, linux_alpha_config):
        with pytest.raises(PopulationError):
            Replica("", linux_alpha_config)

    def test_with_helpers_return_copies(self, linux_alpha_config, freebsd_beta_config):
        replica = Replica("r", linux_alpha_config, power=1.0)
        assert replica.with_power(2.0).power == 2.0
        assert replica.with_configuration(freebsd_beta_config).configuration == freebsd_beta_config
        assert replica.with_attested(True).attested
        # The original is unchanged.
        assert replica.power == 1.0 and not replica.attested


class TestMembership:
    def test_join_and_leave(self, linux_alpha_config):
        population = ReplicaPopulation()
        population.join(Replica("r0", linux_alpha_config))
        assert "r0" in population
        removed = population.leave("r0")
        assert removed.replica_id == "r0"
        assert len(population) == 0

    def test_duplicate_join_raises(self, linux_alpha_config):
        population = ReplicaPopulation([Replica("r0", linux_alpha_config)])
        with pytest.raises(PopulationError):
            population.join(Replica("r0", linux_alpha_config))

    def test_constructor_rejects_duplicate_ids(self, linux_alpha_config):
        # Mirrors the catalog's duplicate-id guard: an earlier replica must
        # never be silently shadowed by a same-id late arrival.
        with pytest.raises(PopulationError, match="already joined"):
            ReplicaPopulation(
                [
                    Replica("r0", linux_alpha_config, power=1.0),
                    Replica("r0", linux_alpha_config, power=5.0),
                ]
            )

    def test_leave_unknown_raises(self):
        with pytest.raises(PopulationError):
            ReplicaPopulation().leave("ghost")

    def test_update_and_get(self, small_population, freebsd_beta_config):
        small_population.update(small_population.get("r0").with_configuration(freebsd_beta_config))
        assert small_population.get("r0").configuration == freebsd_beta_config

    def test_filter_and_attested_subpopulations(self, linux_alpha_config):
        population = ReplicaPopulation(
            [
                Replica("a", linux_alpha_config, attested=True),
                Replica("b", linux_alpha_config, attested=False),
            ]
        )
        assert population.attested_subpopulation().replica_ids() == ("a",)
        assert population.unattested_subpopulation().replica_ids() == ("b",)


class TestPowerAndCensus:
    def test_total_power(self, small_population):
        assert small_population.total_power() == pytest.approx(4.0)

    def test_set_power(self, small_population):
        small_population.set_power("r0", 5.0)
        assert small_population.power_of("r0") == 5.0

    def test_census_power_weighted(self, small_population):
        census = small_population.configuration_census()
        assert census.support_size() == 2
        assert max(census.probabilities()) == pytest.approx(0.75)

    def test_census_count_weighted_matches_when_equal_power(self, small_population):
        by_power = small_population.configuration_census(weight_by_power=True)
        by_count = small_population.configuration_census(weight_by_power=False)
        assert by_power.entropy() == pytest.approx(by_count.entropy())

    def test_census_differs_when_power_skewed(self, small_population):
        small_population.set_power("r3", 10.0)
        by_power = small_population.configuration_census(weight_by_power=True)
        by_count = small_population.configuration_census(weight_by_power=False)
        assert by_power.entropy() != pytest.approx(by_count.entropy())

    def test_abundance_vector_counts_replicas(self, small_population):
        abundance = small_population.abundance_vector()
        assert abundance.total() == 4
        assert abundance.support_size() == 2

    def test_empty_census_raises(self):
        with pytest.raises(PopulationError):
            ReplicaPopulation().configuration_census()

    def test_unique_population_entropy(self, unique_population):
        # Example 1's comparison point: 8 unique configurations -> 3 bits.
        assert unique_population.entropy() == pytest.approx(3.0)

    def test_component_exposure_queries(self, small_population):
        openssl = SoftwareComponent(ComponentKind.CRYPTO_LIBRARY, "openssl", "1.0")
        assert len(small_population.replicas_using_component(openssl)) == 3
        assert small_population.power_using_component(openssl) == pytest.approx(3.0)
        assert small_population.fraction_using_component(openssl) == pytest.approx(0.75)

    def test_from_power_mapping(self):
        population = ReplicaPopulation.from_power_mapping({"p1": 60.0, "p2": 40.0})
        assert population.total_power() == pytest.approx(100.0)
        assert population.entropy() == pytest.approx(0.9709505944)

    def test_with_unique_configurations_rejects_zero(self):
        with pytest.raises(PopulationError):
            ReplicaPopulation.with_unique_configurations(0)


class TestPowerLedger:
    def test_uniform_ledger(self):
        ledger = PowerLedger.uniform(["a", "b", "c"])
        assert ledger.total_power() == pytest.approx(3.0)
        assert ledger.fraction_of("a") == pytest.approx(1 / 3)

    def test_set_add_remove(self):
        ledger = PowerLedger()
        ledger.set_power("a", 2.0)
        ledger.add_power("a", 1.5)
        assert ledger.power_of("a") == pytest.approx(3.5)
        ledger.remove("a")
        assert "a" not in ledger

    def test_add_power_cannot_go_negative(self):
        ledger = PowerLedger()
        ledger.set_power("a", 1.0)
        with pytest.raises(PopulationError):
            ledger.add_power("a", -2.0)

    def test_shares_are_sorted_descending(self):
        ledger = PowerLedger.from_mapping({"small": 1.0, "big": 9.0})
        shares = ledger.shares()
        assert shares[0].participant_id == "big"
        assert shares[0].fraction == pytest.approx(0.9)

    def test_concentration(self):
        ledger = PowerLedger.from_mapping({"a": 50, "b": 30, "c": 20})
        assert ledger.concentration(2) == pytest.approx(0.8)

    def test_copy_is_independent(self):
        ledger = PowerLedger.from_mapping({"a": 1.0})
        clone = ledger.copy()
        clone.set_power("a", 5.0)
        assert ledger.power_of("a") == pytest.approx(1.0)

    def test_regime_recorded(self):
        ledger = PowerLedger.from_mapping({"a": 1.0}, regime=PowerRegime.HASHRATE)
        assert ledger.regime is PowerRegime.HASHRATE
