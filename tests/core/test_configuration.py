"""Unit tests for repro.core.configuration."""

from __future__ import annotations

import pytest

from repro.core.configuration import (
    ComponentKind,
    ConfigurationSpace,
    ReplicaConfiguration,
    SoftwareComponent,
    default_configuration_space,
)
from repro.core.exceptions import ConfigurationError


class TestSoftwareComponent:
    def test_identifier_format(self):
        component = SoftwareComponent(ComponentKind.OPERATING_SYSTEM, "linux", "6.1")
        assert component.identifier == "operating_system:linux:6.1"

    def test_with_version_changes_fault_domain(self):
        component = SoftwareComponent(ComponentKind.CRYPTO_LIBRARY, "openssl", "1.0")
        patched = component.with_version("1.1")
        assert patched != component
        assert patched.name == component.name

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            SoftwareComponent(ComponentKind.WALLET, "", "1.0")

    def test_rejects_empty_version(self):
        with pytest.raises(ConfigurationError):
            SoftwareComponent(ComponentKind.WALLET, "wallet", "")

    def test_components_are_ordered(self):
        a = SoftwareComponent(ComponentKind.WALLET, "a")
        b = SoftwareComponent(ComponentKind.WALLET, "b")
        assert sorted([b, a]) == [a, b]


class TestReplicaConfiguration:
    def test_from_names_builds_expected_components(self):
        config = ReplicaConfiguration.from_names(
            operating_system="linux",
            consensus_client="client-alpha",
            trusted_hardware="intel-sgx",
        )
        assert config.component(ComponentKind.OPERATING_SYSTEM).name == "linux"
        assert config.component(ComponentKind.TRUSTED_HARDWARE).name == "intel-sgx"
        assert config.component(ComponentKind.WALLET) is None

    def test_equality_and_hash_by_value(self):
        a = ReplicaConfiguration.from_names(operating_system="linux", consensus_client="c")
        b = ReplicaConfiguration.from_names(operating_system="linux", consensus_client="c")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_labeled_configurations_are_distinct(self):
        assert ReplicaConfiguration.labeled("x") != ReplicaConfiguration.labeled("y")

    def test_rejects_duplicate_kind(self):
        with pytest.raises(ConfigurationError):
            ReplicaConfiguration(
                [
                    SoftwareComponent(ComponentKind.WALLET, "a"),
                    SoftwareComponent(ComponentKind.WALLET, "b"),
                ]
            )

    def test_rejects_empty_configuration(self):
        with pytest.raises(ConfigurationError):
            ReplicaConfiguration([])

    def test_has_component_matches_exact_version(self):
        config = ReplicaConfiguration.from_names(
            operating_system="linux", consensus_client="c", version="2.0"
        )
        assert config.has_component(
            SoftwareComponent(ComponentKind.OPERATING_SYSTEM, "linux", "2.0")
        )
        assert not config.has_component(
            SoftwareComponent(ComponentKind.OPERATING_SYSTEM, "linux", "2.1")
        )

    def test_uses_any(self, linux_alpha_config):
        vulnerable = [SoftwareComponent(ComponentKind.CRYPTO_LIBRARY, "openssl", "1.0")]
        assert linux_alpha_config.uses_any(vulnerable)
        assert not linux_alpha_config.uses_any(
            [SoftwareComponent(ComponentKind.CRYPTO_LIBRARY, "libsodium", "1.0")]
        )

    def test_shared_components(self, linux_alpha_config):
        other = ReplicaConfiguration.from_names(
            operating_system="linux",
            consensus_client="client-beta",
            crypto_library="boringssl",
        )
        shared = linux_alpha_config.shared_components(other)
        assert [component.name for component in shared] == ["linux"]

    def test_difference_count(self, linux_alpha_config, freebsd_beta_config):
        assert linux_alpha_config.difference_count(freebsd_beta_config) == 3
        assert linux_alpha_config.difference_count(linux_alpha_config) == 0

    def test_difference_counts_missing_kinds(self):
        small = ReplicaConfiguration.from_names(operating_system="linux", consensus_client="c")
        bigger = small.replace(SoftwareComponent(ComponentKind.WALLET, "w"))
        assert small.difference_count(bigger) == 1

    def test_replace_creates_new_configuration(self, linux_alpha_config):
        patched = linux_alpha_config.replace(
            SoftwareComponent(ComponentKind.CRYPTO_LIBRARY, "openssl", "1.1")
        )
        assert patched != linux_alpha_config
        assert patched.component(ComponentKind.CRYPTO_LIBRARY).version == "1.1"
        # The original is untouched (immutability).
        assert linux_alpha_config.component(ComponentKind.CRYPTO_LIBRARY).version == "1.0"

    def test_without_removes_kind(self, linux_alpha_config):
        stripped = linux_alpha_config.without(ComponentKind.CRYPTO_LIBRARY)
        assert stripped.component(ComponentKind.CRYPTO_LIBRARY) is None

    def test_without_unknown_kind_raises(self, linux_alpha_config):
        with pytest.raises(ConfigurationError):
            linux_alpha_config.without(ComponentKind.DATABASE)

    def test_iteration_and_len(self, linux_alpha_config):
        assert len(linux_alpha_config) == 3
        assert len(list(linux_alpha_config)) == 3


class TestConfigurationSpace:
    def test_size_is_cross_product(self):
        space = ConfigurationSpace.from_catalog(
            {
                ComponentKind.OPERATING_SYSTEM: ["a", "b"],
                ComponentKind.CONSENSUS_CLIENT: ["x", "y", "z"],
            }
        )
        assert space.size() == 6
        assert len(list(space.enumerate())) == 6

    def test_optional_kind_adds_absent_choice(self):
        space = ConfigurationSpace.from_catalog(
            {
                ComponentKind.OPERATING_SYSTEM: ["a"],
                ComponentKind.TRUSTED_HARDWARE: ["tpm"],
            },
            optional_kinds=[ComponentKind.TRUSTED_HARDWARE],
        )
        assert space.size() == 2

    def test_contains_enumerated_configurations(self):
        space = default_configuration_space()
        first = next(iter(space.enumerate()))
        assert first in space

    def test_does_not_contain_foreign_configuration(self):
        space = default_configuration_space()
        foreign = ReplicaConfiguration.from_names(
            operating_system="plan9", consensus_client="client-alpha"
        )
        assert foreign not in space

    def test_rejects_empty_choices(self):
        with pytest.raises(ConfigurationError):
            ConfigurationSpace.from_catalog({ComponentKind.OPERATING_SYSTEM: []})

    def test_rejects_misfiled_component(self):
        with pytest.raises(ConfigurationError):
            ConfigurationSpace(
                {
                    ComponentKind.OPERATING_SYSTEM: [
                        SoftwareComponent(ComponentKind.WALLET, "w")
                    ]
                }
            )

    def test_rejects_unknown_optional_kind(self):
        with pytest.raises(ConfigurationError):
            ConfigurationSpace.from_catalog(
                {ComponentKind.OPERATING_SYSTEM: ["a"]},
                optional_kinds=[ComponentKind.WALLET],
            )

    def test_default_space_is_reasonably_large(self):
        space = default_configuration_space()
        assert space.size() > 100
