"""Unit tests for repro.core.propositions (Propositions 1-3)."""

from __future__ import annotations

import pytest

from repro.core.abundance import AbundanceVector
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import OptimalityError
from repro.core.propositions import (
    check_proposition_1,
    check_proposition_2,
    check_proposition_3,
    message_complexity,
    proposition_3_holds,
    rational_takeover_fraction,
)
from repro.datasets.bitcoin_pools import figure1_distribution


@pytest.fixture
def kappa_optimal_vector() -> AbundanceVector:
    return AbundanceVector.uniform(["a", "b", "c", "d"], abundance=3)


class TestProposition1:
    def test_proportional_increase_preserves_entropy(self, kappa_optimal_vector):
        result = check_proposition_1(kappa_optimal_vector, {"a": 3, "b": 3, "c": 3, "d": 3})
        assert result.relative_abundance_preserved
        assert not result.entropy_decreased
        assert result.entropy_after == pytest.approx(result.entropy_before)
        assert result.holds

    def test_single_configuration_increase_decreases_entropy(self, kappa_optimal_vector):
        result = check_proposition_1(kappa_optimal_vector, {"a": 9})
        assert result.entropy_decreased
        assert not result.relative_abundance_preserved
        assert result.holds

    def test_skewed_increase_decreases_entropy(self, kappa_optimal_vector):
        result = check_proposition_1(kappa_optimal_vector, {"a": 1, "b": 2})
        assert result.entropy_after < result.entropy_before
        assert result.holds

    def test_requires_kappa_optimal_baseline(self):
        skewed = AbundanceVector({"a": 1.0, "b": 5.0})
        with pytest.raises(OptimalityError):
            check_proposition_1(skewed, {"a": 1.0})

    def test_rejects_new_configurations(self, kappa_optimal_vector):
        with pytest.raises(OptimalityError):
            check_proposition_1(kappa_optimal_vector, {"new-config": 1.0})

    def test_rejects_negative_increments(self, kappa_optimal_vector):
        with pytest.raises(OptimalityError):
            check_proposition_1(kappa_optimal_vector, {"a": -1.0})


class TestProposition2:
    def test_uniform_growth_improves_and_holds(self):
        result = check_proposition_2([0.25] * 4, [0.125] * 8)
        assert result.resilience_improved
        assert result.relative_abundances_identical
        assert result.holds

    def test_oligopoly_growth_does_not_improve(self):
        before = figure1_distribution(1).probabilities()
        after = figure1_distribution(1000).probabilities()
        result = check_proposition_2(list(before), list(after))
        # The dominant pool's share is untouched by adding small miners.
        assert result.largest_share_after == pytest.approx(result.largest_share_before)
        assert not result.resilience_improved
        assert result.holds

    def test_entropies_are_reported(self):
        result = check_proposition_2([0.5, 0.5], [0.25] * 4)
        assert result.entropy_before == pytest.approx(1.0)
        assert result.entropy_after == pytest.approx(2.0)

    def test_shrinking_system_rejected(self):
        with pytest.raises(OptimalityError):
            check_proposition_2([0.25] * 4, [0.5, 0.5])

    def test_non_uniform_improvement_would_violate(self):
        # A contrived case: growth that shrinks the largest share but stays
        # non-uniform does NOT satisfy the proposition's escape clause.
        result = check_proposition_2([0.6, 0.4], [0.3, 0.3, 0.2, 0.2])
        assert result.resilience_improved
        assert not result.relative_abundances_identical
        assert not result.holds


class TestProposition3:
    def test_rational_takeover_shrinks_with_abundance(self):
        dist = ConfigurationDistribution.uniform_labels(8)
        fractions = [
            rational_takeover_fraction(dist, omega, colluding_operators=1)
            for omega in (1, 2, 4, 8)
        ]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] == pytest.approx(1 / 8)
        assert fractions[-1] == pytest.approx(1 / 64)

    def test_coalition_size_increases_takeover(self):
        dist = ConfigurationDistribution.uniform_labels(8)
        single = rational_takeover_fraction(dist, 2, colluding_operators=1)
        coalition = rational_takeover_fraction(dist, 2, colluding_operators=4)
        assert coalition > single

    def test_takeover_capped_at_one(self):
        dist = ConfigurationDistribution.uniform_labels(2)
        assert rational_takeover_fraction(dist, 1, colluding_operators=10) == pytest.approx(1.0)

    def test_exploit_takeover_unchanged_by_abundance(self):
        dist = ConfigurationDistribution({"a": 0.5, "b": 0.3, "c": 0.2})
        results = check_proposition_3(dist, [1, 4, 16])
        assert all(r.max_exploit_takeover == pytest.approx(0.5) for r in results)

    def test_message_complexity_models(self):
        assert message_complexity(10, model="quadratic") == 100
        assert message_complexity(10, model="linear") == 10
        with pytest.raises(OptimalityError):
            message_complexity(10, model="cubic")
        with pytest.raises(OptimalityError):
            message_complexity(0)

    def test_proposition_3_holds_on_uniform_sweep(self):
        dist = ConfigurationDistribution.uniform_labels(8)
        results = check_proposition_3(dist, [1, 2, 4, 8], colluding_operators=2)
        assert proposition_3_holds(results)

    def test_replica_count_scales_with_abundance(self):
        dist = ConfigurationDistribution.uniform_labels(8)
        results = check_proposition_3(dist, [1, 3])
        assert results[0].replica_count == 8
        assert results[1].replica_count == 24

    def test_rejects_empty_abundances(self):
        dist = ConfigurationDistribution.uniform_labels(4)
        with pytest.raises(OptimalityError):
            check_proposition_3(dist, [])

    def test_rejects_non_positive_abundance(self):
        dist = ConfigurationDistribution.uniform_labels(4)
        with pytest.raises(OptimalityError):
            check_proposition_3(dist, [0])
