"""Unit tests for repro.core.abundance."""

from __future__ import annotations

import pytest

from repro.core.abundance import AbundanceVector
from repro.core.exceptions import DistributionError


class TestConstruction:
    def test_uniform_abundance(self):
        vector = AbundanceVector.uniform(["a", "b", "c"], abundance=4)
        assert vector.total() == pytest.approx(12.0)
        assert vector.is_uniform_abundance()
        assert vector.mean_abundance() == pytest.approx(4.0)

    def test_from_counts(self):
        vector = AbundanceVector.from_counts({"a": 2, "b": 3})
        assert vector.abundance_of("a") == 2

    def test_from_counts_rejects_fractional(self):
        with pytest.raises(DistributionError):
            AbundanceVector.from_counts({"a": 2.5})

    def test_rejects_negative(self):
        with pytest.raises(DistributionError):
            AbundanceVector({"a": -1.0})

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            AbundanceVector({})

    def test_rejects_zero_total(self):
        with pytest.raises(DistributionError):
            AbundanceVector({"a": 0.0})


class TestQueries:
    def test_relative_abundance_sums_to_one(self):
        vector = AbundanceVector({"a": 1.0, "b": 3.0})
        relative = vector.relative()
        assert sum(relative.values()) == pytest.approx(1.0)
        assert relative["b"] == pytest.approx(0.75)

    def test_support_excludes_zero_entries(self):
        vector = AbundanceVector({"a": 2.0, "b": 0.0})
        assert vector.support() == ("a",)
        assert vector.support_size() == 1

    def test_entropy_matches_distribution(self):
        vector = AbundanceVector.uniform(["a", "b", "c", "d"])
        assert vector.entropy() == pytest.approx(2.0)
        assert vector.to_distribution().entropy() == pytest.approx(2.0)

    def test_same_relative_abundance_detection(self):
        base = AbundanceVector({"a": 1.0, "b": 2.0})
        scaled = AbundanceVector({"a": 10.0, "b": 20.0})
        different = AbundanceVector({"a": 1.0, "b": 1.0})
        assert base.has_same_relative_abundance(scaled)
        assert not base.has_same_relative_abundance(different)

    def test_is_uniform_abundance_false_for_skew(self):
        assert not AbundanceVector({"a": 1.0, "b": 5.0}).is_uniform_abundance()


class TestTransformations:
    def test_scaled_preserves_relative_abundance(self):
        base = AbundanceVector({"a": 1.0, "b": 3.0})
        scaled = base.scaled(7.0)
        assert base.has_same_relative_abundance(scaled)
        assert scaled.total() == pytest.approx(28.0)

    def test_scaled_preserves_entropy(self):
        base = AbundanceVector({"a": 1.0, "b": 3.0, "c": 4.0})
        assert base.scaled(13.0).entropy() == pytest.approx(base.entropy())

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(DistributionError):
            AbundanceVector({"a": 1.0}).scaled(0.0)

    def test_incremented_adds_new_key(self):
        base = AbundanceVector({"a": 1.0})
        updated = base.incremented({"b": 2.0})
        assert updated.abundance_of("b") == pytest.approx(2.0)
        assert base.abundance_of("b") == 0.0  # original untouched

    def test_incremented_can_remove_individuals(self):
        base = AbundanceVector({"a": 3.0, "b": 3.0})
        updated = base.incremented({"a": -2.0})
        assert updated.abundance_of("a") == pytest.approx(1.0)

    def test_incremented_rejects_negative_result(self):
        with pytest.raises(DistributionError):
            AbundanceVector({"a": 1.0, "b": 1.0}).incremented({"a": -2.0})

    def test_with_abundance(self):
        base = AbundanceVector({"a": 1.0, "b": 1.0})
        updated = base.with_abundance("a", 5.0)
        assert updated.abundance_of("a") == pytest.approx(5.0)

    def test_merged_sums_elementwise(self):
        merged = AbundanceVector({"a": 1.0}).merged(AbundanceVector({"a": 2.0, "b": 1.0}))
        assert merged.abundance_of("a") == pytest.approx(3.0)
        assert merged.abundance_of("b") == pytest.approx(1.0)

    def test_uneven_increment_lowers_entropy_of_uniform(self):
        # The Proposition 1 mechanism at the abundance-vector level.
        base = AbundanceVector.uniform(["a", "b", "c", "d"], abundance=2)
        skewed = base.incremented({"a": 6.0})
        assert skewed.entropy() < base.entropy()

    def test_equality(self):
        assert AbundanceVector({"a": 1.0}) == AbundanceVector({"a": 1.0})
        assert AbundanceVector({"a": 1.0}) != AbundanceVector({"a": 2.0})
