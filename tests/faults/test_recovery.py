"""Tests for patch rollout and proactive recovery (vulnerability windows)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import FaultModelError
from repro.faults.recovery import ExposureTimeline, PatchRollout, ProactiveRecoveryPolicy


class TestExposureTimeline:
    def _timeline(self) -> ExposureTimeline:
        return ExposureTimeline(
            times=(0.0, 1.0, 2.0, 3.0),
            exposed_power=(4.0, 4.0, 2.0, 0.0),
            total_power=4.0,
        )

    def test_peak_fraction(self):
        assert self._timeline().peak_fraction() == pytest.approx(1.0)

    def test_exposure_area_trapezoidal(self):
        # Areas: 1*4 + 1*3 + 1*1 = 8 power-time units -> /4 total power = 2.0
        assert self._timeline().exposure_area() == pytest.approx(2.0)

    def test_time_above_fraction(self):
        timeline = self._timeline()
        assert timeline.time_above_fraction(0.9) == pytest.approx(2.0)
        assert timeline.time_above_fraction(0.4) == pytest.approx(3.0)
        with pytest.raises(FaultModelError):
            timeline.time_above_fraction(1.5)

    def test_degenerate_timeline(self):
        single = ExposureTimeline(times=(0.0,), exposed_power=(1.0,), total_power=1.0)
        assert single.exposure_area() == 0.0
        assert single.time_above_fraction(0.5) == 0.0


class TestPatchRollout:
    def test_only_exposed_replicas_are_tracked(self, small_population, openssl_vulnerability):
        rollout = PatchRollout(small_population, openssl_vulnerability, seed=1)
        assert set(rollout.exposed_replica_ids) == {"r0", "r1", "r2"}
        assert rollout.adoption_time_of("r3") is None

    def test_exposure_shrinks_to_zero(self, small_population, openssl_vulnerability):
        rollout = PatchRollout(
            small_population, openssl_vulnerability, mean_adoption_latency=5.0, seed=2
        )
        assert rollout.exposed_power_at(0.0) == pytest.approx(3.0)
        assert rollout.exposed_power_at(rollout.all_patched_time() + 1.0) == 0.0

    def test_zero_latency_patches_immediately(self, small_population, openssl_vulnerability):
        rollout = PatchRollout(
            small_population, openssl_vulnerability, mean_adoption_latency=0.0
        )
        assert rollout.exposed_power_at(1e-9) == 0.0

    def test_before_disclosure_nothing_is_exposed(self, small_population, openssl_vulnerability):
        rollout = PatchRollout(
            small_population,
            openssl_vulnerability,
            disclosure_time=10.0,
            patch_release_time=10.0,
            seed=3,
        )
        assert rollout.exposed_power_at(5.0) == 0.0

    def test_faster_rollout_has_smaller_exposure_area(
        self, small_population, openssl_vulnerability
    ):
        slow = PatchRollout(
            small_population, openssl_vulnerability, mean_adoption_latency=20.0, seed=4
        ).timeline(horizon=200.0)
        fast = PatchRollout(
            small_population, openssl_vulnerability, mean_adoption_latency=2.0, seed=4
        ).timeline(horizon=200.0)
        assert fast.exposure_area() < slow.exposure_area()

    def test_deterministic_given_seed(self, small_population, openssl_vulnerability):
        a = PatchRollout(small_population, openssl_vulnerability, seed=9)
        b = PatchRollout(small_population, openssl_vulnerability, seed=9)
        assert [a.adoption_time_of(r) for r in a.exposed_replica_ids] == [
            b.adoption_time_of(r) for r in b.exposed_replica_ids
        ]

    def test_invalid_parameters(self, small_population, openssl_vulnerability):
        with pytest.raises(FaultModelError):
            PatchRollout(
                small_population,
                openssl_vulnerability,
                disclosure_time=10.0,
                patch_release_time=5.0,
            )
        with pytest.raises(FaultModelError):
            PatchRollout(
                small_population, openssl_vulnerability, mean_adoption_latency=-1.0
            )
        with pytest.raises(FaultModelError):
            PatchRollout(small_population, openssl_vulnerability).timeline(samples=1)


class TestProactiveRecovery:
    def test_rotation_length(self, unique_population):
        policy = ProactiveRecoveryPolicy(unique_population, recovery_period=2.0)
        assert policy.rotation_length == pytest.approx(16.0)

    def test_next_recovery_is_periodic(self, unique_population):
        policy = ProactiveRecoveryPolicy(unique_population, recovery_period=1.0)
        first = policy.next_recovery_after("replica-3", 0.0)
        assert first == pytest.approx(3.0)
        later = policy.next_recovery_after("replica-3", 4.0)
        assert later == pytest.approx(3.0 + policy.rotation_length)

    def test_compromised_power_decreases_over_time(self, unique_population):
        policy = ProactiveRecoveryPolicy(unique_population, recovery_period=1.0)
        compromised = ["replica-0", "replica-1", "replica-2"]
        start = policy.compromised_power_at(compromised, 0.0, 0.0)
        later = policy.compromised_power_at(compromised, 0.0, 2.5)
        end = policy.compromised_power_at(compromised, 0.0, policy.rotation_length + 1.0)
        assert start == pytest.approx(3.0)
        assert later < start
        assert end == 0.0

    def test_timeline_bounded_by_rotation(self, unique_population):
        policy = ProactiveRecoveryPolicy(unique_population, recovery_period=0.5)
        timeline = policy.timeline(["replica-0", "replica-7"])
        assert timeline.peak_fraction() == pytest.approx(2.0 / 8.0)
        assert timeline.exposed_power[-1] == 0.0

    def test_shorter_period_means_smaller_area(self, unique_population):
        compromised = ["replica-0", "replica-4", "replica-7"]
        slow = ProactiveRecoveryPolicy(unique_population, recovery_period=4.0).timeline(
            compromised, horizon=64.0
        )
        fast = ProactiveRecoveryPolicy(unique_population, recovery_period=0.5).timeline(
            compromised, horizon=64.0
        )
        assert fast.exposure_area() < slow.exposure_area()

    def test_unknown_replica_rejected(self, unique_population):
        policy = ProactiveRecoveryPolicy(unique_population)
        with pytest.raises(FaultModelError):
            policy.next_recovery_after("ghost", 0.0)

    def test_invalid_period_rejected(self, unique_population):
        with pytest.raises(FaultModelError):
            ProactiveRecoveryPolicy(unique_population, recovery_period=0.0)
