"""Tests for the sharded campaign run and its bit-identity guarantees.

The counter-based campaign RNG makes trial-range sharding exact: a shard
computing trials ``[lo, lo+n)`` with ``trial_offset=lo`` draws precisely the
uniforms the serial run draws for those trials, so shard sums reproduce the
serial estimate bit-for-bit — even when workers are killed mid-run and
shards are re-dispatched.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.backend import available_backends, get_backend
from repro.core.exceptions import BackendError, FaultModelError
from repro.faults.engine import (
    BatchCampaignEngine,
    ShardedCampaignRun,
    _campaign_shard_worker,
    merge_campaign_batches,
    split_trial_ranges,
)
from repro.backend.base import CampaignBatchResult
from repro.faults.scenarios import ecosystem_scenario
from repro.testing.chaos import (
    CHAOS_ENV_VAR,
    CHAOS_ONCE_ENV_VAR,
    reset_chaos,
)

TRIALS = 400
SEED = 3

SCENARIO = ecosystem_scenario(
    ecosystem="default", population_size=24, seed=SEED, exploit_probability=0.6
)


@pytest.fixture(autouse=True)
def _fresh_chaos(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
    monkeypatch.delenv(CHAOS_ONCE_ENV_VAR, raising=False)
    reset_chaos()
    yield
    reset_chaos()


def _engine(backend="python"):
    return BatchCampaignEngine(
        SCENARIO.population, SCENARIO.catalog, backend=backend
    )


class TestSplitTrialRanges:
    def test_even_split(self):
        assert split_trial_ranges(8, 4) == ((0, 2), (2, 2), (4, 2), (6, 2))

    def test_remainder_goes_to_the_first_ranges(self):
        assert split_trial_ranges(10, 4) == ((0, 3), (3, 3), (6, 2), (8, 2))

    def test_more_shards_than_trials_drops_empty_ranges(self):
        assert split_trial_ranges(5, 8) == ((0, 1), (1, 1), (2, 1), (3, 1), (4, 1))

    def test_ranges_partition_the_trial_sequence(self):
        ranges = split_trial_ranges(137, 6)
        covered = []
        for offset, count in ranges:
            assert offset == len(covered)
            covered.extend(range(offset, offset + count))
        assert covered == list(range(137))

    @pytest.mark.parametrize("trials,shards", [(0, 2), (-1, 2), (5, 0), (5, -3)])
    def test_non_positive_arguments_raise(self, trials, shards):
        with pytest.raises(FaultModelError):
            split_trial_ranges(trials, shards)


class TestMergeCampaignBatches:
    def test_empty_merge_raises(self):
        with pytest.raises(FaultModelError):
            merge_campaign_batches([])

    def test_width_mismatch_raises(self):
        a = CampaignBatchResult(
            trials=1, violations=0, compromised_total=0.0,
            per_vulnerability_totals=(1.0, 2.0),
        )
        b = CampaignBatchResult(
            trials=1, violations=0, compromised_total=0.0,
            per_vulnerability_totals=(1.0,),
        )
        with pytest.raises(FaultModelError):
            merge_campaign_batches([a, b])

    def test_sums_counts_and_columns(self):
        a = CampaignBatchResult(
            trials=2, violations=1, compromised_total=3.0,
            per_vulnerability_totals=(1.0, 2.0),
        )
        b = CampaignBatchResult(
            trials=3, violations=2, compromised_total=4.5,
            per_vulnerability_totals=(0.5, 1.5),
        )
        merged = merge_campaign_batches([a, b])
        assert merged.trials == 5
        assert merged.violations == 3
        assert merged.compromised_total == 7.5
        assert merged.per_vulnerability_totals == (1.5, 3.5)


class TestTrialOffsetKernel:
    @pytest.mark.parametrize("backend", available_backends())
    def test_offset_shards_reproduce_the_serial_batch(self, backend):
        engine = _engine(backend)
        serial = engine.estimate(trials=TRIALS, seed=SEED)
        matrix = engine.matrix
        exploited = matrix.vulnerability_ids
        exposure_rows, probabilities = matrix.columns_for(exploited)
        batches = []
        for offset, count in split_trial_ranges(TRIALS, 5):
            payload = _campaign_shard_worker(
                backend,
                exposure_rows,
                matrix.powers,
                probabilities,
                count,
                SEED,
                serial.tolerated_fraction,
                matrix.total_power,
                offset,
            )
            batches.append(
                CampaignBatchResult(
                    trials=payload["trials"],
                    violations=payload["violations"],
                    compromised_total=payload["compromised_total"],
                    per_vulnerability_totals=tuple(
                        payload["per_vulnerability_totals"]
                    ),
                )
            )
        merged = merge_campaign_batches(batches)
        assert merged.violations == serial.violations
        assert merged.trials == serial.trials
        assert merged.compromised_total == pytest.approx(
            serial.mean_compromised_fraction * TRIALS * matrix.total_power
        )

    def test_negative_trial_offset_is_rejected(self):
        engine = _engine("python")
        matrix = engine.matrix
        backend = get_backend("python")
        exposure_rows, probabilities = matrix.columns_for(matrix.vulnerability_ids)
        with pytest.raises(BackendError):
            backend.campaign_trials(
                backend.asarray_matrix(exposure_rows),
                backend.asarray(matrix.powers),
                probabilities,
                trials=10,
                seed=SEED,
                tolerance=1 / 3,
                total_power=matrix.total_power,
                trial_offset=-1,
            )


class TestShardedCampaignRun:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5])
    def test_thread_sharded_estimate_is_bit_identical(self, workers):
        engine = _engine("python")
        serial = engine.estimate(trials=TRIALS, seed=SEED)
        with ThreadPoolExecutor(max_workers=workers) as executor:
            sharded = ShardedCampaignRun(
                engine, max_workers=workers, executor=executor
            ).estimate(trials=TRIALS, seed=SEED)
        assert sharded == serial

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("workers", [2, 8])
    def test_process_sharded_estimate_is_bit_identical(self, backend, workers):
        engine = _engine(backend)
        serial = engine.estimate(trials=TRIALS, seed=SEED)
        sharded = ShardedCampaignRun(engine, max_workers=workers).estimate(
            trials=TRIALS, seed=SEED
        )
        assert sharded == serial

    def test_vulnerability_subset_matches_serial(self):
        engine = _engine("python")
        subset = list(engine.matrix.vulnerability_ids[:3])
        serial = engine.estimate(subset, trials=TRIALS, seed=SEED)
        with ThreadPoolExecutor(max_workers=3) as executor:
            sharded = ShardedCampaignRun(
                engine, max_workers=3, executor=executor
            ).estimate(subset, trials=TRIALS, seed=SEED)
        assert sharded == serial

    def test_nothing_exploitable_skips_the_pool(self):
        engine = _engine("python")
        serial = engine.estimate(trials=50, seed=SEED, time=-1.0)

        class ExplodingExecutor:
            def submit(self, *args, **kwargs):  # pragma: no cover - must not run
                raise AssertionError("no shards should be submitted")

        sharded = ShardedCampaignRun(
            engine, max_workers=4, executor=ExplodingExecutor()
        ).estimate(trials=50, seed=SEED, time=-1.0)
        assert sharded == serial
        assert sharded.exploited == ()

    def test_invalid_worker_count_raises(self):
        with pytest.raises(FaultModelError):
            ShardedCampaignRun(_engine("python"), max_workers=0)

    def test_killed_worker_changes_nothing(self, tmp_path, monkeypatch):
        """A worker hard-killed mid-campaign is re-dispatched and the merged
        estimate stays bit-identical to the fault-free serial run."""
        engine = _engine("python")
        serial = engine.estimate(trials=TRIALS, seed=SEED)
        monkeypatch.setenv(CHAOS_ENV_VAR, "crash:1:1@task")
        monkeypatch.setenv(CHAOS_ONCE_ENV_VAR, str(tmp_path / "once"))
        # Forked workers re-read the env; the parent never hits a checkpoint.
        reset_chaos()
        sharded = ShardedCampaignRun(
            engine, max_workers=2, retries=3
        ).estimate(trials=TRIALS, seed=SEED)
        assert sharded == serial
