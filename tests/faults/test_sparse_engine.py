"""Tests for the campaign engines' sparse path.

The engines dispatch on ``matrix.is_sparse`` and must be an invisible
implementation detail: every estimate off a sparse matrix is bit-identical to
the dense engine's, row chunking (``chunk_rows``) never changes a number, and
the sharded runners reproduce the serial sparse run exactly — the guarantees
the ``ecosystem_scale`` experiment and ``bench-population`` stand on.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.backend import available_backends
from repro.core.exceptions import FaultModelError
from repro.core.resilience import ProtocolFamily
from repro.faults.engine import (
    BatchCampaignEngine,
    GridCampaignEngine,
    GridPointRequest,
    ShardedCampaignRun,
    ShardedGridRun,
)
from repro.faults.matrix import PopulationMatrix
from repro.faults.scenarios import ecosystem_scenario

TRIALS = 96
SEED = 11
TOLERANCES = (1.0 / 3.0, 0.5)

SCENARIO = ecosystem_scenario(
    ecosystem="default", population_size=37, seed=SEED, exploit_probability=0.5
)


def matrices():
    sparse = PopulationMatrix.build(
        SCENARIO.population, SCENARIO.catalog, layout="sparse"
    )
    dense = PopulationMatrix.build(
        SCENARIO.population, SCENARIO.catalog, layout="dense"
    )
    return sparse, dense


GRID = (
    GridPointRequest(tolerances=TOLERANCES, worst_case=2, seed_offset=0),
    GridPointRequest(
        tolerances=TOLERANCES, worst_case=3, success_probability=0.7, seed_offset=1
    ),
)


class TestBatchEngineSparsePath:
    @pytest.mark.parametrize("backend", available_backends())
    def test_estimate_matches_dense(self, backend):
        sparse, dense = matrices()
        sparse_engine = BatchCampaignEngine.from_matrix(sparse, backend=backend)
        dense_engine = BatchCampaignEngine.from_matrix(dense, backend=backend)
        assert sparse_engine.estimate(
            trials=TRIALS, seed=SEED
        ) == dense_engine.estimate(trials=TRIALS, seed=SEED)

    @pytest.mark.parametrize("backend", available_backends())
    def test_subset_and_worst_case_match_dense(self, backend):
        sparse, dense = matrices()
        sparse_engine = BatchCampaignEngine.from_matrix(sparse, backend=backend)
        dense_engine = BatchCampaignEngine.from_matrix(dense, backend=backend)
        subset = list(sparse.vulnerability_ids[:3])
        assert sparse_engine.estimate(
            subset, trials=TRIALS, seed=SEED, family=ProtocolFamily.NAKAMOTO
        ) == dense_engine.estimate(
            subset, trials=TRIALS, seed=SEED, family=ProtocolFamily.NAKAMOTO
        )
        assert sparse_engine.estimate_worst_case(
            max_vulnerabilities=2, trials=TRIALS, seed=SEED
        ) == dense_engine.estimate_worst_case(
            max_vulnerabilities=2, trials=TRIALS, seed=SEED
        )

    @pytest.mark.parametrize("chunk_rows", [1, 7, 64])
    def test_row_chunking_is_invisible(self, chunk_rows):
        sparse, _ = matrices()
        unchunked = BatchCampaignEngine.from_matrix(
            sparse, chunk_rows=10**6
        ).estimate(trials=TRIALS, seed=SEED)
        chunked = BatchCampaignEngine.from_matrix(
            sparse, chunk_rows=chunk_rows
        ).estimate(trials=TRIALS, seed=SEED)
        assert chunked == unchunked

    def test_constructor_guards(self):
        sparse, _ = matrices()
        with pytest.raises(FaultModelError, match="chunk row count"):
            BatchCampaignEngine.from_matrix(sparse, chunk_rows=0)
        with pytest.raises(FaultModelError, match="use from_matrix"):
            BatchCampaignEngine(None, None)

    def test_from_matrix_engine_has_no_population(self):
        sparse, _ = matrices()
        engine = BatchCampaignEngine.from_matrix(sparse)
        assert engine.population is None
        assert engine.catalog is None
        assert engine.matrix is sparse


class TestGridEngineSparsePath:
    @pytest.mark.parametrize("backend", available_backends())
    def test_estimate_grid_matches_dense(self, backend):
        sparse, dense = matrices()
        sparse_grid = GridCampaignEngine.from_matrix(
            sparse, backend=backend
        ).estimate_grid(GRID, trials=TRIALS, seed=SEED)
        dense_grid = GridCampaignEngine.from_matrix(
            dense, backend=backend
        ).estimate_grid(GRID, trials=TRIALS, seed=SEED)
        assert sparse_grid == dense_grid

    def test_explicit_ids_match_dense(self):
        sparse, dense = matrices()
        ids = tuple(sparse.vulnerability_ids[2:5])
        request = (
            GridPointRequest(
                tolerances=TOLERANCES, vulnerability_ids=ids, seed_offset=2
            ),
        )
        assert GridCampaignEngine.from_matrix(sparse).estimate_grid(
            request, trials=TRIALS, seed=SEED
        ) == GridCampaignEngine.from_matrix(dense).estimate_grid(
            request, trials=TRIALS, seed=SEED
        )

    @pytest.mark.parametrize("chunk_rows", [5, 16])
    def test_row_chunking_is_invisible_and_counted(self, chunk_rows):
        sparse, _ = matrices()
        unchunked_engine = GridCampaignEngine.from_matrix(sparse, chunk_rows=10**6)
        chunked_engine = GridCampaignEngine.from_matrix(
            sparse, chunk_rows=chunk_rows
        )
        unchunked = unchunked_engine.estimate_grid(GRID, trials=TRIALS, seed=SEED)
        chunked = chunked_engine.estimate_grid(GRID, trials=TRIALS, seed=SEED)
        assert chunked == unchunked
        expected = -(-sparse.replica_count // chunk_rows)
        assert chunked_engine.last_chunk_count == expected
        assert unchunked_engine.last_chunk_count == 1


class TestShardedSparseRuns:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_sharded_campaign_matches_serial(self, workers):
        sparse, _ = matrices()
        engine = BatchCampaignEngine.from_matrix(
            sparse, backend="python", chunk_rows=16
        )
        serial = engine.estimate(trials=TRIALS, seed=SEED)
        with ThreadPoolExecutor(max_workers=workers) as executor:
            sharded = ShardedCampaignRun(
                engine, max_workers=workers, executor=executor
            ).estimate(trials=TRIALS, seed=SEED)
        assert sharded == serial

    def test_sharded_campaign_subset_matches_serial(self):
        sparse, _ = matrices()
        engine = BatchCampaignEngine.from_matrix(sparse, backend="python")
        subset = list(sparse.vulnerability_ids[:4])
        serial = engine.estimate(subset, trials=TRIALS, seed=SEED)
        with ThreadPoolExecutor(max_workers=3) as executor:
            sharded = ShardedCampaignRun(
                engine, max_workers=3, executor=executor
            ).estimate(subset, trials=TRIALS, seed=SEED)
        assert sharded == serial

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sharded_grid_matches_serial(self, workers):
        sparse, _ = matrices()
        engine = GridCampaignEngine.from_matrix(
            sparse, backend="python", chunk_rows=16
        )
        serial = engine.estimate_grid(GRID, trials=TRIALS, seed=SEED)
        with ThreadPoolExecutor(max_workers=workers) as executor:
            sharded = ShardedGridRun(
                engine, max_workers=workers, executor=executor
            ).estimate_grid(GRID, trials=TRIALS, seed=SEED)
        assert sharded == serial
