"""Edge-case tests for the campaign scenario constructors.

Pins the properties the sweep experiments lean on: churn snapshots are
frozen (later churn can't mutate an earlier checkpoint), trajectories are
deterministic across repeated calls, reliability sweeps share one
population, and single-point grids are first-class.
"""

from __future__ import annotations

import pytest

from repro.core.exceptions import FaultModelError
from repro.core.resilience import ProtocolFamily
from repro.faults.scenarios import (
    churn_checkpoint_grid,
    churned_scenarios,
    ecosystem_scenario,
    reliability_scenarios,
)

FAMILIES = (ProtocolFamily.BFT, ProtocolFamily.NAKAMOTO)


def census_of(scenario):
    """A hashable fingerprint of one scenario's population and catalog."""
    return (
        tuple(
            (replica.replica_id, replica.power)
            for replica in scenario.population.replicas()
        ),
        scenario.catalog.ids(),
    )


class TestChurnedScenarios:
    def test_zero_steps_rejected(self):
        with pytest.raises(FaultModelError, match="churn steps"):
            churned_scenarios(steps=0)
        with pytest.raises(FaultModelError, match="churn steps"):
            churned_scenarios(steps=-5)

    def test_checkpoints_must_fit_in_steps(self):
        with pytest.raises(FaultModelError, match="checkpoints"):
            churned_scenarios(steps=10, checkpoints=0)
        with pytest.raises(FaultModelError, match="checkpoints"):
            churned_scenarios(steps=10, checkpoints=11)

    def test_trajectory_shape_and_step_spacing(self):
        trajectory = churned_scenarios(
            population_size=16, steps=12, checkpoints=3
        )
        steps = [step for step, _ in trajectory]
        assert steps == [0, 4, 8, 12]  # checkpoint 0 plus three even segments

    def test_single_checkpoint_trajectory(self):
        trajectory = churned_scenarios(
            population_size=16, steps=7, checkpoints=1
        )
        assert [step for step, _ in trajectory] == [0, 7]

    def test_snapshots_are_frozen(self):
        """Later churn segments must not reach back into earlier snapshots."""
        trajectory = churned_scenarios(
            population_size=16, steps=20, checkpoints=4
        )
        baseline = ecosystem_scenario(
            ecosystem="default",
            population_size=16,
            seed=0,
            exploit_probability=1.0,
        )
        _, first = trajectory[0]
        assert census_of(first)[0] == census_of(baseline)[0]

    def test_repeated_calls_are_deterministic(self):
        kwargs = dict(population_size=16, steps=15, checkpoints=3, churn_seed=9)
        first = churned_scenarios(**kwargs)
        second = churned_scenarios(**kwargs)
        assert [step for step, _ in first] == [step for step, _ in second]
        for (_, left), (_, right) in zip(first, second):
            assert census_of(left) == census_of(right)

    def test_churn_actually_changes_the_census(self):
        trajectory = churned_scenarios(
            population_size=16, steps=60, checkpoints=2, join_rate=0.9
        )
        fingerprints = {census_of(scenario) for _, scenario in trajectory}
        assert len(fingerprints) > 1


class TestReliabilityScenarios:
    def test_empty_probabilities_rejected(self):
        with pytest.raises(FaultModelError, match="at least one"):
            reliability_scenarios(())

    def test_population_is_shared_across_probabilities(self):
        scenarios = reliability_scenarios((0.2, 0.8), population_size=12, seed=4)
        low, high = scenarios[0.2], scenarios[0.8]
        assert census_of(low)[0] == census_of(high)[0]
        assert low.catalog.ids() == high.catalog.ids()

    def test_catalog_probability_varies(self):
        scenarios = reliability_scenarios((0.3, 0.7), population_size=12, seed=4)
        for probability, scenario in scenarios.items():
            assert all(
                vulnerability.exploit_probability == probability
                for vulnerability in scenario.catalog.all()
            )

    def test_repeated_calls_are_deterministic(self):
        first = reliability_scenarios((0.5,), population_size=12, seed=4)
        second = reliability_scenarios((0.5,), population_size=12, seed=4)
        assert census_of(first[0.5]) == census_of(second[0.5])


class TestChurnCheckpointGrid:
    def test_single_point_grid(self):
        (point,) = churn_checkpoint_grid(3, budget=2, families=FAMILIES)
        assert point.worst_case == 2
        assert point.seed_offset == 3
        assert point.success_probability is None
        assert len(point.tolerances) == len(FAMILIES)

    def test_checkpoint_zero_is_valid(self):
        (point,) = churn_checkpoint_grid(0, budget=1, families=FAMILIES)
        assert point.seed_offset == 0

    def test_negative_checkpoint_rejected(self):
        with pytest.raises(FaultModelError, match="checkpoint index"):
            churn_checkpoint_grid(-1, budget=1, families=FAMILIES)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(FaultModelError, match="budget"):
            churn_checkpoint_grid(0, budget=0, families=FAMILIES)
