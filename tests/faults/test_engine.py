"""Tests for the batched campaign engine and its cross-backend identity."""

from __future__ import annotations

import pytest

from repro.analysis.monte_carlo import estimate_violation_probability
from repro.backend import available_backends, get_backend
from repro.backend.base import campaign_uniform
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import FaultModelError
from repro.core.resilience import ProtocolFamily
from repro.faults.campaign import ExploitCampaign
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.engine import BatchCampaignEngine, run_census_trials
from repro.faults.scenarios import ecosystem_scenario


@pytest.fixture
def flaky_scenario():
    """A moderately diverse population with 60%-reliable exploits."""
    return ecosystem_scenario(
        ecosystem="default", population_size=24, seed=3, exploit_probability=0.6
    )


class TestCounterRng:
    def test_numpy_uniforms_match_scalar_reference(self):
        if "numpy" not in available_backends():
            pytest.skip("numpy not installed")
        import numpy as np

        from repro.backend.base import (
            _INV_2_53,
            _MASK64,
            _SPLITMIX_GAMMA,
            _SPLITMIX_MIX1,
            _SPLITMIX_MIX2,
        )

        indices = np.arange(0, 4096, dtype=np.uint64)
        z = np.uint64(99 & _MASK64) + (indices + np.uint64(1)) * np.uint64(
            _SPLITMIX_GAMMA
        )
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_SPLITMIX_MIX1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_SPLITMIX_MIX2)
        z ^= z >> np.uint64(31)
        vectorized = (z >> np.uint64(11)).astype(np.float64) * _INV_2_53
        scalar = [campaign_uniform(99, int(index)) for index in range(4096)]
        assert vectorized.tolist() == scalar

    def test_uniforms_are_in_unit_interval_and_well_spread(self):
        values = [campaign_uniform(0, index) for index in range(10_000)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert 0.45 < sum(values) / len(values) < 0.55


class TestCrossBackendIdentity:
    def test_estimates_identical_across_backends(self, flaky_scenario):
        estimates = {}
        for backend in available_backends():
            engine = BatchCampaignEngine(
                flaky_scenario.population, flaky_scenario.catalog, backend=backend
            )
            estimates[backend] = engine.estimate(trials=300, seed=42)
        results = list(estimates.values())
        for other in results[1:]:
            assert other == results[0]

    def test_worst_case_estimates_identical_across_backends(self, flaky_scenario):
        estimates = [
            BatchCampaignEngine(
                flaky_scenario.population, flaky_scenario.catalog, backend=backend
            ).estimate_worst_case(max_vulnerabilities=2, trials=300, seed=7)
            for backend in available_backends()
        ]
        for other in estimates[1:]:
            assert other == estimates[0]


class TestEstimateSemantics:
    def test_reliable_exploits_reproduce_the_deterministic_campaign(
        self, small_population, catalog
    ):
        # p = 1.0 everywhere: every trial equals the scalar campaign outcome.
        engine = BatchCampaignEngine(small_population, catalog)
        estimate = engine.estimate(trials=50, seed=1)
        outcome = ExploitCampaign(small_population, catalog).run(catalog.ids())
        assert estimate.violation_probability == 1.0
        assert estimate.mean_compromised_fraction == pytest.approx(
            outcome.compromised_fraction
        )
        assert dict(estimate.mean_power_per_vulnerability) == pytest.approx(
            dict(outcome.power_per_vulnerability)
        )

    def test_mean_fraction_scales_with_exploit_probability(self, small_population):
        from repro.core.configuration import ComponentKind
        from repro.faults.vulnerability import make_vulnerability

        catalog = VulnerabilityCatalog(
            [
                make_vulnerability(
                    ComponentKind.OPERATING_SYSTEM, "linux", exploit_probability=0.5
                )
            ]
        )
        engine = BatchCampaignEngine(small_population, catalog)
        estimate = engine.estimate(trials=4000, seed=5)
        # 3 of 4 replicas exposed, each compromised with p=0.5.
        assert estimate.mean_compromised_fraction == pytest.approx(0.375, abs=0.02)

    def test_tolerance_families(self, small_population, catalog):
        engine = BatchCampaignEngine(small_population, catalog)
        bft = engine.estimate(trials=10, seed=0, family=ProtocolFamily.BFT)
        majority = engine.estimate(trials=10, seed=0, family=ProtocolFamily.NAKAMOTO)
        assert bft.tolerated_fraction == pytest.approx(1 / 3)
        assert majority.tolerated_fraction == pytest.approx(1 / 2)
        # 75% compromised violates both.
        assert bft.violations == majority.violations == 10

    def test_disclosure_time_gates_columns(self, small_population):
        from repro.core.configuration import ComponentKind
        from repro.faults.vulnerability import make_vulnerability

        catalog = VulnerabilityCatalog(
            [
                make_vulnerability(
                    ComponentKind.OPERATING_SYSTEM, "linux", disclosed_at=50.0
                )
            ]
        )
        engine = BatchCampaignEngine(small_population, catalog)
        estimate = engine.estimate(trials=20, seed=0, time=0.0)
        assert estimate.exploited == ()
        assert estimate.violations == 0
        assert estimate.mean_compromised_fraction == 0.0
        assert dict(estimate.mean_power_per_vulnerability) == {
            catalog.ids()[0]: 0.0
        }

    def test_seed_determinism_and_variation(self, flaky_scenario):
        engine = BatchCampaignEngine(
            flaky_scenario.population, flaky_scenario.catalog
        )
        first = engine.estimate(trials=200, seed=8)
        again = engine.estimate(trials=200, seed=8)
        other = engine.estimate(trials=200, seed=9)
        assert first == again
        assert first != other


class TestUsageErrors:
    def test_zero_trials_rejected(self, small_population, catalog):
        engine = BatchCampaignEngine(small_population, catalog)
        with pytest.raises(FaultModelError, match="trial count"):
            engine.estimate(trials=0)

    def test_empty_catalog_rejected(self, small_population):
        engine = BatchCampaignEngine(small_population, VulnerabilityCatalog())
        with pytest.raises(FaultModelError, match="catalog is empty"):
            engine.estimate(trials=10)
        with pytest.raises(FaultModelError, match="catalog is empty"):
            engine.estimate_worst_case(trials=10)

    def test_empty_selection_rejected(self, small_population, catalog):
        engine = BatchCampaignEngine(small_population, catalog)
        with pytest.raises(FaultModelError, match="at least one vulnerability"):
            engine.estimate([], trials=10)

    def test_duplicate_selection_rejected(self, small_population, catalog):
        engine = BatchCampaignEngine(small_population, catalog)
        with pytest.raises(FaultModelError, match="duplicate vulnerability ids"):
            engine.estimate(
                ["CVE-TEST-OPENSSL", "CVE-TEST-OPENSSL"], trials=10
            )

    def test_nonpositive_budget_rejected(self, small_population, catalog):
        engine = BatchCampaignEngine(small_population, catalog)
        with pytest.raises(FaultModelError, match="max vulnerabilities"):
            engine.estimate_worst_case(max_vulnerabilities=0, trials=10)

    def test_bad_tolerance_rejected(self, small_population, catalog):
        engine = BatchCampaignEngine(small_population, catalog)
        with pytest.raises(FaultModelError, match="tolerated fraction"):
            engine.estimate(trials=10, tolerated_fraction=0.0)


class TestCensusSeam:
    @pytest.mark.parametrize("backend", available_backends())
    def test_census_trials_match_the_estimator(self, backend):
        census = ConfigurationDistribution({"a": 0.5, "b": 0.3, "c": 0.2})
        batch = run_census_trials(
            census,
            vulnerability_probability=0.3,
            exploit_budget=1,
            trials=500,
            seed=21,
            tolerance=1 / 3,
            backend=backend,
        )
        estimate = estimate_violation_probability(
            census,
            vulnerability_probability=0.3,
            exploit_budget=1,
            trials=500,
            seed=21,
            backend=backend,
        )
        assert batch.violations == estimate.violations
        assert batch.violations / batch.trials == estimate.violation_probability
