"""Tests for :class:`GridCampaignEngine` — the fused grid campaign seam.

Four guarantees carry the re-plumbed sweep experiments:

- every grid point is **bit-identical** to the looped
  :class:`BatchCampaignEngine` calls it replaced (same seeds, same
  selection, same verdicts);
- trial chunking is invisible: a run split into many kernel chunks equals
  the single-chunk run exactly, including at the acceptance scale of
  10\N{SUPERSCRIPT FIVE} trials × 100 grid points;
- sharded execution over pool workers reproduces the in-process estimates;
- malformed grids are :class:`FaultModelError` usage errors, mirroring the
  looped engine's validation surface.
"""

from __future__ import annotations

import math

import pytest

from repro.backend import NumpyBackend, available_backends
from repro.backend.base import CampaignGridPointResult
from repro.backend.timing import KERNEL_TIMINGS
from repro.core.exceptions import FaultModelError
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.engine import (
    BatchCampaignEngine,
    GridCampaignEngine,
    GridPointRequest,
    ShardedGridRun,
    merge_campaign_grid_batches,
)
from repro.faults.scenarios import (
    budget_grid,
    ecosystem_scenario,
    family_tolerances,
    reliability_grid,
)

needs_numpy = pytest.mark.skipif(
    not NumpyBackend.is_available(), reason="numpy not installed"
)

SEED = 11
TRIALS = 240
FAMILIES = (ProtocolFamily.BFT, ProtocolFamily.NAKAMOTO)
BFT_TOLERANCE = tolerated_fault_fraction(ProtocolFamily.BFT)


@pytest.fixture(scope="module")
def scenario():
    """A moderately diverse population with 60%-reliable exploits."""
    return ecosystem_scenario(
        ecosystem="default", population_size=24, seed=3, exploit_probability=0.6
    )


def grid_engine(scenario, backend="python", **kwargs):
    return GridCampaignEngine(
        scenario.population, scenario.catalog, backend=backend, **kwargs
    )


class TestGridMatchesBatchEngine:
    """The fused grid reproduces the looped per-point calls bit for bit."""

    @pytest.mark.parametrize("backend", available_backends())
    def test_budget_grid_equals_looped_worst_case(self, scenario, backend):
        engine = grid_engine(scenario, backend)
        batch = BatchCampaignEngine(
            scenario.population, scenario.catalog, backend=backend
        )
        budgets = (1, 2, 4)
        estimates = engine.estimate_grid(
            budget_grid(budgets, families=FAMILIES), trials=TRIALS, seed=SEED
        )
        for index, (budget, point) in enumerate(zip(budgets, estimates)):
            for position, family in enumerate(FAMILIES):
                looped = batch.estimate_worst_case(
                    max_vulnerabilities=budget,
                    trials=TRIALS,
                    seed=SEED + index,
                    family=family,
                )
                assert point.estimate_at(position) == looped

    @pytest.mark.parametrize("backend", available_backends())
    def test_explicit_ids_equal_looped_estimate(self, scenario, backend):
        ids = scenario.catalog.ids()[:3]
        engine = grid_engine(scenario, backend)
        batch = BatchCampaignEngine(
            scenario.population, scenario.catalog, backend=backend
        )
        (point,) = engine.estimate_grid(
            (
                GridPointRequest(
                    tolerances=(BFT_TOLERANCE,), vulnerability_ids=ids
                ),
            ),
            trials=TRIALS,
            seed=SEED,
        )
        looped = batch.estimate(
            ids, trials=TRIALS, seed=SEED, family=ProtocolFamily.BFT
        )
        assert point.estimate_at(0) == looped

    def test_probability_override_equals_recataloged_scenario(self, scenario):
        """A reliability point equals a full re-catalog at that probability."""
        override = 0.25
        recataloged = ecosystem_scenario(
            ecosystem="default",
            population_size=24,
            seed=3,
            exploit_probability=override,
        )
        engine = grid_engine(scenario, "python")
        batch = BatchCampaignEngine(
            recataloged.population, recataloged.catalog, backend="python"
        )
        (point,) = engine.estimate_grid(
            reliability_grid((override,), budget=2, families=FAMILIES),
            trials=TRIALS,
            seed=SEED,
        )
        for position, family in enumerate(FAMILIES):
            looped = batch.estimate_worst_case(
                max_vulnerabilities=2, trials=TRIALS, seed=SEED, family=family
            )
            assert point.estimate_at(position) == looped

    def test_shared_draws_across_tolerances(self, scenario):
        """Every tolerance judges the same campaigns: per-draw stats agree."""
        engine = grid_engine(scenario, "python")
        (point,) = engine.estimate_grid(
            budget_grid((3,), families=FAMILIES), trials=TRIALS, seed=SEED
        )
        bft, majority = point.estimate_at(0), point.estimate_at(1)
        assert bft.mean_compromised_fraction == majority.mean_compromised_fraction
        assert bft.mean_power_per_vulnerability == majority.mean_power_per_vulnerability
        assert bft.violations >= majority.violations  # 1/3 trips before 1/2

    def test_undisclosed_grid_reports_zeros_without_kernel_calls(self, scenario):
        engine = grid_engine(scenario, "python")
        before = KERNEL_TIMINGS.snapshot()
        (point,) = engine.estimate_grid(
            budget_grid((2,), families=FAMILIES),
            trials=TRIALS,
            seed=SEED,
            time=-1.0,  # before every disclosure
        )
        assert point.exploited == ()
        assert point.violations == (0, 0)
        assert point.mean_compromised_fraction == 0.0
        assert all(
            power == 0.0 for _, power in point.mean_power_per_vulnerability
        )
        assert engine.last_chunk_count == 0
        assert "campaign_grid" not in KERNEL_TIMINGS.delta_since(before)


class TestChunking:
    """Chunk boundaries are invisible to every reported number."""

    @pytest.mark.parametrize("backend", available_backends())
    def test_tiny_chunks_equal_single_chunk(self, scenario, backend):
        requests = budget_grid((1, 2, 3), families=FAMILIES)
        whole = grid_engine(scenario, backend)
        chunked = grid_engine(scenario, backend, max_chunk_cells=2_000)
        expected = whole.estimate_grid(requests, trials=TRIALS, seed=SEED)
        actual = chunked.estimate_grid(requests, trials=TRIALS, seed=SEED)
        assert whole.last_chunk_count == 1
        assert chunked.last_chunk_count > 1
        assert actual == expected

    @needs_numpy
    def test_acceptance_scale_hundred_points_hundred_thousand_trials(self):
        """10^5 trials × 100 grid points, chunk count > 1, equals unchunked."""
        scenario = ecosystem_scenario(
            ecosystem="diverse",
            population_size=12,
            seed=7,
            exploit_probability=0.5,
        )
        ids = scenario.catalog.ids()
        requests = tuple(
            GridPointRequest(
                tolerances=(BFT_TOLERANCE,),
                vulnerability_ids=(ids[index % len(ids)],),
                seed_offset=index,
            )
            for index in range(100)
        )
        trials = 100_000
        whole = grid_engine(scenario, "numpy")
        chunked = grid_engine(scenario, "numpy", max_chunk_cells=20_000_000)
        expected = whole.estimate_grid(requests, trials=trials, seed=SEED)
        actual = chunked.estimate_grid(requests, trials=trials, seed=SEED)
        assert whole.last_chunk_count == 1
        assert chunked.last_chunk_count > 1
        assert actual == expected

    def test_chunk_trials_for_predicts_the_split(self, scenario):
        requests = budget_grid((1, 2), families=FAMILIES)
        engine = grid_engine(scenario, "python", max_chunk_cells=1_000)
        per_chunk = engine.chunk_trials_for(requests, trials=TRIALS)
        assert per_chunk >= 1
        engine.estimate_grid(requests, trials=TRIALS, seed=SEED)
        assert engine.last_chunk_count == math.ceil(TRIALS / per_chunk)

    def test_nonpositive_chunk_budget_rejected(self, scenario):
        with pytest.raises(FaultModelError, match="chunk cell budget"):
            grid_engine(scenario, "python", max_chunk_cells=0)


class TestShardedGridRun:
    """Pool-sharded grids reproduce the in-process estimates."""

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_sharded_equals_in_process(self, scenario, workers):
        requests = budget_grid((1, 3), families=FAMILIES)
        engine = grid_engine(scenario, "python")
        expected = engine.estimate_grid(requests, trials=TRIALS, seed=SEED)
        sharded = ShardedGridRun(engine, max_workers=workers)
        assert sharded.estimate_grid(requests, trials=TRIALS, seed=SEED) == expected

    @needs_numpy
    def test_sharded_numpy_equals_in_process(self, scenario):
        requests = budget_grid((2,), families=FAMILIES)
        engine = grid_engine(scenario, "numpy")
        expected = engine.estimate_grid(requests, trials=TRIALS, seed=SEED)
        sharded = ShardedGridRun(engine, max_workers=2)
        assert sharded.estimate_grid(requests, trials=TRIALS, seed=SEED) == expected

    def test_nothing_exploitable_skips_the_pool(self, scenario):
        engine = grid_engine(scenario, "python")
        poison = object()  # would blow up on .submit — must never be touched
        sharded = ShardedGridRun(engine, executor=poison)
        (point,) = sharded.estimate_grid(
            budget_grid((2,), families=FAMILIES),
            trials=TRIALS,
            seed=SEED,
            time=-1.0,
        )
        assert point.exploited == ()
        assert point.violations == (0, 0)

    def test_invalid_worker_count_rejected(self, scenario):
        engine = grid_engine(scenario, "python")
        with pytest.raises(FaultModelError, match="worker count"):
            ShardedGridRun(engine, max_workers=0)


class TestGridValidation:
    """Malformed grids are usage errors at the engine seam."""

    def test_empty_grid_rejected(self, scenario):
        engine = grid_engine(scenario, "python")
        with pytest.raises(FaultModelError, match="at least one point"):
            engine.estimate_grid((), trials=TRIALS, seed=SEED)

    def test_nonpositive_trials_rejected(self, scenario):
        engine = grid_engine(scenario, "python")
        with pytest.raises(FaultModelError, match="trial count"):
            engine.estimate_grid(
                budget_grid((1,), families=FAMILIES), trials=0, seed=SEED
            )

    @pytest.mark.parametrize(
        "request_, pattern",
        [
            (GridPointRequest(tolerances=(), worst_case=1), "no tolerances"),
            (
                GridPointRequest(tolerances=(0.0,), worst_case=1),
                "tolerated fraction",
            ),
            (
                GridPointRequest(tolerances=(1.5,), worst_case=1),
                "tolerated fraction",
            ),
            (
                GridPointRequest(tolerances=(float("nan"),), worst_case=1),
                "tolerated fraction",
            ),
            (GridPointRequest(tolerances=(0.5,)), "exactly one"),
            (
                GridPointRequest(
                    tolerances=(0.5,), vulnerability_ids=("a",), worst_case=1
                ),
                "exactly one",
            ),
            (
                GridPointRequest(tolerances=(0.5,), vulnerability_ids=()),
                "selects no vulnerabilities",
            ),
            (GridPointRequest(tolerances=(0.5,), worst_case=0), "worst_case"),
            (
                GridPointRequest(
                    tolerances=(0.5,), worst_case=1, seed_offset=-1
                ),
                "seed offset",
            ),
            (
                GridPointRequest(
                    tolerances=(0.5,), worst_case=1, success_probability=1.5
                ),
                "success probability",
            ),
            (
                GridPointRequest(
                    tolerances=(0.5,),
                    worst_case=1,
                    success_probability=float("nan"),
                ),
                "success probability",
            ),
        ],
    )
    def test_bad_grid_points_rejected(self, scenario, request_, pattern):
        engine = grid_engine(scenario, "python")
        with pytest.raises(FaultModelError, match=pattern):
            engine.estimate_grid((request_,), trials=TRIALS, seed=SEED)

    def test_duplicate_ids_within_a_point_rejected(self, scenario):
        vuln_id = scenario.catalog.ids()[0]
        engine = grid_engine(scenario, "python")
        with pytest.raises(FaultModelError, match="duplicate"):
            engine.estimate_grid(
                (
                    GridPointRequest(
                        tolerances=(0.5,), vulnerability_ids=(vuln_id, vuln_id)
                    ),
                ),
                trials=TRIALS,
                seed=SEED,
            )

    def test_empty_catalog_rejected_for_worst_case_points(self, scenario):
        engine = GridCampaignEngine(
            scenario.population, VulnerabilityCatalog(), backend="python"
        )
        with pytest.raises(FaultModelError, match="catalog is empty"):
            engine.estimate_grid(
                budget_grid((1,), families=FAMILIES), trials=TRIALS, seed=SEED
            )


class TestFastPaths:
    """Opt-in knobs are tolerance-pinned on numpy and inert on python."""

    @needs_numpy
    def test_float32_engine_is_close_to_float64(self, scenario):
        requests = budget_grid((2, 4), families=FAMILIES)
        exact = grid_engine(scenario, "numpy").estimate_grid(
            requests, trials=TRIALS, seed=SEED
        )
        fast = grid_engine(scenario, "numpy", dtype="float32").estimate_grid(
            requests, trials=TRIALS, seed=SEED
        )
        for left, right in zip(exact, fast):
            assert left.mean_compromised_fraction == pytest.approx(
                right.mean_compromised_fraction, rel=0.05
            )
            for a, b in zip(left.violations, right.violations):
                assert abs(a - b) <= max(4, int(0.05 * TRIALS))

    @needs_numpy
    def test_argpartition_engine_equals_sort_engine(self, scenario):
        requests = budget_grid((1, 3), families=FAMILIES)
        exact = grid_engine(scenario, "numpy").estimate_grid(
            requests, trials=TRIALS, seed=SEED
        )
        fast = grid_engine(scenario, "numpy", topk="argpartition").estimate_grid(
            requests, trials=TRIALS, seed=SEED
        )
        assert fast == exact

    def test_python_engine_ignores_fast_path_knobs(self, scenario):
        """The scalar backend falls back to the exact route, never errors."""
        requests = budget_grid((2,), families=FAMILIES)
        exact = grid_engine(scenario, "python").estimate_grid(
            requests, trials=TRIALS, seed=SEED
        )
        fast = grid_engine(
            scenario, "python", dtype="float32", topk="argpartition"
        ).estimate_grid(requests, trials=TRIALS, seed=SEED)
        assert fast == exact


class TestKernelTimings:
    def test_estimate_grid_records_point_trials(self, scenario):
        engine = grid_engine(scenario, "python")
        requests = budget_grid((1, 2), families=FAMILIES)
        before = KERNEL_TIMINGS.snapshot()
        engine.estimate_grid(requests, trials=TRIALS, seed=SEED)
        delta = KERNEL_TIMINGS.delta_since(before)
        counter = delta["campaign_grid"]
        assert counter["calls"] == engine.last_chunk_count == 1
        assert counter["trials"] == TRIALS * len(requests)
        assert counter["seconds"] > 0.0


class TestMergeGridBatches:
    def _point(self, trials, violations, compromised, per_vulnerability):
        return CampaignGridPointResult(
            trials=trials,
            columns=(0, 1),
            violations=violations,
            compromised_total=compromised,
            per_vulnerability_totals=per_vulnerability,
        )

    def test_sums_point_wise(self):
        first = (self._point(10, (2, 1), 5.0, (3.0, 2.0)),)
        second = (self._point(6, (1, 0), 2.5, (1.5, 1.0)),)
        (merged,) = merge_campaign_grid_batches((first, second))
        assert merged.trials == 16
        assert merged.violations == (3, 1)
        assert merged.compromised_total == 7.5
        assert merged.per_vulnerability_totals == (4.5, 3.0)

    def test_zero_batches_rejected(self):
        with pytest.raises(FaultModelError, match="zero grid batches"):
            merge_campaign_grid_batches(())

    def test_point_count_mismatch_rejected(self):
        point = self._point(4, (0, 0), 0.0, (0.0, 0.0))
        with pytest.raises(FaultModelError, match="point count"):
            merge_campaign_grid_batches(((point,), (point, point)))

    def test_tolerance_width_mismatch_rejected(self):
        left = self._point(4, (0, 0), 0.0, (0.0, 0.0))
        right = CampaignGridPointResult(
            trials=4,
            columns=(0, 1),
            violations=(0,),
            compromised_total=0.0,
            per_vulnerability_totals=(0.0, 0.0),
        )
        with pytest.raises(FaultModelError, match="columns or tolerances"):
            merge_campaign_grid_batches(((left,), (right,)))


class TestScenarioGridHelpers:
    """The grid constructors the sweeps feed into the engine."""

    def test_family_tolerances_maps_families(self):
        assert family_tolerances(FAMILIES) == (
            tolerated_fault_fraction(ProtocolFamily.BFT),
            tolerated_fault_fraction(ProtocolFamily.NAKAMOTO),
        )
        with pytest.raises(FaultModelError, match="protocol family"):
            family_tolerances(())

    def test_budget_grid_enumerates_seed_offsets(self):
        points = budget_grid((1, 2, 5), families=FAMILIES)
        assert [point.worst_case for point in points] == [1, 2, 5]
        assert [point.seed_offset for point in points] == [0, 1, 2]
        assert all(point.success_probability is None for point in points)

    def test_budget_grid_validation(self):
        with pytest.raises(FaultModelError, match="at least one"):
            budget_grid((), families=FAMILIES)
        with pytest.raises(FaultModelError, match="positive"):
            budget_grid((1, 0), families=FAMILIES)

    def test_reliability_grid_overrides_probabilities(self):
        points = reliability_grid((0.2, 0.9), budget=3, families=FAMILIES)
        assert [point.success_probability for point in points] == [0.2, 0.9]
        assert all(point.worst_case == 3 for point in points)
        assert [point.seed_offset for point in points] == [0, 1]

    def test_reliability_grid_validation(self):
        with pytest.raises(FaultModelError, match="at least one"):
            reliability_grid((), budget=1, families=FAMILIES)
        with pytest.raises(FaultModelError, match="budget"):
            reliability_grid((0.5,), budget=0, families=FAMILIES)
