"""Unit tests for exploit campaigns, adversaries, windows and fault schedules."""

from __future__ import annotations

import pytest

from repro.core.configuration import ComponentKind
from repro.core.exceptions import FaultModelError
from repro.core.resilience import ProtocolFamily
from repro.faults.adversary import (
    AdversaryBudget,
    BriberyAdversary,
    ExploitAdversary,
    RationalOperatorAdversary,
    compare_adversaries,
)
from repro.faults.campaign import ExploitCampaign, single_vulnerability_breakdown
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.injection import FaultKind, FaultSchedule, FaultSpec
from repro.faults.vulnerability import make_vulnerability
from repro.faults.window import PatchState, VulnerabilityWindow, WindowSchedule


class TestExploitCampaign:
    def test_single_vulnerability_compromises_exposed_replicas(
        self, small_population, catalog
    ):
        campaign = ExploitCampaign(small_population, catalog)
        outcome = campaign.run(["CVE-TEST-OPENSSL"])
        assert outcome.compromised_replicas == frozenset({"r0", "r1", "r2"})
        assert outcome.compromised_power == pytest.approx(3.0)
        assert outcome.compromised_fraction == pytest.approx(0.75)

    def test_overlapping_vulnerabilities_count_power_once(self, small_population, catalog):
        campaign = ExploitCampaign(small_population, catalog)
        outcome = campaign.run(["CVE-TEST-OPENSSL", "CVE-TEST-LINUX"])
        # Both vulnerabilities hit the same three replicas.
        assert outcome.compromised_power == pytest.approx(3.0)
        per_vuln = dict(outcome.power_per_vulnerability)
        assert per_vuln["CVE-TEST-OPENSSL"] == pytest.approx(3.0)
        assert per_vuln["CVE-TEST-LINUX"] == pytest.approx(3.0)

    def test_undisclosed_vulnerability_is_skipped(self, small_population):
        catalog = VulnerabilityCatalog(
            [make_vulnerability(ComponentKind.OPERATING_SYSTEM, "linux", disclosed_at=50.0)]
        )
        campaign = ExploitCampaign(small_population, catalog)
        outcome = campaign.run(catalog.ids(), time=0.0)
        assert outcome.compromised_power == 0.0

    def test_worst_case_targets_biggest_exposure(self, small_population, catalog):
        campaign = ExploitCampaign(small_population, catalog)
        outcome = campaign.run_worst_case(max_vulnerabilities=1)
        assert outcome.compromised_power == pytest.approx(3.0)

    def test_resilience_report_integration(self, small_population, catalog):
        campaign = ExploitCampaign(small_population, catalog)
        outcome = campaign.run(["CVE-TEST-OPENSSL"])
        report = campaign.resilience_report(outcome, family=ProtocolFamily.BFT)
        assert not report.safe  # 75% of power compromised

    def test_violates_threshold(self, small_population, catalog):
        campaign = ExploitCampaign(small_population, catalog)
        outcome = campaign.run(["CVE-TEST-OPENSSL"])
        assert outcome.violates(1 / 3)
        assert outcome.violates(0.75)
        assert not outcome.violates(0.76)

    def test_unreliable_exploit_is_seeded(self, small_population):
        catalog = VulnerabilityCatalog(
            [
                make_vulnerability(
                    ComponentKind.OPERATING_SYSTEM, "linux", exploit_probability=0.5
                )
            ]
        )
        first = ExploitCampaign(small_population, catalog, seed=3).run(catalog.ids())
        second = ExploitCampaign(small_population, catalog, seed=3).run(catalog.ids())
        assert first.compromised_replicas == second.compromised_replicas

    def test_empty_campaign_rejected(self, small_population, catalog):
        with pytest.raises(FaultModelError):
            ExploitCampaign(small_population, catalog).run([])

    def test_duplicate_vulnerability_ids_rejected(self, small_population, catalog):
        campaign = ExploitCampaign(small_population, catalog)
        with pytest.raises(FaultModelError, match="duplicate vulnerability ids"):
            campaign.run(["CVE-TEST-OPENSSL", "CVE-TEST-OPENSSL"])

    def test_worst_case_rejects_nonpositive_budget(self, small_population, catalog):
        campaign = ExploitCampaign(small_population, catalog)
        with pytest.raises(FaultModelError, match="max vulnerabilities"):
            campaign.run_worst_case(max_vulnerabilities=0)
        with pytest.raises(FaultModelError, match="max vulnerabilities"):
            campaign.run_worst_case(max_vulnerabilities=-2)

    def test_worst_case_rejects_empty_catalog(self, small_population):
        campaign = ExploitCampaign(small_population, VulnerabilityCatalog())
        with pytest.raises(FaultModelError, match="catalog is empty"):
            campaign.run_worst_case(max_vulnerabilities=1)

    def test_shared_matrix_reproduces_fresh_campaigns(self, small_population, catalog):
        from repro.faults.matrix import PopulationMatrix

        matrix = PopulationMatrix.build(small_population, catalog)
        shared = ExploitCampaign(small_population, catalog, matrix=matrix)
        fresh = ExploitCampaign(small_population, catalog)
        assert shared.run(catalog.ids()) == fresh.run(catalog.ids())

    def test_flaky_exploit_stream_matches_scalar_model(self, small_population):
        # The matrix-backed campaign must draw the same random stream as the
        # scalar model did: one draw per exposed replica, in join order.
        catalog = VulnerabilityCatalog(
            [
                make_vulnerability(
                    ComponentKind.OPERATING_SYSTEM, "linux", exploit_probability=0.5
                )
            ]
        )
        import random

        rng = random.Random(3)
        expected = {
            replica_id
            for replica_id in ("r0", "r1", "r2")  # join order of exposed replicas
            if rng.random() < 0.5
        }
        outcome = ExploitCampaign(small_population, catalog, seed=3).run(catalog.ids())
        assert set(outcome.compromised_replicas) == expected

    def test_single_vulnerability_breakdown(self, small_population, catalog):
        verdicts = single_vulnerability_breakdown(
            small_population, catalog, family=ProtocolFamily.BFT
        )
        assert verdicts["CVE-TEST-OPENSSL"] is True
        assert verdicts["CVE-TEST-LINUX"] is True

    def test_diverse_population_survives_single_vulnerability(self, unique_population):
        catalog = VulnerabilityCatalog.for_population(unique_population)
        verdicts = single_vulnerability_breakdown(unique_population, catalog)
        assert not any(verdicts.values())


class TestAdversaries:
    def test_exploit_adversary_uses_budget(self, small_population, catalog):
        adversary = ExploitAdversary(AdversaryBudget(max_vulnerabilities=1))
        assert adversary.acquired_power(small_population, catalog) == pytest.approx(3.0)

    def test_exploit_adversary_zero_budget_rejected(self, small_population, catalog):
        adversary = ExploitAdversary(AdversaryBudget(max_vulnerabilities=0))
        with pytest.raises(FaultModelError):
            adversary.attack(small_population, catalog)

    def test_bribery_adversary_capped_by_total_power(self, small_population):
        adversary = BriberyAdversary(AdversaryBudget(bribery_power=100.0))
        assert adversary.acquired_power(small_population) == pytest.approx(4.0)

    def test_rational_adversary_takes_largest_operators(self, small_population):
        small_population.set_power("r3", 10.0)
        adversary = RationalOperatorAdversary(AdversaryBudget(colluding_operators=1))
        assert adversary.acquired_power(small_population) == pytest.approx(10.0)

    def test_rational_adversary_needs_operators(self):
        with pytest.raises(FaultModelError):
            RationalOperatorAdversary(AdversaryBudget(colluding_operators=0))

    def test_compare_adversaries(self, small_population, catalog):
        budget = AdversaryBudget(max_vulnerabilities=1, bribery_power=1.5, colluding_operators=2)
        results = dict(compare_adversaries(small_population, catalog, budget))
        assert results["exploit"] == pytest.approx(3.0)
        assert results["bribery"] == pytest.approx(1.5)
        assert results["rational"] == pytest.approx(2.0)

    def test_budget_validation(self):
        with pytest.raises(FaultModelError):
            AdversaryBudget(max_vulnerabilities=-1)
        with pytest.raises(FaultModelError):
            AdversaryBudget(bribery_power=-0.1)


class TestVulnerabilityWindows:
    def test_window_lifecycle(self, openssl_vulnerability):
        window = VulnerabilityWindow(
            vulnerability=openssl_vulnerability,
            disclosure_time=10.0,
            patch_release_time=20.0,
            adoption_latency=5.0,
        )
        assert window.state_at(5.0) is PatchState.UNDISCLOSED
        assert window.state_at(15.0) is PatchState.EXPOSED
        assert window.state_at(24.9) is PatchState.EXPOSED
        assert window.state_at(25.0) is PatchState.PATCHED
        assert window.duration() == pytest.approx(15.0)

    def test_window_without_patch_never_closes(self, openssl_vulnerability):
        window = VulnerabilityWindow(openssl_vulnerability, disclosure_time=0.0)
        assert window.is_open_at(1e9)
        assert window.duration() is None

    def test_patch_before_disclosure_rejected(self, openssl_vulnerability):
        with pytest.raises(FaultModelError):
            VulnerabilityWindow(
                openssl_vulnerability, disclosure_time=10.0, patch_release_time=5.0
            )

    def test_schedule_exposed_power(self, small_population, openssl_vulnerability):
        schedule = WindowSchedule(
            [
                VulnerabilityWindow(
                    openssl_vulnerability,
                    disclosure_time=0.0,
                    patch_release_time=10.0,
                    adoption_latency=0.0,
                )
            ]
        )
        assert schedule.exposed_power_at(small_population, 5.0)[
            "CVE-TEST-OPENSSL"
        ] == pytest.approx(3.0)
        assert schedule.exposed_power_at(small_population, 15.0)[
            "CVE-TEST-OPENSSL"
        ] == pytest.approx(0.0)
        assert schedule.peak_exposure(small_population, [0.0, 5.0, 15.0]) == pytest.approx(3.0)

    def test_schedule_rejects_duplicates(self, openssl_vulnerability):
        schedule = WindowSchedule()
        schedule.add(VulnerabilityWindow(openssl_vulnerability, disclosure_time=0.0))
        with pytest.raises(FaultModelError):
            schedule.add(VulnerabilityWindow(openssl_vulnerability, disclosure_time=1.0))


class TestFaultSchedules:
    def test_byzantine_schedule(self):
        schedule = FaultSchedule.byzantine(["a", "b"])
        assert schedule.is_faulty_at("a", 0.0)
        assert schedule.kind_at("b", 0.0) is FaultKind.BYZANTINE
        assert not schedule.is_faulty_at("c", 0.0)
        assert len(schedule) == 2

    def test_fault_activation_window(self):
        spec = FaultSpec(replica_id="x", start_time=5.0, end_time=10.0)
        schedule = FaultSchedule([spec])
        assert not schedule.is_faulty_at("x", 4.0)
        assert schedule.is_faulty_at("x", 5.0)
        assert not schedule.is_faulty_at("x", 10.0)

    def test_from_campaign(self, small_population, catalog):
        campaign = ExploitCampaign(small_population, catalog)
        outcome = campaign.run(["CVE-TEST-OPENSSL"])
        schedule = FaultSchedule.from_campaign(outcome)
        assert set(schedule.faulty_ids_at(0.0)) == {"r0", "r1", "r2"}
        assert schedule.faulty_power_at(small_population, 0.0) == pytest.approx(3.0)

    def test_duplicate_replica_rejected(self):
        schedule = FaultSchedule.byzantine(["a"])
        with pytest.raises(FaultModelError):
            schedule.add(FaultSpec(replica_id="a"))

    def test_invalid_spec_rejected(self):
        with pytest.raises(FaultModelError):
            FaultSpec(replica_id="", start_time=0.0)
        with pytest.raises(FaultModelError):
            FaultSpec(replica_id="x", start_time=5.0, end_time=1.0)

    def test_crash_schedule(self):
        schedule = FaultSchedule.crashed(["a"])
        assert schedule.kind_at("a", 0.0) is FaultKind.CRASH
