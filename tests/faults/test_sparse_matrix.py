"""Tests for the PopulationMatrix sparse layout and streaming build path.

Pins the layout seam the sparse plane hangs off:

- the ``auto`` heuristic keeps every pre-sparse workload dense (goldens
  preserved) and flips to CSR only for large, sparse grids;
- ``from_replica_chunks`` streaming produces the same CSR arrays as a
  ``build(layout="sparse")`` over the materialized population;
- sparse matrices answer the reductions (``exposed_power``,
  ``most_damaging``) identically to dense ones, refuse the dense-only
  accessors with a usage error, and compress dense matrices on demand via
  ``sparse_exposure()``.
"""

from __future__ import annotations

import pytest

from repro.backend import available_backends
from repro.core.exceptions import FaultModelError
from repro.datasets.generators import stream_replica_chunks
from repro.datasets.software_ecosystem import default_ecosystem
from repro.faults.matrix import (
    AUTO_SPARSE_DENSITY,
    AUTO_SPARSE_MIN_CELLS,
    PopulationMatrix,
    _auto_layout,
)
from repro.faults.scenarios import (
    ecosystem_catalog,
    ecosystem_scenario,
    sparse_ecosystem_matrix,
)

SCENARIO = ecosystem_scenario(
    ecosystem="default", population_size=30, seed=3, exploit_probability=0.5
)


class TestLayoutHeuristic:
    def test_small_grids_stay_dense(self):
        assert _auto_layout(100, 20, 50) == "dense"

    def test_large_sparse_grids_go_sparse(self):
        cells = AUTO_SPARSE_MIN_CELLS * 4
        rows = cells // 64
        nnz = int(cells * AUTO_SPARSE_DENSITY / 2)
        assert _auto_layout(rows, 64, nnz) == "sparse"

    def test_large_dense_grids_stay_dense_until_the_cell_cap(self):
        cells = AUTO_SPARSE_MIN_CELLS * 4
        assert _auto_layout(cells // 64, 64, cells // 2) == "dense"

    def test_every_shipped_scenario_stays_dense(self):
        matrix = PopulationMatrix.build(SCENARIO.population, SCENARIO.catalog)
        assert not matrix.is_sparse

    def test_explicit_layout_overrides(self):
        sparse = PopulationMatrix.build(
            SCENARIO.population, SCENARIO.catalog, layout="sparse"
        )
        dense = PopulationMatrix.build(
            SCENARIO.population, SCENARIO.catalog, layout="dense"
        )
        assert sparse.is_sparse and not dense.is_sparse
        assert sparse.nnz == dense.nnz
        assert sparse.density == dense.density
        assert "layout=sparse" in repr(sparse)
        assert "layout=dense" in repr(dense)

    def test_unknown_layout_raises(self):
        with pytest.raises(FaultModelError, match="matrix layout"):
            PopulationMatrix.build(
                SCENARIO.population, SCENARIO.catalog, layout="csr"
            )


class TestStreamingBuild:
    def test_from_replica_chunks_matches_materialized_build(self):
        ecosystem = default_ecosystem()
        catalog = ecosystem_catalog(ecosystem, exploit_probability=0.5)
        streamed = PopulationMatrix.from_replica_chunks(
            stream_replica_chunks(ecosystem, 200, seed=7, chunk_size=33),
            catalog,
        )
        population = ecosystem.sample_population(200, seed=7)
        built = PopulationMatrix.build(population, catalog, layout="sparse")
        assert streamed.is_sparse
        left, right = streamed.sparse_exposure(), built.sparse_exposure()
        assert bytes(left.indptr) == bytes(right.indptr)
        assert bytes(left.indices) == bytes(right.indices)
        assert bytes(left.powers) == bytes(right.powers)
        assert left.success_probabilities == right.success_probabilities

    def test_replica_ids_are_dropped_unless_kept(self):
        ecosystem = default_ecosystem()
        catalog = ecosystem_catalog(ecosystem)
        anonymous = PopulationMatrix.from_replica_chunks(
            stream_replica_chunks(ecosystem, 10, seed=1), catalog
        )
        with pytest.raises(FaultModelError, match="keep_replica_ids"):
            anonymous.replica_ids
        with pytest.raises(FaultModelError, match="keep_replica_ids"):
            anonymous.replica_index("replica-0")
        named = PopulationMatrix.from_replica_chunks(
            stream_replica_chunks(ecosystem, 10, seed=1),
            catalog,
            keep_replica_ids=True,
        )
        assert named.replica_ids[0] == "replica-0"
        assert named.replica_index("replica-3") == 3

    def test_empty_stream_raises(self):
        catalog = ecosystem_catalog(default_ecosystem())
        with pytest.raises(FaultModelError, match="empty population"):
            PopulationMatrix.from_replica_chunks(iter(()), catalog)

    def test_sparse_ecosystem_matrix_streams_sparse(self):
        matrix, catalog = sparse_ecosystem_matrix(
            population_size=500, seed=2, exploit_probability=0.4
        )
        assert matrix.is_sparse
        assert matrix.replica_count == 500
        assert matrix.vulnerability_count == len(catalog)
        assert matrix.nnz == 500 * 5  # one component per market

    def test_sparse_ecosystem_matrix_validates_inputs(self):
        with pytest.raises(FaultModelError, match="population size"):
            sparse_ecosystem_matrix(population_size=0)
        with pytest.raises(FaultModelError, match="exploit probability"):
            sparse_ecosystem_matrix(population_size=5, exploit_probability=1.5)


class TestSparseAccessors:
    @pytest.mark.parametrize("backend", available_backends())
    def test_exposed_power_matches_dense(self, backend):
        sparse = PopulationMatrix.build(
            SCENARIO.population, SCENARIO.catalog, layout="sparse"
        )
        dense = PopulationMatrix.build(
            SCENARIO.population, SCENARIO.catalog, layout="dense"
        )
        assert sparse.exposed_power(backend=backend) == dense.exposed_power(
            backend=backend
        )
        assert sparse.most_damaging(3, backend=backend) == dense.most_damaging(
            3, backend=backend
        )

    def test_exposed_power_respects_disclosure_time(self):
        sparse = PopulationMatrix.build(
            SCENARIO.population, SCENARIO.catalog, layout="sparse"
        )
        assert all(
            value == 0.0 for value in sparse.exposed_power(time=-1.0).values()
        )

    def test_dense_accessors_refuse_sparse_matrices(self):
        sparse = PopulationMatrix.build(
            SCENARIO.population, SCENARIO.catalog, layout="sparse"
        )
        with pytest.raises(FaultModelError, match="exposure_rows"):
            sparse.exposure_rows()
        with pytest.raises(FaultModelError, match="exposure_array"):
            sparse.exposure_array()
        with pytest.raises(FaultModelError, match="columns_for"):
            sparse.columns_for(sparse.vulnerability_ids[:2])

    def test_dense_matrix_compresses_on_demand(self):
        dense = PopulationMatrix.build(
            SCENARIO.population, SCENARIO.catalog, layout="dense"
        )
        compressed = dense.sparse_exposure()
        assert compressed.replica_count == dense.replica_count
        assert compressed is dense.sparse_exposure()  # cached

    def test_sparse_columns_for_selects_in_order(self):
        sparse = PopulationMatrix.build(
            SCENARIO.population, SCENARIO.catalog, layout="sparse"
        )
        dense = PopulationMatrix.build(
            SCENARIO.population, SCENARIO.catalog, layout="dense"
        )
        selection = tuple(reversed(sparse.vulnerability_ids[:4]))
        selected = sparse.sparse_columns_for(selection)
        rows, probabilities = dense.columns_for(selection)
        assert selected.success_probabilities == probabilities
        rebuilt = [
            [0.0] * selected.column_count for _ in range(selected.replica_count)
        ]
        for row in range(selected.replica_count):
            for position in range(
                selected.indptr[row], selected.indptr[row + 1]
            ):
                rebuilt[row][selected.indices[position]] = 1.0
        assert tuple(tuple(row) for row in rebuilt) == rows
