"""Recovery policy driven by the simulation event scheduler.

Pairs :class:`~repro.faults.recovery.ProactiveRecoveryPolicy` with
:class:`~repro.sim.events.Scheduler`: an exploit campaign (deterministic
seed) injects a compromise event, each compromised replica's scheduled
rejuvenation is posted as a future event, and the discrete exposed set the
events maintain must agree with the policy's closed-form
``compromised_power_at`` at every instant between events.
"""

from __future__ import annotations

import pytest

from repro.faults.campaign import ExploitCampaign
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.recovery import ProactiveRecoveryPolicy
from repro.faults.scenarios import ecosystem_scenario
from repro.sim.events import Scheduler

ATTACK_TIME = 7.0
PERIOD = 5.0


def _drive(population, compromised, *, attack_time=ATTACK_TIME, period=PERIOD):
    """Replay attack + recoveries on a scheduler; return the event trace.

    The trace records ``(time, exposed_ids, exposed_power)`` after every
    event, in execution order.
    """
    policy = ProactiveRecoveryPolicy(population, recovery_period=period)
    scheduler = Scheduler()
    exposed = set()
    trace = []

    def snapshot():
        power = sum(population.power_of(replica_id) for replica_id in exposed)
        trace.append((scheduler.now, frozenset(exposed), power))

    def recover(replica_id):
        def _event():
            exposed.discard(replica_id)
            snapshot()

        return _event

    def attack():
        exposed.update(compromised)
        snapshot()
        for replica_id in sorted(compromised):
            scheduler.call_at(
                policy.next_recovery_after(replica_id, scheduler.now),
                recover(replica_id),
                label=f"recover:{replica_id}",
            )

    scheduler.call_at(attack_time, attack, label="attack")
    scheduler.run()
    return policy, scheduler, trace


class TestRecoveryEvents:
    @pytest.fixture()
    def scenario(self):
        return ecosystem_scenario(
            ecosystem="default",
            population_size=16,
            seed=3,
            exploit_probability=0.6,
        )

    @pytest.fixture()
    def compromised(self, scenario):
        campaign = ExploitCampaign(scenario.population, scenario.catalog, seed=11)
        outcome = campaign.run(list(scenario.catalog.ids()))
        assert outcome.compromised_replicas  # the seed must actually compromise
        return tuple(sorted(outcome.compromised_replicas))

    def test_exploit_campaign_is_deterministic_for_a_seed(self, scenario):
        ids = list(scenario.catalog.ids())
        first = ExploitCampaign(scenario.population, scenario.catalog, seed=11).run(ids)
        second = ExploitCampaign(scenario.population, scenario.catalog, seed=11).run(ids)
        assert first.compromised_replicas == second.compromised_replicas

    def test_every_compromised_replica_recovers_exactly_once(
        self, scenario, compromised
    ):
        policy, scheduler, trace = _drive(scenario.population, compromised)
        # One attack event plus one recovery per compromised replica.
        assert scheduler.events_executed == 1 + len(compromised)
        assert trace[0][1] == frozenset(compromised)
        assert trace[-1][1] == frozenset()
        assert trace[-1][2] == 0.0

    def test_recovered_replicas_drop_out_of_the_exposed_set(
        self, scenario, compromised
    ):
        policy, scheduler, trace = _drive(scenario.population, compromised)
        sizes = [len(ids) for _, ids, _ in trace]
        # The exposed set only ever shrinks after the attack snapshot, one
        # replica at a time, down to empty.
        assert sizes == list(range(len(compromised), -1, -1))
        for (_, before, _), (_, after, _) in zip(trace, trace[1:]):
            (recovered,) = before - after
            assert recovered not in after

    def test_event_driven_power_matches_the_closed_form(
        self, scenario, compromised
    ):
        policy, scheduler, trace = _drive(scenario.population, compromised)
        # Sample strictly after each event (events fire *at* the recovery
        # instant, and compromised_power_at counts a replica while
        # ``time < recovered_at``), so probe midway to the next event.
        for (time_a, _, power_a), (time_b, _, _) in zip(trace, trace[1:]):
            midpoint = (time_a + time_b) / 2.0
            assert power_a == pytest.approx(
                policy.compromised_power_at(compromised, ATTACK_TIME, midpoint)
            )
        final_time, _, final_power = trace[-1]
        assert final_power == policy.compromised_power_at(
            compromised, ATTACK_TIME, final_time + 0.001
        )

    def test_exposure_is_bounded_by_one_rotation(self, scenario, compromised):
        policy, scheduler, trace = _drive(scenario.population, compromised)
        last_recovery = trace[-1][0]
        assert last_recovery <= ATTACK_TIME + policy.rotation_length

    def test_replay_is_deterministic(self, scenario, compromised):
        first = _drive(scenario.population, compromised)[2]
        second = _drive(scenario.population, compromised)[2]
        assert first == second


class TestSmallPopulationRecovery:
    def test_shared_component_compromise_recovers_in_id_order(
        self, small_population, openssl_vulnerability
    ):
        """With exploit probability 1 the compromise is the full openssl
        cohort; recoveries then land strictly in rotation order."""
        catalog = VulnerabilityCatalog([openssl_vulnerability])
        campaign = ExploitCampaign(small_population, catalog, seed=0)
        outcome = campaign.run([openssl_vulnerability.vuln_id])
        compromised = tuple(sorted(outcome.compromised_replicas))
        assert compromised == ("r0", "r1", "r2")

        policy, scheduler, trace = _drive(
            small_population, compromised, attack_time=0.5, period=2.0
        )
        recovery_times = [time for time, _, _ in trace[1:]]
        assert recovery_times == sorted(recovery_times)
        # r0's first rotation slot (t=0) precedes the attack, so it waits a
        # full rotation; r1 and r2 are cleaned at their first slots.
        assert recovery_times == [
            policy.next_recovery_after("r1", 0.5),
            policy.next_recovery_after("r2", 0.5),
            policy.next_recovery_after("r0", 0.5),
        ]
        assert trace[-1][1] == frozenset()
