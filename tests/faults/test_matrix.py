"""Unit tests for the array-backed population × vulnerability matrix."""

from __future__ import annotations

import pytest

from repro.backend import available_backends
from repro.core.exceptions import FaultModelError
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.matrix import PopulationMatrix


class TestBuild:
    def test_rows_follow_join_order_and_columns_catalog_order(
        self, small_population, catalog
    ):
        matrix = PopulationMatrix.build(small_population, catalog)
        assert matrix.replica_ids == ("r0", "r1", "r2", "r3")
        assert matrix.vulnerability_ids == ("CVE-TEST-OPENSSL", "CVE-TEST-LINUX")
        assert matrix.replica_count == 4
        assert matrix.vulnerability_count == 2
        assert matrix.total_power == pytest.approx(4.0)

    def test_exposure_cells_match_fault_domains(self, small_population, catalog):
        matrix = PopulationMatrix.build(small_population, catalog)
        # r0..r2 run linux/alpha/openssl, r3 runs freebsd/beta/libsodium.
        assert matrix.exposure_rows() == (
            (1.0, 1.0),
            (1.0, 1.0),
            (1.0, 1.0),
            (0.0, 0.0),
        )
        assert matrix.exposed_row_indices("CVE-TEST-OPENSSL") == (0, 1, 2)

    def test_empty_population_rejected(self, catalog):
        from repro.core.population import ReplicaPopulation

        with pytest.raises(FaultModelError):
            PopulationMatrix.build(ReplicaPopulation(), catalog)

    def test_empty_catalog_builds_zero_columns(self, small_population):
        matrix = PopulationMatrix.build(small_population, VulnerabilityCatalog())
        assert matrix.vulnerability_count == 0
        assert matrix.exposed_power() == {}

    def test_unknown_ids_raise(self, small_population, catalog):
        matrix = PopulationMatrix.build(small_population, catalog)
        with pytest.raises(FaultModelError):
            matrix.vulnerability_index("CVE-NOPE")
        with pytest.raises(FaultModelError):
            matrix.replica_index("r99")


class TestValidation:
    def test_duplicate_replica_ids_rejected(self):
        with pytest.raises(FaultModelError, match="duplicate replica ids"):
            PopulationMatrix(
                replica_ids=("a", "a"),
                powers=(1.0, 1.0),
                vulnerability_ids=("v",),
                success_probabilities=(1.0,),
                disclosed_at=(0.0,),
                exposure=((1.0,), (1.0,)),
            )

    def test_duplicate_vulnerability_ids_rejected(self):
        with pytest.raises(FaultModelError, match="duplicate vulnerability ids"):
            PopulationMatrix(
                replica_ids=("a",),
                powers=(1.0,),
                vulnerability_ids=("v", "v"),
                success_probabilities=(1.0, 1.0),
                disclosed_at=(0.0, 0.0),
                exposure=((1.0, 0.0),),
            )

    def test_shape_mismatches_rejected(self):
        with pytest.raises(FaultModelError):
            PopulationMatrix(
                replica_ids=("a",),
                powers=(1.0, 2.0),
                vulnerability_ids=("v",),
                success_probabilities=(1.0,),
                disclosed_at=(0.0,),
                exposure=((1.0,),),
            )
        with pytest.raises(FaultModelError):
            PopulationMatrix(
                replica_ids=("a",),
                powers=(1.0,),
                vulnerability_ids=("v",),
                success_probabilities=(1.0,),
                disclosed_at=(0.0,),
                exposure=((1.0, 0.0),),
            )


class TestReductions:
    @pytest.mark.parametrize("backend", available_backends())
    def test_exposed_power_matches_catalog_exposure(
        self, small_population, catalog, backend
    ):
        matrix = PopulationMatrix.build(small_population, catalog)
        assert matrix.exposed_power(backend=backend) == catalog.exposure(
            small_population
        )

    def test_exposed_power_respects_disclosure_time(self, small_population):
        from repro.core.configuration import ComponentKind
        from repro.faults.vulnerability import make_vulnerability

        catalog = VulnerabilityCatalog(
            [
                make_vulnerability(
                    ComponentKind.OPERATING_SYSTEM, "linux", disclosed_at=10.0
                )
            ]
        )
        matrix = PopulationMatrix.build(small_population, catalog)
        assert list(matrix.exposed_power(time=0.0).values()) == [0.0]
        assert list(matrix.exposed_power(time=10.0).values()) == [3.0]

    def test_most_damaging_matches_catalog_ranking(self, small_population, catalog):
        matrix = PopulationMatrix.build(small_population, catalog)
        expected = [
            (vulnerability.vuln_id, power)
            for vulnerability, power in catalog.most_damaging(
                small_population, count=2
            )
        ]
        assert list(matrix.most_damaging(2)) == expected

    def test_columns_for_slices_in_selection_order(self, small_population, catalog):
        matrix = PopulationMatrix.build(small_population, catalog)
        rows, probabilities = matrix.columns_for(["CVE-TEST-LINUX"])
        assert rows == ((1.0,), (1.0,), (1.0,), (0.0,))
        assert probabilities == (1.0,)

    @pytest.mark.parametrize("backend", available_backends())
    def test_arrays_are_cached_per_backend(self, small_population, catalog, backend):
        matrix = PopulationMatrix.build(small_population, catalog)
        assert matrix.exposure_array(backend) is matrix.exposure_array(backend)
        assert matrix.powers_array(backend) is matrix.powers_array(backend)
