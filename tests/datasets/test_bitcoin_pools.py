"""Unit tests for the Example 1 / Figure 1 Bitcoin pool dataset."""

from __future__ import annotations

import pytest

from repro.core.exceptions import DistributionError
from repro.datasets.bitcoin_pools import (
    BITCOIN_POOL_SHARES_FEB_2023,
    RESIDUAL_SHARE_FEB_2023,
    TOP_POOL_TOTAL_SHARE_FEB_2023,
    bitcoin_pool_distribution,
    bitcoin_pool_ledger,
    figure1_distribution,
    figure1_total_miners,
    pool_share_mapping,
    published_pool_share_sum,
    top_pool_concentration,
)


class TestSnapshotNumbers:
    def test_seventeen_pools(self):
        assert len(BITCOIN_POOL_SHARES_FEB_2023) == 17

    def test_shares_sum_close_to_the_published_total(self):
        # The paper states 99.13%; the printed per-pool values add to 99.145%
        # (a rounding artifact of the source chart).  We keep the printed
        # values verbatim and tolerate the 0.015-point discrepancy.
        total = published_pool_share_sum()
        assert total == pytest.approx(99.145, abs=1e-9)
        assert abs(total - TOP_POOL_TOTAL_SHARE_FEB_2023) < 0.02

    def test_residual_completes_to_one_hundred_percent(self):
        assert TOP_POOL_TOTAL_SHARE_FEB_2023 + RESIDUAL_SHARE_FEB_2023 == pytest.approx(100.0)

    def test_largest_pool_share_matches_paper(self):
        # Foundry USA controls over 34% (the paper's footnote).
        assert BITCOIN_POOL_SHARES_FEB_2023[0][1] == pytest.approx(34.239)

    def test_shares_are_sorted_descending(self):
        shares = [share for _, share in BITCOIN_POOL_SHARES_FEB_2023]
        assert shares == sorted(shares, reverse=True)

    def test_top_ten_concentration_exceeds_96_percent(self):
        assert top_pool_concentration(10) > 0.96

    def test_top_one_concentration(self):
        assert top_pool_concentration(1) == pytest.approx(0.34239)

    def test_pool_names_are_unique(self):
        names = [name for name, _ in BITCOIN_POOL_SHARES_FEB_2023]
        assert len(set(names)) == len(names)


class TestDistributions:
    def test_pool_only_distribution_entropy_below_three_bits(self):
        # Example 1: the oligopoly keeps best-case entropy under 3 bits.
        assert bitcoin_pool_distribution().entropy() < 3.0

    def test_pool_ledger_totals(self):
        ledger = bitcoin_pool_ledger()
        assert ledger.total_power() == pytest.approx(published_pool_share_sum())
        assert ledger.concentration(10) > 0.96

    def test_figure1_distribution_size(self):
        dist = figure1_distribution(101)
        assert len(dist) == 118  # 17 pools + 101 residual miners
        assert figure1_total_miners(101) == 118

    def test_figure1_mass_sums_to_one(self):
        dist = figure1_distribution(500)
        assert sum(dist.probabilities()) == pytest.approx(1.0)

    def test_figure1_entropy_increases_with_residual_miners(self):
        assert figure1_distribution(1000).entropy() > figure1_distribution(1).entropy()

    def test_figure1_entropy_stays_below_three_bits(self):
        for x in (1, 10, 100, 1000):
            assert figure1_distribution(x).entropy() < 3.0

    def test_figure1_residual_share_is_uniform(self):
        dist = figure1_distribution(10)
        residual_shares = [dist.share(f"residual-miner-{i}") for i in range(10)]
        assert all(share == pytest.approx(residual_shares[0]) for share in residual_shares)
        expected_total = RESIDUAL_SHARE_FEB_2023 / (
            published_pool_share_sum() + RESIDUAL_SHARE_FEB_2023
        )
        assert sum(residual_shares) == pytest.approx(expected_total)

    def test_figure1_zero_residual_share_supported(self):
        dist = figure1_distribution(5, residual_share=0.0)
        assert len(dist) == 17

    def test_figure1_rejects_bad_arguments(self):
        with pytest.raises(DistributionError):
            figure1_distribution(0)
        with pytest.raises(DistributionError):
            figure1_distribution(10, residual_share=-1.0)
        with pytest.raises(DistributionError):
            figure1_total_miners(0)

    def test_pool_share_mapping_is_a_copy(self):
        mapping = pool_share_mapping()
        mapping["foundry-usa"] = 0.0
        assert pool_share_mapping()["foundry-usa"] == pytest.approx(34.239)
