"""Unit tests for repro.datasets.generators and the synthetic ecosystems."""

from __future__ import annotations

import random

import pytest

from repro.core.configuration import ComponentKind
from repro.core.exceptions import ConfigurationError, DistributionError
from repro.datasets.generators import (
    dirichlet_distribution,
    geometric_distribution,
    oligopoly_distribution,
    perturbed_uniform,
    power_split,
    uniform_distribution,
    zipf_distribution,
)
from repro.datasets.software_ecosystem import (
    default_ecosystem,
    diverse_ecosystem,
    skewed_ecosystem,
)


class TestGenerators:
    def test_uniform_distribution_is_kappa_optimal(self):
        dist = uniform_distribution(16)
        assert dist.is_uniform()
        assert dist.entropy() == pytest.approx(4.0)

    def test_zipf_exponent_zero_is_uniform(self):
        assert zipf_distribution(8, 0.0).is_uniform()

    def test_zipf_larger_exponent_concentrates_more(self):
        mild = zipf_distribution(32, 0.5)
        harsh = zipf_distribution(32, 2.0)
        assert harsh.entropy() < mild.entropy()

    def test_zipf_rejects_negative_exponent(self):
        with pytest.raises(DistributionError):
            zipf_distribution(8, -1.0)

    def test_geometric_distribution_shares_decay(self):
        dist = geometric_distribution(4, ratio=0.5)
        probs = list(dist.probabilities())
        assert probs == sorted(probs, reverse=True)

    def test_geometric_rejects_bad_ratio(self):
        with pytest.raises(DistributionError):
            geometric_distribution(4, ratio=0.0)

    def test_dirichlet_is_deterministic_given_seed(self):
        a = dirichlet_distribution(10, 1.0, rng=random.Random(42))
        b = dirichlet_distribution(10, 1.0, rng=random.Random(42))
        assert a == b

    def test_dirichlet_high_concentration_is_more_even(self):
        sparse = dirichlet_distribution(20, 0.05, rng=random.Random(1))
        even = dirichlet_distribution(20, 50.0, rng=random.Random(1))
        assert even.entropy() > sparse.entropy()

    def test_dirichlet_rejects_bad_concentration(self):
        with pytest.raises(DistributionError):
            dirichlet_distribution(5, 0.0)

    def test_oligopoly_distribution_shape(self):
        dist = oligopoly_distribution(10, 0.96, 500)
        heads = [dist.share(f"config-head-{i}") for i in range(10)]
        assert sum(heads) == pytest.approx(0.96)
        assert dist.support_size() == 510

    def test_oligopoly_without_tail_requires_full_share(self):
        with pytest.raises(DistributionError):
            oligopoly_distribution(3, 0.9, 0)
        assert oligopoly_distribution(3, 1.0, 0).support_size() == 3

    def test_perturbed_uniform_stays_close_to_uniform(self):
        dist = perturbed_uniform(16, 0.05, rng=random.Random(3))
        assert dist.entropy() > 3.9

    def test_perturbed_uniform_rejects_large_noise(self):
        with pytest.raises(DistributionError):
            perturbed_uniform(4, 1.0)

    def test_power_split(self):
        split = power_split(100.0, [3, 1])
        assert split["participant-0"] == pytest.approx(75.0)
        assert sum(split.values()) == pytest.approx(100.0)

    def test_power_split_rejects_bad_inputs(self):
        with pytest.raises(DistributionError):
            power_split(0.0, [1])
        with pytest.raises(DistributionError):
            power_split(10.0, [])
        with pytest.raises(DistributionError):
            power_split(10.0, [-1.0])

    def test_zero_count_rejected_everywhere(self):
        with pytest.raises(DistributionError):
            uniform_distribution(0)


class TestSyntheticEcosystems:
    def test_default_ecosystem_sampling_is_deterministic(self):
        ecosystem = default_ecosystem()
        a = ecosystem.sample_population(50, seed=5)
        b = ecosystem.sample_population(50, seed=5)
        assert a.configuration_census() == b.configuration_census()

    def test_skewed_ecosystem_has_lower_entropy(self):
        diverse_pop = diverse_ecosystem().sample_population(300, seed=1)
        skewed_pop = skewed_ecosystem().sample_population(300, seed=1)
        assert skewed_pop.entropy() < diverse_pop.entropy()

    def test_sampled_configurations_use_known_components(self):
        ecosystem = default_ecosystem()
        population = ecosystem.sample_population(20, seed=2)
        os_names = {
            replica.configuration.component(ComponentKind.OPERATING_SYSTEM).name
            for replica in population
        }
        market_names = {
            name for name, _ in ecosystem.market_for(ComponentKind.OPERATING_SYSTEM).shares
        }
        assert os_names <= market_names

    def test_attested_fraction_is_respected(self):
        population = default_ecosystem().sample_population(100, seed=3, attested_fraction=0.3)
        attested = sum(1 for replica in population if replica.attested)
        assert attested == 30

    def test_explicit_power_assignment(self):
        population = default_ecosystem().sample_population(
            3, seed=4, power=[5.0, 3.0, 2.0]
        )
        assert population.total_power() == pytest.approx(10.0)

    def test_power_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            default_ecosystem().sample_population(3, power=[1.0])

    def test_component_exposure_fractions(self):
        exposure = default_ecosystem().component_exposure()
        assert exposure["operating_system:linux:1.0"] == pytest.approx(0.78)

    def test_market_for_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError):
            skewed_ecosystem().market_for(ComponentKind.WALLET)
