"""Tests for streaming population generation and the counter-based sampler.

Ecosystem sampling now derives every market choice from the counter-based
splitmix64 stream (``campaign_uniform``), making replica ``index`` a pure
function of ``(seed, index)``.  That contract is what this module pins:

- a hardcoded snapshot of the choice/configuration stream, so any accidental
  change to the sampling order or the hash constants fails loudly (the
  golden snapshots of every sampled-population experiment depend on it);
- chunked streaming (``stream_replica_chunks``) equals the one-shot
  ``sample_population`` for every chunk size, on every backend setting;
- generator argument validation.
"""

from __future__ import annotations

import pytest

from repro.backend.base import campaign_uniform
from repro.core.configuration import ComponentKind
from repro.core.exceptions import ConfigurationError
from repro.datasets.generators import stream_replica_chunks
from repro.datasets.software_ecosystem import default_ecosystem, skewed_ecosystem


class TestCounterSamplingSnapshot:
    """Pins the exact sampling stream (regenerating goldens moves these)."""

    def test_choice_stream_snapshot(self):
        ecosystem = default_ecosystem()
        assert [ecosystem.choices_at(11, index) for index in range(4)] == [
            (0, 0, 1, 0, 0),
            (0, 0, 1, 0, 3),
            (0, 0, 2, 2, 3),
            (0, 0, 2, 1, 1),
        ]

    def test_configuration_snapshot(self):
        configuration = default_ecosystem().configuration_at(11, 0)
        names = {
            kind: configuration.component(kind).name
            for kind in (
                ComponentKind.CONSENSUS_CLIENT,
                ComponentKind.CRYPTO_LIBRARY,
                ComponentKind.OPERATING_SYSTEM,
                ComponentKind.TRUSTED_HARDWARE,
                ComponentKind.WALLET,
            )
        }
        assert names == {
            ComponentKind.CONSENSUS_CLIENT: "client-alpha",
            ComponentKind.CRYPTO_LIBRARY: "openssl",
            ComponentKind.OPERATING_SYSTEM: "linux",
            ComponentKind.TRUSTED_HARDWARE: "intel-sgx",
            ComponentKind.WALLET: "hardware-wallet",
        }

    def test_choices_follow_the_campaign_uniform_stream(self):
        ecosystem = default_ecosystem()
        markets = ecosystem.markets
        index = 6
        expected = tuple(
            market.choice_index(
                campaign_uniform(11, index * len(markets) + position)
            )
            for position, market in enumerate(markets)
        )
        assert ecosystem.choices_at(11, index) == expected

    def test_sampling_is_a_pure_function_of_seed_and_index(self):
        ecosystem = default_ecosystem()
        small = ecosystem.sample_population(10, seed=5)
        large = ecosystem.sample_population(200, seed=5)
        for left, right in zip(small, large):
            assert left.configuration == right.configuration
            assert left.replica_id == right.replica_id

    def test_choice_index_walks_cumulative_shares(self):
        market = default_ecosystem().market_for(ComponentKind.OPERATING_SYSTEM)
        assert market.choice_index(0.0) == 0
        assert market.choice_index(0.9999999) == len(market.shares) - 1


class TestStreamingEqualsOneShot:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 500, 1000])
    def test_chunked_stream_matches_sample_population(self, chunk_size):
        ecosystem = default_ecosystem()
        population = ecosystem.sample_population(
            137, seed=21, attested_fraction=0.3
        )
        streamed = [
            replica
            for chunk in stream_replica_chunks(
                ecosystem,
                137,
                seed=21,
                chunk_size=chunk_size,
                attested_fraction=0.3,
            )
            for replica in chunk
        ]
        assert len(streamed) == len(population.replicas())
        for left, right in zip(streamed, population):
            assert left.replica_id == right.replica_id
            assert left.configuration == right.configuration
            assert left.power == right.power
            assert left.attested == right.attested

    def test_chunk_sizes_partition_exactly(self):
        ecosystem = skewed_ecosystem()
        chunks = list(stream_replica_chunks(ecosystem, 100, seed=2, chunk_size=33))
        assert [len(chunk) for chunk in chunks] == [33, 33, 33, 1]

    def test_validation(self):
        ecosystem = default_ecosystem()
        with pytest.raises(ConfigurationError):
            next(iter(stream_replica_chunks(ecosystem, 0)))
        with pytest.raises(ConfigurationError):
            next(iter(stream_replica_chunks(ecosystem, 10, chunk_size=0)))
        with pytest.raises(ConfigurationError):
            next(
                iter(
                    stream_replica_chunks(ecosystem, 10, attested_fraction=1.5)
                )
            )
        with pytest.raises(ConfigurationError):
            next(iter(stream_replica_chunks(ecosystem, 10, power=-1.0)))
