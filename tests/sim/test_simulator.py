"""Unit tests for the discrete-event simulator (events, network, metrics)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import SimulationError
from repro.sim.events import EventQueue, Scheduler
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import NetworkConfig, SimulatedNetwork
from repro.sim.node import Message, SimulatedNode


class EchoNode(SimulatedNode):
    """Test node that records everything it receives and can echo back."""

    def __init__(self, node_id: str, *, echo: bool = False) -> None:
        super().__init__(node_id)
        self.received = []
        self.timers = []
        self._echo = echo

    def on_message(self, message: Message) -> None:
        self.received.append(message)
        if self._echo and message.msg_type == "PING":
            self.send(message.sender, "PONG", {"n": message.get("n")})

    def on_timer(self, timer_id: str) -> None:
        self.timers.append((self.now, timer_id))


class TestEventQueueAndScheduler:
    def test_events_fire_in_time_order(self):
        scheduler = Scheduler()
        order = []
        scheduler.call_at(2.0, lambda: order.append("late"))
        scheduler.call_at(1.0, lambda: order.append("early"))
        scheduler.run()
        assert order == ["early", "late"]

    def test_ties_break_by_insertion_order(self):
        scheduler = Scheduler()
        order = []
        scheduler.call_at(1.0, lambda: order.append("first"))
        scheduler.call_at(1.0, lambda: order.append("second"))
        scheduler.run()
        assert order == ["first", "second"]

    def test_clock_advances_with_events(self):
        scheduler = Scheduler()
        times = []
        scheduler.call_later(0.5, lambda: times.append(scheduler.now))
        scheduler.call_later(1.5, lambda: times.append(scheduler.now))
        end = scheduler.run()
        assert times == [0.5, 1.5]
        assert end == pytest.approx(1.5)

    def test_until_horizon_stops_early(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_at(5.0, lambda: fired.append(True))
        scheduler.run(until=1.0)
        assert not fired
        assert scheduler.pending_events() == 1

    def test_cancelled_events_are_skipped(self):
        scheduler = Scheduler()
        fired = []
        event = scheduler.call_at(1.0, lambda: fired.append(True))
        event.cancel()
        scheduler.run()
        assert not fired

    def test_scheduling_in_the_past_rejected(self):
        scheduler = Scheduler()
        scheduler.call_at(1.0, lambda: scheduler.call_at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            scheduler.run()

    def test_max_events_guard(self):
        scheduler = Scheduler()

        def reschedule():
            scheduler.call_later(0.001, reschedule)

        scheduler.call_later(0.0, reschedule)
        with pytest.raises(SimulationError):
            scheduler.run(max_events=100)

    def test_empty_queue_pop_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().call_later(-1.0, lambda: None)


class TestNetwork:
    def _build(self, config=None):
        scheduler = Scheduler()
        network = SimulatedNetwork(scheduler, config)
        a = EchoNode("a", echo=True)
        b = EchoNode("b")
        network.register_all([a, b])
        return scheduler, network, a, b

    def test_message_delivery_and_reply(self):
        scheduler, network, a, b = self._build()
        b.send("a", "PING", {"n": 1})
        scheduler.run()
        assert [m.msg_type for m in a.received] == ["PING"]
        assert [m.msg_type for m in b.received] == ["PONG"]
        assert b.received[0].get("n") == 1

    def test_broadcast_includes_or_excludes_self(self):
        scheduler, network, a, b = self._build()
        a.broadcast("HELLO", include_self=False)
        scheduler.run()
        assert len(a.received) == 0
        assert len(b.received) == 1

    def test_crashed_node_neither_sends_nor_receives(self):
        scheduler, network, a, b = self._build()
        b.crash()
        a.send("b", "PING")
        b.send("a", "PING")
        scheduler.run()
        assert b.received == []
        assert a.received == []

    def test_partition_blocks_cross_group_traffic(self):
        scheduler, network, a, b = self._build()
        network.set_partitions([["a"], ["b"]])
        a.send("b", "PING")
        scheduler.run()
        assert b.received == []
        network.heal_partitions()
        a.send("b", "PING")
        scheduler.run()
        assert len(b.received) == 1

    def test_overlapping_partitions_rejected(self):
        _, network, _, _ = self._build()
        with pytest.raises(SimulationError):
            network.set_partitions([["a"], ["a", "b"]])

    def test_lossy_network_drops_messages(self):
        scheduler, network, a, b = self._build(
            NetworkConfig(loss_probability=0.9, seed=1)
        )
        for _ in range(50):
            a.send("b", "PING")
        scheduler.run()
        assert len(b.received) < 50
        assert network.metrics.counter("messages_dropped") > 0

    def test_delays_fall_within_configured_bounds(self):
        config = NetworkConfig(min_delay=0.2, max_delay=0.4, seed=2)
        scheduler, network, a, b = self._build(config)
        a.send("b", "PING")
        end = scheduler.run()
        assert 0.2 <= end <= 0.4

    def test_unknown_recipient_rejected(self):
        _, network, a, _ = self._build()
        with pytest.raises(SimulationError):
            a.send("ghost", "PING")

    def test_duplicate_registration_rejected(self):
        scheduler = Scheduler()
        network = SimulatedNetwork(scheduler)
        node = EchoNode("a")
        network.register(node)
        with pytest.raises(SimulationError):
            network.register(EchoNode("a"))

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            NetworkConfig(min_delay=0.5, max_delay=0.1)
        with pytest.raises(SimulationError):
            NetworkConfig(loss_probability=1.0)

    def test_timers_fire(self):
        scheduler, network, a, _ = self._build()
        a.set_timer(1.0, "view-change")
        scheduler.run()
        assert a.timers == [(1.0, "view-change")]

    def test_message_counters(self):
        scheduler, network, a, b = self._build()
        a.send("b", "PING")
        scheduler.run()
        assert network.metrics.counter("messages_sent") == 1
        assert network.metrics.counter("messages_delivered") == 1


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        metrics = MetricsRegistry()
        metrics.increment("commits")
        metrics.increment("commits", 2)
        metrics.set_gauge("height", 7.0)
        assert metrics.counter("commits") == 3
        assert metrics.gauge("height") == 7.0
        assert metrics.counter("unknown") == 0.0

    def test_negative_increment_rejected(self):
        with pytest.raises(SimulationError):
            MetricsRegistry().increment("x", -1)

    def test_time_series(self):
        metrics = MetricsRegistry()
        metrics.record("latency", 1.0, 0.2)
        metrics.record("latency", 2.0, 0.4)
        series = metrics.series("latency")
        assert series.mean() == pytest.approx(0.3)
        assert series.maximum() == pytest.approx(0.4)
        assert series.last() == pytest.approx(0.4)
        assert len(series) == 2

    def test_empty_series_statistics_raise(self):
        with pytest.raises(SimulationError):
            MetricsRegistry().series("empty").mean()

    def test_snapshot_and_reset(self):
        metrics = MetricsRegistry()
        metrics.increment("a")
        metrics.set_gauge("b", 2.0)
        assert metrics.snapshot() == {"a": 1.0, "b": 2.0}
        metrics.reset()
        assert metrics.snapshot() == {}
