"""Focused tests for sim.events: tie-breaking, cancellation, stop().

The Scheduler docstrings assert these behaviors; this module pins them.  The
broader simulator integration (network, nodes, metrics) lives in
tests/sim/test_simulator.py.
"""

from __future__ import annotations

import pytest

from repro.core.exceptions import SimulationError
from repro.sim.events import EventQueue, Scheduler


class TestTieBreaking:
    def test_equal_timestamps_fire_in_insertion_order(self):
        scheduler = Scheduler()
        order = []
        for label in ("first", "second", "third", "fourth"):
            scheduler.call_at(3.0, lambda label=label: order.append(label))
        scheduler.run()
        assert order == ["first", "second", "third", "fourth"]

    def test_ties_scheduled_from_callbacks_still_follow_insertion_order(self):
        scheduler = Scheduler()
        order = []

        def first():
            order.append("first")
            # Scheduled mid-run at the same timestamp: runs after the
            # already-queued "second" because its sequence number is larger.
            scheduler.call_at(1.0, lambda: order.append("late addition"))

        scheduler.call_at(1.0, first)
        scheduler.call_at(1.0, lambda: order.append("second"))
        scheduler.run()
        assert order == ["first", "second", "late addition"]

    def test_queue_pop_breaks_ties_by_sequence(self):
        queue = EventQueue()
        pushed_first = queue.push(2.0, lambda: None, label="first")
        pushed_second = queue.push(2.0, lambda: None, label="second")
        assert queue.pop() is pushed_first
        assert queue.pop() is pushed_second


class TestCancellation:
    def test_cancelled_events_are_skipped(self):
        scheduler = Scheduler()
        fired = []
        keep = scheduler.call_at(1.0, lambda: fired.append("keep"))
        drop = scheduler.call_at(1.0, lambda: fired.append("drop"))
        drop.cancel()
        scheduler.run()
        assert fired == ["keep"]
        assert keep.time == 1.0

    def test_cancelling_from_a_callback_skips_the_pending_event(self):
        scheduler = Scheduler()
        fired = []
        victim = scheduler.call_at(2.0, lambda: fired.append("victim"))
        scheduler.call_at(1.0, victim.cancel)
        scheduler.run()
        assert fired == []

    def test_cancelled_events_do_not_count_as_pending(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1
        assert queue.peek_time() == 2.0

    def test_fully_cancelled_queue_is_falsy_and_pop_raises(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None).cancel()
        assert not queue
        with pytest.raises(SimulationError):
            queue.pop()


class TestStop:
    def test_stop_halts_mid_run(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_at(1.0, lambda: fired.append(1))
        scheduler.call_at(2.0, scheduler.stop)
        scheduler.call_at(3.0, lambda: fired.append(3))
        end = scheduler.run()
        # The event at t=3 stays queued; the clock halts at the stop event.
        assert fired == [1]
        assert end == pytest.approx(2.0)
        assert scheduler.pending_events() == 1

    def test_run_after_stop_resumes_with_the_remaining_events(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_at(1.0, scheduler.stop)
        scheduler.call_at(2.0, lambda: fired.append(2))
        scheduler.run()
        assert fired == []
        # stop() only affects the current run; the next run drains the queue.
        end = scheduler.run()
        assert fired == [2]
        assert end == pytest.approx(2.0)

    def test_events_executed_counts_across_runs(self):
        scheduler = Scheduler()
        scheduler.call_at(1.0, scheduler.stop)
        scheduler.call_at(2.0, lambda: None)
        scheduler.run()
        assert scheduler.events_executed == 1
        scheduler.run()
        assert scheduler.events_executed == 2
