"""Cross-backend contract tests for the sparse campaign kernels.

The sparse plane's load-bearing clauses, pinned here:

- :class:`SparseExposure` packs, validates, slices and column-selects CSR
  structure without ever densifying;
- ``sparse_campaign_trials`` / ``sparse_campaign_grid`` draw from the **same**
  counter-based splitmix64 stream as the dense kernels, so sparse and dense
  results are bit-identical on every backend (and across backends);
- the stream counter is global in both the trial and the row dimension:
  trial-range *and* row-range partitions of ``sparse_grid_partials`` merge to
  the unpartitioned result exactly;
- malformed structure and arguments are usage errors
  (:class:`~repro.core.exceptions.BackendError`) on both backends, never
  silent zeros.
"""

from __future__ import annotations

import pickle

import pytest

from repro.backend import available_backends, get_backend
from repro.backend.base import (
    CampaignGridPoint,
    ResolvedGridPoint,
    SparseExposure,
    finalize_sparse_point,
    merge_sparse_partials,
)
from repro.core.exceptions import BackendError
from repro.faults.matrix import PopulationMatrix
from repro.faults.scenarios import ecosystem_scenario

TOLERANCES = (1.0 / 3.0, 0.5)
TRIALS = 64
SEED = 13


def fixture(backend_name):
    """(backend, dense matrix, sparse exposure) for one small scenario."""
    scenario = ecosystem_scenario(
        ecosystem="diverse", population_size=40, seed=5, exploit_probability=0.5
    )
    matrix = PopulationMatrix.build(
        scenario.population, scenario.catalog, layout="dense"
    )
    sparse = SparseExposure.from_dense(
        matrix.exposure_rows(),
        matrix.powers,
        matrix.success_probabilities,
    )
    return get_backend(backend_name), matrix, sparse


class TestSparseExposureStructure:
    def test_from_rows_round_trips_from_dense(self):
        _, matrix, sparse = fixture("python")
        by_rows = SparseExposure.from_rows(
            (
                tuple(column for column, cell in enumerate(row) if cell)
                for row in matrix.exposure_rows()
            ),
            matrix.powers,
            matrix.success_probabilities,
        )
        assert bytes(by_rows.indptr) == bytes(sparse.indptr)
        assert bytes(by_rows.indices) == bytes(sparse.indices)
        assert bytes(by_rows.powers) == bytes(sparse.powers)
        assert sparse.replica_count == len(matrix.powers)
        assert sparse.column_count == len(matrix.success_probabilities)
        assert 0.0 < sparse.density < 1.0

    def test_row_slice_rebases_indptr(self):
        _, matrix, sparse = fixture("python")
        piece = sparse.row_slice(10, 25)
        assert piece.replica_count == 15
        assert piece.indptr[0] == 0
        dense_rows = matrix.exposure_rows()[10:25]
        rebuilt = SparseExposure.from_dense(
            dense_rows, matrix.powers[10:25], matrix.success_probabilities
        )
        assert bytes(piece.indptr) == bytes(rebuilt.indptr)
        assert bytes(piece.indices) == bytes(rebuilt.indices)

    def test_select_columns_renumbers_locally(self):
        _, matrix, sparse = fixture("python")
        columns = (1, 4, 7)
        selected = sparse.select_columns(columns)
        assert selected.column_count == len(columns)
        for row in range(selected.replica_count):
            local = selected.indices[
                selected.indptr[row] : selected.indptr[row + 1]
            ]
            original = sparse.indices[sparse.indptr[row] : sparse.indptr[row + 1]]
            assert tuple(columns[c] for c in local) == tuple(
                c for c in original if c in columns
            )

    def test_validate_rejects_malformed_structure(self):
        _, _, sparse = fixture("python")
        import array

        broken = SparseExposure(
            indptr=array.array("q", [0, 2, 1]),
            indices=array.array("q", [0, 1]),
            powers=array.array("d", [1.0, 1.0]),
            success_probabilities=(0.5, 0.5),
            disclosed_at=(0.0, 0.0),
        )
        with pytest.raises(BackendError):
            broken.validate()
        out_of_range = SparseExposure(
            indptr=array.array("q", [0, 1]),
            indices=array.array("q", [5]),
            powers=array.array("d", [1.0]),
            success_probabilities=(0.5, 0.5),
            disclosed_at=(0.0, 0.0),
        )
        with pytest.raises(BackendError):
            out_of_range.validate()

    def test_pickle_round_trip_preserves_structure(self):
        _, _, sparse = fixture("python")
        clone = pickle.loads(pickle.dumps(sparse.validate()))
        assert bytes(clone.indptr) == bytes(sparse.indptr)
        assert bytes(clone.indices) == bytes(sparse.indices)
        assert clone.success_probabilities == sparse.success_probabilities


class TestSparseMatchesDense:
    @pytest.mark.parametrize("backend_name", available_backends())
    def test_sparse_campaign_trials_equals_dense(self, backend_name):
        backend, matrix, sparse = fixture(backend_name)
        dense = backend.campaign_trials(
            backend.asarray_matrix(matrix.exposure_rows()),
            backend.asarray(matrix.powers),
            matrix.success_probabilities,
            trials=TRIALS,
            seed=SEED,
            tolerance=TOLERANCES[0],
            total_power=matrix.total_power,
        )
        via_sparse = backend.sparse_campaign_trials(
            sparse,
            trials=TRIALS,
            seed=SEED,
            tolerance=TOLERANCES[0],
            total_power=matrix.total_power,
        )
        assert via_sparse == dense

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_sparse_campaign_grid_equals_dense(self, backend_name):
        backend, matrix, sparse = fixture(backend_name)
        points = (
            CampaignGridPoint(tolerances=TOLERANCES, budget=3, seed_offset=0),
            CampaignGridPoint(
                tolerances=TOLERANCES, columns=(0, 2, 5), seed_offset=1
            ),
            CampaignGridPoint(
                tolerances=TOLERANCES,
                budget=2,
                success_probability=0.8,
                seed_offset=2,
            ),
        )
        dense = backend.campaign_grid(
            backend.asarray_matrix(matrix.exposure_rows()),
            backend.asarray(matrix.powers),
            matrix.success_probabilities,
            points,
            trials=TRIALS,
            seed=SEED,
            total_power=matrix.total_power,
        )
        via_sparse = backend.sparse_campaign_grid(
            sparse,
            points,
            trials=TRIALS,
            seed=SEED,
            total_power=matrix.total_power,
        )
        assert via_sparse == dense

    @pytest.mark.skipif(
        len(available_backends()) < 2, reason="needs both backends"
    )
    def test_backends_agree_exactly(self):
        results = []
        for backend_name in available_backends():
            backend, matrix, sparse = fixture(backend_name)
            results.append(
                backend.sparse_campaign_grid(
                    sparse,
                    (CampaignGridPoint(tolerances=TOLERANCES, budget=4),),
                    trials=TRIALS,
                    seed=SEED,
                    total_power=matrix.total_power,
                )
            )
        assert results[0] == results[1]


class TestPartialPartitioning:
    @pytest.mark.parametrize("backend_name", available_backends())
    def test_trial_ranges_merge_to_the_serial_run(self, backend_name):
        backend, matrix, sparse = fixture(backend_name)
        point = ResolvedGridPoint(
            columns=tuple(range(sparse.column_count)),
            probabilities=sparse.success_probabilities,
            tolerances=TOLERANCES,
            seed=SEED,
        )
        full = backend.sparse_grid_partials(sparse, (point,), trials=TRIALS)[0]
        # Trial-range partitions concatenate (each chunk covers disjoint
        # trials); the global trial counter makes the pieces line up exactly.
        chunks = [
            backend.sparse_grid_partials(
                sparse, (point,), trials=count, trial_offset=offset
            )[0]
            for offset, count in ((0, 20), (20, 30), (50, TRIALS - 50))
        ]
        concatenated = tuple(
            value for chunk in chunks for value in chunk.per_trial_compromised
        )
        assert concatenated == full.per_trial_compromised
        summed = [0.0] * sparse.column_count
        for chunk in chunks:
            for column, value in enumerate(chunk.per_vulnerability_totals):
                summed[column] += value
        assert tuple(summed) == full.per_vulnerability_totals

    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("step", [1, 7, 16, 39])
    def test_row_ranges_merge_to_the_serial_run(self, backend_name, step):
        backend, matrix, sparse = fixture(backend_name)
        point = ResolvedGridPoint(
            columns=tuple(range(sparse.column_count)),
            probabilities=sparse.success_probabilities,
            tolerances=TOLERANCES,
            seed=SEED,
        )
        full = backend.sparse_grid_partials(sparse, (point,), trials=TRIALS)
        chunks = [
            backend.sparse_grid_partials(
                sparse.row_slice(start, min(start + step, sparse.replica_count)),
                (point,),
                trials=TRIALS,
                row_offset=start,
                total_rows=sparse.replica_count,
            )
            for start in range(0, sparse.replica_count, step)
        ]
        merged = merge_sparse_partials(chunks)
        assert merged == full
        finalized = finalize_sparse_point(
            merged[0],
            trials=TRIALS,
            columns=point.columns,
            tolerances=point.tolerances,
            total_power=matrix.total_power,
        )
        reference = finalize_sparse_point(
            full[0],
            trials=TRIALS,
            columns=point.columns,
            tolerances=point.tolerances,
            total_power=matrix.total_power,
        )
        assert finalized == reference

    def test_merging_zero_chunks_is_an_error(self):
        with pytest.raises(BackendError, match="zero sparse partial chunks"):
            merge_sparse_partials([])


class TestSparseValidation:
    @pytest.mark.parametrize("backend_name", available_backends())
    def test_empty_point_list_raises(self, backend_name):
        backend, matrix, sparse = fixture(backend_name)
        with pytest.raises(BackendError):
            backend.sparse_grid_partials(sparse, (), trials=TRIALS)

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_out_of_range_column_raises(self, backend_name):
        backend, matrix, sparse = fixture(backend_name)
        bad = ResolvedGridPoint(
            columns=(sparse.column_count,),
            probabilities=(0.5,),
            tolerances=TOLERANCES,
            seed=SEED,
        )
        with pytest.raises(BackendError, match="out of range"):
            backend.sparse_grid_partials(sparse, (bad,), trials=TRIALS)

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_row_chunk_overflowing_total_rows_raises(self, backend_name):
        backend, matrix, sparse = fixture(backend_name)
        point = ResolvedGridPoint(
            columns=(0,),
            probabilities=(0.5,),
            tolerances=TOLERANCES,
            seed=SEED,
        )
        with pytest.raises(BackendError, match="cannot hold rows"):
            backend.sparse_grid_partials(
                sparse,
                (point,),
                trials=TRIALS,
                row_offset=1,
                total_rows=sparse.replica_count,
            )

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_invalid_trials_raise(self, backend_name):
        backend, matrix, sparse = fixture(backend_name)
        with pytest.raises(BackendError, match="trial count"):
            backend.sparse_campaign_trials(
                sparse,
                trials=0,
                seed=SEED,
                tolerance=TOLERANCES[0],
                total_power=matrix.total_power,
            )
