"""Pin the silent fast-path fallbacks to the exact kernels.

The grid knobs ``dtype="float32"`` and ``topk="argpartition"`` are
*optional* accelerations: the numpy dense kernel implements them, while
the python backend and every sparse grid path accept the knobs for seam
parity but always run the exact float64/sort route.  That fallback is a
byte-level contract — a backend that let the knobs leak into the sparse
numerics would silently fork the golden results — so this module asserts
equality (``==`` on the result dataclasses, i.e. bit-identity), never
closeness, on every backend that is available.
"""

from __future__ import annotations

import itertools

import pytest

from repro.backend import available_backends, get_backend
from repro.backend.base import CampaignGridPoint
from repro.faults.engine import GridCampaignEngine, GridPointRequest
from repro.faults.scenarios import ecosystem_scenario, sparse_ecosystem_matrix

TOLERANCES = (1.0 / 3.0, 0.5)
TRIALS = 48
SEED = 3

FAST_KNOBS = tuple(
    {"dtype": dtype, "topk": topk}
    for dtype, topk in itertools.product(
        ("float64", "float32"), ("sort", "argpartition")
    )
    if (dtype, topk) != ("float64", "sort")
)

POINTS = (
    CampaignGridPoint(tolerances=TOLERANCES, budget=3),
    CampaignGridPoint(tolerances=(0.25,), budget=5, seed_offset=7),
)


@pytest.fixture(scope="module")
def sparse_workload():
    matrix, _catalog = sparse_ecosystem_matrix(
        ecosystem="default",
        population_size=300,
        seed=11,
        exploit_probability=0.5,
    )
    return matrix


class TestPythonDenseFallback:
    """The scalar backend has no fast paths: both knobs are exact no-ops."""

    @pytest.fixture(scope="class")
    def dense(self):
        from repro.faults.matrix import PopulationMatrix

        scenario = ecosystem_scenario(
            ecosystem="diverse",
            population_size=24,
            seed=9,
            exploit_probability=0.55,
        )
        matrix = PopulationMatrix.build(scenario.population, scenario.catalog)
        return matrix

    @pytest.mark.parametrize(
        "knobs", FAST_KNOBS, ids=lambda knobs: f"{knobs['dtype']}-{knobs['topk']}"
    )
    def test_grid_knobs_fall_back_to_exact_bytes(self, dense, knobs):
        backend = get_backend("python")
        exposure = backend.asarray_matrix(dense.exposure_rows())
        powers = backend.asarray(dense.powers)

        def run(**grid_knobs):
            return backend.campaign_grid(
                exposure,
                powers,
                dense.success_probabilities,
                POINTS,
                trials=TRIALS,
                seed=SEED,
                total_power=dense.total_power,
                **grid_knobs,
            )

        assert run(**knobs) == run()


class TestSparseGridFallback:
    """Every backend's sparse grid path ignores both knobs byte-exactly."""

    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize(
        "knobs", FAST_KNOBS, ids=lambda knobs: f"{knobs['dtype']}-{knobs['topk']}"
    )
    def test_sparse_campaign_grid_knobs_are_exact_noops(
        self, sparse_workload, backend_name, knobs
    ):
        backend = get_backend(backend_name)
        sparse = sparse_workload.sparse_exposure()

        def run(**grid_knobs):
            return backend.sparse_campaign_grid(
                sparse,
                POINTS,
                trials=TRIALS,
                seed=SEED,
                total_power=sparse_workload.total_power,
                **grid_knobs,
            )

        assert run(**knobs) == run()

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_sparse_engine_grid_knobs_are_exact_noops(
        self, sparse_workload, backend_name
    ):
        requests = (
            GridPointRequest(tolerances=TOLERANCES, worst_case=4),
            GridPointRequest(tolerances=(0.5,), worst_case=2, seed_offset=5),
        )

        def run(**engine_knobs):
            engine = GridCampaignEngine.from_matrix(
                sparse_workload, backend=backend_name, **engine_knobs
            )
            return engine.estimate_grid(requests, trials=TRIALS, seed=SEED)

        exact = run()
        assert run(dtype="float32", topk="argpartition") == exact
