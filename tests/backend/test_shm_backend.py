"""Tests for the shared-memory multiprocess backend.

Everything here pins the shm backend's one non-negotiable contract: its
results are byte-identical to the plain NumPy backend at every worker
count, pruned or unpruned, pooled or inline.  ``REPRO_SHM_INLINE_CELLS=0``
forces even these tiny workloads through the real process pool so the
shared-memory publication, worker attach, and merge seams are exercised,
not bypassed.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.backend import (
    availability_errors,
    available_backends,
    get_backend,
    registered_backends,
)
from repro.backend.base import (
    CampaignGridPoint,
    ComputeBackend,
    ResolvedGridPoint,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.shm_backend import (
    DEFAULT_INLINE_CELL_LIMIT,
    INLINE_ENV_VAR,
    PRUNE_ENV_VAR,
    ShmBackend,
    WORKERS_ENV_VAR,
)
from repro.backend.timing import KERNEL_TIMINGS
from repro.core.exceptions import BackendError
from repro.faults.scenarios import sparse_ecosystem_matrix

pytestmark = pytest.mark.skipif(
    not ShmBackend.is_available(), reason="shm backend unavailable here"
)

WORKER_COUNTS = (1, 2, 4)
TRIALS = 67
SEED = 13


@pytest.fixture
def pooled(monkeypatch):
    """Force every kernel call through the worker pool."""
    monkeypatch.setenv(INLINE_ENV_VAR, "0")
    monkeypatch.delenv(PRUNE_ENV_VAR, raising=False)


@pytest.fixture
def dense_workload():
    rng = np.random.default_rng(7)
    replicas, vulnerabilities = 29, 8
    exposure = (rng.random((replicas, vulnerabilities)) < 0.4).astype(float)
    powers = tuple(1.0 for _ in range(replicas))
    probabilities = tuple(
        float(p) for p in rng.random(vulnerabilities) * 0.8 + 0.1
    )
    return exposure, powers, probabilities, float(sum(powers))


@pytest.fixture(scope="module")
def sparse_workload():
    matrix, _catalog = sparse_ecosystem_matrix(
        ecosystem="default",
        population_size=400,
        seed=3,
        exploit_probability=0.45,
    )
    return matrix.sparse_exposure(), matrix.total_power


class TestRegistration:
    def test_shm_registers_behind_numpy(self):
        names = registered_backends()
        assert "shm" in names
        assert names.index("numpy") < names.index("shm")
        assert names.index("shm") < names.index("python")

    def test_auto_detection_never_picks_shm(self, monkeypatch):
        from repro.backend import BACKEND_ENV_VAR

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert get_backend().name != "shm"

    def test_env_var_opts_in(self, monkeypatch):
        from repro.backend import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "shm")
        assert get_backend().name == "shm"

    def test_shm_available_implies_numpy_available(self):
        assert "numpy" in available_backends()


class TestAvailabilityReasons:
    def test_available_backends_report_no_error(self):
        reasons = availability_errors()
        assert set(reasons) == set(registered_backends())
        for name in available_backends():
            assert reasons[name] is None

    def test_base_class_fallback_reason(self):
        class Unavailable(ComputeBackend):
            name = "unavailable-probe"

            @classmethod
            def is_available(cls):
                return False

        Unavailable.__abstractmethods__ = frozenset()
        reason = Unavailable.availability_error()
        assert reason is not None
        assert "unavailable-probe" in reason

    def test_shm_matches_is_available(self):
        assert (ShmBackend.availability_error() is None) == (
            ShmBackend.is_available()
        )


class TestConfiguration:
    def test_invalid_worker_count_rejected(self, monkeypatch):
        backend = get_backend("shm")
        for bad in ("zero", "0", "-3"):
            monkeypatch.setenv(WORKERS_ENV_VAR, bad)
            with pytest.raises(BackendError):
                backend._worker_count()

    def test_default_worker_count_is_bounded(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        backend = get_backend("shm")
        assert 1 <= backend._worker_count() <= 4

    def test_invalid_inline_limit_rejected(self, monkeypatch):
        monkeypatch.setenv(INLINE_ENV_VAR, "-1")
        with pytest.raises(BackendError):
            ShmBackend._inline_cell_limit()

    def test_default_inline_limit(self, monkeypatch):
        monkeypatch.delenv(INLINE_ENV_VAR, raising=False)
        assert ShmBackend._inline_cell_limit() == DEFAULT_INLINE_CELL_LIMIT

    def test_prune_toggle(self, monkeypatch):
        monkeypatch.delenv(PRUNE_ENV_VAR, raising=False)
        assert ShmBackend._prune_enabled()
        for off in ("0", "false", "OFF", "no"):
            monkeypatch.setenv(PRUNE_ENV_VAR, off)
            assert not ShmBackend._prune_enabled()
        monkeypatch.setenv(PRUNE_ENV_VAR, "1")
        assert ShmBackend._prune_enabled()


class TestDenseIdentity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_campaign_trials_matches_numpy(
        self, pooled, monkeypatch, dense_workload, workers
    ):
        monkeypatch.setenv(WORKERS_ENV_VAR, str(workers))
        exposure, powers, probabilities, total_power = dense_workload
        shm = get_backend("shm")
        reference = NumpyBackend()
        kwargs = dict(
            trials=TRIALS,
            seed=SEED,
            tolerance=0.5,
            total_power=total_power,
        )
        assert shm.campaign_trials(
            exposure, powers, probabilities, **kwargs
        ) == reference.campaign_trials(exposure, powers, probabilities, **kwargs)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_campaign_trials_with_offset_matches_numpy(
        self, pooled, monkeypatch, dense_workload, workers
    ):
        monkeypatch.setenv(WORKERS_ENV_VAR, str(workers))
        exposure, powers, probabilities, total_power = dense_workload
        shm = get_backend("shm")
        reference = NumpyBackend()
        kwargs = dict(
            trials=31,
            seed=SEED,
            tolerance=1.0 / 3.0,
            total_power=total_power,
            trial_offset=17,
        )
        assert shm.campaign_trials(
            exposure, powers, probabilities, **kwargs
        ) == reference.campaign_trials(exposure, powers, probabilities, **kwargs)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_campaign_grid_matches_numpy(
        self, pooled, monkeypatch, dense_workload, workers
    ):
        monkeypatch.setenv(WORKERS_ENV_VAR, str(workers))
        exposure, powers, probabilities, total_power = dense_workload
        points = (
            CampaignGridPoint(tolerances=(1.0 / 3.0, 0.5), budget=3),
            CampaignGridPoint(tolerances=(0.25,), budget=5, seed_offset=7),
            CampaignGridPoint(
                tolerances=(0.5,), columns=(1, 4, 6), success_probability=0.7
            ),
        )
        shm = get_backend("shm")
        reference = NumpyBackend()
        kwargs = dict(trials=TRIALS, seed=SEED, total_power=total_power)
        assert shm.campaign_grid(
            exposure, powers, probabilities, points, **kwargs
        ) == reference.campaign_grid(
            exposure, powers, probabilities, points, **kwargs
        )


class TestSparseIdentity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("prune", ("1", "0"))
    def test_sparse_grid_partials_matches_numpy(
        self, pooled, monkeypatch, sparse_workload, workers, prune
    ):
        monkeypatch.setenv(WORKERS_ENV_VAR, str(workers))
        monkeypatch.setenv(PRUNE_ENV_VAR, prune)
        sparse, _total_power = sparse_workload
        column_count = sparse.column_count
        points = (
            ResolvedGridPoint(
                columns=tuple(range(0, column_count, 3)),
                probabilities=tuple(0.5 for _ in range(0, column_count, 3)),
                tolerances=(1.0 / 3.0, 0.5),
                seed=17,
            ),
            ResolvedGridPoint(
                columns=(1, 4),
                probabilities=(0.7, 0.2),
                tolerances=(0.25,),
                seed=99,
            ),
        )
        shm = get_backend("shm")
        reference = NumpyBackend()
        kwargs = dict(
            trials=TRIALS,
            trial_offset=5,
            row_offset=0,
            total_rows=sparse.replica_count,
        )
        assert shm.sparse_grid_partials(
            sparse, points, **kwargs
        ) == reference.sparse_grid_partials(sparse, points, **kwargs)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sparse_campaign_trials_matches_numpy(
        self, pooled, monkeypatch, sparse_workload, workers
    ):
        monkeypatch.setenv(WORKERS_ENV_VAR, str(workers))
        sparse, total_power = sparse_workload
        shm = get_backend("shm")
        reference = NumpyBackend()
        kwargs = dict(
            trials=TRIALS, seed=SEED, tolerance=0.5, total_power=total_power
        )
        assert shm.sparse_campaign_trials(
            sparse, **kwargs
        ) == reference.sparse_campaign_trials(sparse, **kwargs)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sparse_campaign_grid_matches_numpy(
        self, pooled, monkeypatch, sparse_workload, workers
    ):
        monkeypatch.setenv(WORKERS_ENV_VAR, str(workers))
        sparse, total_power = sparse_workload
        points = (
            CampaignGridPoint(tolerances=(1.0 / 3.0, 0.5), budget=4),
            CampaignGridPoint(tolerances=(0.5,), budget=2, seed_offset=11),
        )
        shm = get_backend("shm")
        reference = NumpyBackend()
        kwargs = dict(trials=TRIALS, seed=SEED, total_power=total_power)
        assert shm.sparse_campaign_grid(
            sparse, points, **kwargs
        ) == reference.sparse_campaign_grid(sparse, points, **kwargs)

    def test_row_chunk_with_no_selected_cells_yields_exact_zeros(
        self, pooled, monkeypatch, sparse_workload
    ):
        """The presummary chunk skip must equal the kernel's own zeros."""
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        sparse, _total_power = sparse_workload
        # Restrict to a row slice, then select only columns absent there.
        chunk = sparse.row_slice(0, 40)
        present = set(int(c) for c in np.asarray(chunk.indices))
        absent = tuple(
            column
            for column in range(sparse.column_count)
            if column not in present
        )
        if not absent:
            pytest.skip("every column appears in the first 40 rows")
        points = (
            ResolvedGridPoint(
                columns=absent[:2],
                probabilities=(0.9,) * len(absent[:2]),
                tolerances=(0.5,),
                seed=5,
            ),
        )
        shm = get_backend("shm")
        reference = NumpyBackend()
        kwargs = dict(
            trials=9,
            trial_offset=0,
            row_offset=0,
            total_rows=sparse.replica_count,
        )
        result = shm.sparse_grid_partials(chunk, points, **kwargs)
        assert result == reference.sparse_grid_partials(chunk, points, **kwargs)
        assert all(v == 0.0 for v in result[0].per_trial_compromised)


class TestPruningInternals:
    def test_pruned_workload_drops_unselected_columns(
        self, monkeypatch, sparse_workload
    ):
        monkeypatch.delenv(PRUNE_ENV_VAR, raising=False)
        sparse, _total_power = sparse_workload
        backend = get_backend("shm")
        points = (
            ResolvedGridPoint(
                columns=(2, 5, 9),
                probabilities=(0.5, 0.5, 0.5),
                tolerances=(0.5,),
                seed=0,
            ),
        )
        pruned, remapped = backend._pruned_workload(sparse, points)
        assert pruned.column_count == 3
        assert pruned.nnz < sparse.nnz
        assert remapped[0].columns == (0, 1, 2)
        assert pruned.success_probabilities == tuple(
            sparse.success_probabilities[c] for c in (2, 5, 9)
        )
        # Every kept cell keeps its within-row ascending order.
        indptr = np.asarray(pruned.indptr)
        indices = np.asarray(pruned.indices)
        for row in range(pruned.replica_count):
            segment = indices[indptr[row] : indptr[row + 1]]
            assert list(segment) == sorted(segment)

    def test_pruning_disabled_returns_inputs(self, monkeypatch, sparse_workload):
        monkeypatch.setenv(PRUNE_ENV_VAR, "0")
        sparse, _total_power = sparse_workload
        backend = get_backend("shm")
        points = (
            ResolvedGridPoint(
                columns=(2,), probabilities=(0.5,), tolerances=(0.5,), seed=0
            ),
        )
        assert backend._pruned_workload(sparse, points) == (sparse, points)

    def test_full_column_selection_is_not_pruned(
        self, monkeypatch, sparse_workload
    ):
        monkeypatch.delenv(PRUNE_ENV_VAR, raising=False)
        sparse, _total_power = sparse_workload
        backend = get_backend("shm")
        columns = tuple(range(sparse.column_count))
        points = (
            ResolvedGridPoint(
                columns=columns,
                probabilities=(0.5,) * len(columns),
                tolerances=(0.5,),
                seed=0,
            ),
        )
        pruned, remapped = backend._pruned_workload(sparse, points)
        assert pruned is sparse
        assert remapped is points


class TestPoolLifecycle:
    def test_pool_recycles_when_worker_count_changes(
        self, pooled, monkeypatch, dense_workload
    ):
        exposure, powers, probabilities, total_power = dense_workload
        shm = get_backend("shm")
        kwargs = dict(
            trials=16, seed=1, tolerance=0.5, total_power=total_power
        )
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        shm.campaign_trials(exposure, powers, probabilities, **kwargs)
        assert shm._pool_workers == 2
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        shm.campaign_trials(exposure, powers, probabilities, **kwargs)
        assert shm._pool_workers == 3

    def test_close_releases_pool_and_segments(
        self, pooled, monkeypatch, dense_workload
    ):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        exposure, powers, probabilities, total_power = dense_workload
        shm = get_backend("shm")
        shm.campaign_trials(
            exposure,
            powers,
            probabilities,
            trials=16,
            seed=1,
            tolerance=0.5,
            total_power=total_power,
        )
        assert shm._published
        shm.close()
        assert shm._pool is None
        assert not shm._published
        # The backend must keep working after close (fresh pool, republish).
        result = shm.campaign_trials(
            exposure,
            powers,
            probabilities,
            trials=16,
            seed=1,
            tolerance=0.5,
            total_power=total_power,
        )
        assert result == NumpyBackend().campaign_trials(
            exposure,
            powers,
            probabilities,
            trials=16,
            seed=1,
            tolerance=0.5,
            total_power=total_power,
        )

    def test_publication_is_cached_per_object(
        self, pooled, monkeypatch, dense_workload
    ):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        exposure, powers, probabilities, total_power = dense_workload
        shm = get_backend("shm")
        kwargs = dict(trials=16, seed=1, tolerance=0.5, total_power=total_power)
        shm.campaign_trials(exposure, powers, probabilities, **kwargs)
        segments = {handle.segment.name for _, handle in shm._published.values()}
        shm.campaign_trials(exposure, powers, probabilities, **kwargs)
        assert {
            handle.segment.name for _, handle in shm._published.values()
        } == segments


def _campaign_inside_pool_worker(exposure, powers, probabilities, total_power):
    """Run a shm-backed campaign from inside a multiprocessing child.

    Module-level so the outer pool can pickle it by reference.  Returns the
    dispatch decision alongside the result so the parent can assert the
    child degraded to inline instead of building a nested pool (which a
    pool worker can never shut down — its exit skips ``atexit``).
    """
    import multiprocessing

    backend = get_backend("shm")
    dispatch = backend._dispatch_workers(1 << 30)
    result = backend.campaign_trials(
        exposure,
        powers,
        probabilities,
        trials=24,
        seed=5,
        tolerance=0.5,
        total_power=total_power,
    )
    return (
        multiprocessing.parent_process() is not None,
        dispatch,
        result,
    )


class TestForkSafety:
    def test_pool_worker_degrades_to_inline_and_matches(
        self, pooled, monkeypatch, dense_workload
    ):
        """A forked engine shard must neither hang nor fork grandchildren.

        The parent primes a live pool first — the historical deadlock shape:
        a child inheriting an active ShmBackend, whose executor corpse it
        must drop, and whose nested-pool temptation it must refuse.
        """
        from concurrent.futures import ProcessPoolExecutor

        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        exposure, powers, probabilities, total_power = dense_workload
        shm = get_backend("shm")
        kwargs = dict(trials=24, seed=5, tolerance=0.5, total_power=total_power)
        shm.campaign_trials(exposure, powers, probabilities, **kwargs)
        assert shm._pool is not None

        with ProcessPoolExecutor(max_workers=2) as outer:
            futures = [
                outer.submit(
                    _campaign_inside_pool_worker,
                    exposure,
                    powers,
                    probabilities,
                    total_power,
                )
                for _ in range(2)
            ]
            # result(timeout=...) turns a reintroduced deadlock into a
            # test failure instead of a hung suite.
            payloads = [future.result(timeout=120) for future in futures]

        expected = NumpyBackend().campaign_trials(
            exposure, powers, probabilities, **kwargs
        )
        for in_child, dispatch, result in payloads:
            assert in_child is True
            assert dispatch == 1
            assert result == expected

    def test_dispatch_stays_pooled_in_the_parent(self, pooled, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        shm = get_backend("shm")
        assert shm._dispatch_workers(1 << 30) == 2


class TestDelegationAndTiming:
    def test_non_hot_primitives_delegate_to_numpy(self):
        shm = get_backend("shm")
        reference = NumpyBackend()
        shares = (0.4, 0.3, 0.2, 0.1)
        assert shm.shannon_entropy(shares) == reference.shannon_entropy(shares)
        assert shm.weighted_bincount(
            ("a", "b", "a"), (1.0, 2.0, 3.0)
        ) == reference.weighted_bincount(("a", "b", "a"), (1.0, 2.0, 3.0))
        kwargs = dict(
            vulnerability_probability=0.5,
            exploit_budget=1,
            trials=50,
            seed=3,
            tolerance=1.0 / 3.0,
        )
        assert shm.violation_trials(shares, **kwargs) == reference.violation_trials(
            shares, **kwargs
        )

    def test_sparse_presummary_is_cached(self, sparse_workload):
        sparse, _total_power = sparse_workload
        shm = get_backend("shm")
        first = shm.sparse_masked_power_sums(sparse)
        assert shm.sparse_masked_power_sums(sparse) is first
        assert first == NumpyBackend().sparse_masked_power_sums(sparse)

    def test_kernel_timings_record_shm_dispatch(
        self, pooled, monkeypatch, dense_workload
    ):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        exposure, powers, probabilities, total_power = dense_workload
        before = KERNEL_TIMINGS.snapshot()
        get_backend("shm").campaign_trials(
            exposure,
            powers,
            probabilities,
            trials=16,
            seed=1,
            tolerance=0.5,
            total_power=total_power,
        )
        delta = KERNEL_TIMINGS.delta_since(before)
        assert "shm_campaign_trials" in delta
