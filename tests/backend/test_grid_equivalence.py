"""Cross-backend contract tests for the fused ``campaign_grid`` kernel.

The grid kernel's contract has three load-bearing clauses this module pins:

- every grid point's sub-stream is **bit-identical** to a standalone
  ``campaign_trials`` call on the column-sliced matrix with the point's seed,
  so the backends (and the fused/looped paths) agree exactly, not just
  closely;
- ``trial_offset`` makes chunk boundaries invisible — partitioned runs sum
  to the unchunked totals;
- grid inputs are validated at the seam on **both** backends: empty grids,
  duplicate points, out-of-range or NaN parameters are usage errors
  (:class:`~repro.core.exceptions.BackendError`), never silent zeros.
"""

from __future__ import annotations

import math

import pytest

from repro.backend import NumpyBackend, available_backends, get_backend
from repro.backend.base import CampaignGridPoint
from repro.core.exceptions import BackendError
from repro.faults.matrix import PopulationMatrix
from repro.faults.scenarios import ecosystem_scenario

needs_numpy = pytest.mark.skipif(
    not NumpyBackend.is_available(), reason="numpy not installed"
)

TOLERANCES = (1.0 / 3.0, 0.5)


def grid_fixture(backend_name):
    """(backend, exposure, powers, probabilities, total_power) for one scenario."""
    scenario = ecosystem_scenario(
        ecosystem="diverse", population_size=32, seed=9, exploit_probability=0.55
    )
    matrix = PopulationMatrix.build(scenario.population, scenario.catalog)
    backend = get_backend(backend_name)
    return (
        backend,
        matrix,
        backend.asarray_matrix(matrix.exposure_rows()),
        backend.asarray(matrix.powers),
        matrix.success_probabilities,
    )


def run_grid(backend_name, points, *, trials=60, seed=3, trial_offset=0, **kwargs):
    backend, matrix, exposure, powers, probabilities = grid_fixture(backend_name)
    return backend.campaign_grid(
        exposure,
        powers,
        probabilities,
        points,
        trials=trials,
        seed=seed,
        total_power=matrix.total_power,
        trial_offset=trial_offset,
        **kwargs,
    )


class TestGridMatchesCampaignTrials:
    """Per-point sub-streams equal standalone campaign_trials calls."""

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_explicit_column_points_match_sliced_campaigns(self, backend_name):
        backend, matrix, exposure, powers, probabilities = grid_fixture(backend_name)
        points = (
            CampaignGridPoint(tolerances=TOLERANCES, columns=(0, 2, 5), seed_offset=0),
            CampaignGridPoint(tolerances=TOLERANCES, columns=(1,), seed_offset=4),
        )
        results = backend.campaign_grid(
            exposure,
            powers,
            probabilities,
            points,
            trials=80,
            seed=7,
            total_power=matrix.total_power,
        )
        ids = matrix.vulnerability_ids
        for point, result in zip(points, results):
            rows, sliced_probabilities = matrix.columns_for(
                tuple(ids[column] for column in point.columns)
            )
            for position, tolerance in enumerate(TOLERANCES):
                reference = backend.campaign_trials(
                    backend.asarray_matrix(rows),
                    powers,
                    sliced_probabilities,
                    trials=80,
                    seed=7 + point.seed_offset,
                    tolerance=tolerance,
                    total_power=matrix.total_power,
                )
                assert result.violations[position] == reference.violations
                assert result.compromised_total == reference.compromised_total
                assert (
                    result.per_vulnerability_totals
                    == reference.per_vulnerability_totals
                )

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_budget_points_select_most_damaging_columns(self, backend_name):
        backend, matrix, *_ = grid_fixture(backend_name)
        by_budget = run_grid(
            backend_name,
            (CampaignGridPoint(tolerances=TOLERANCES, budget=3),),
        )[0]
        ids = matrix.vulnerability_ids
        expected_columns = tuple(
            matrix.vulnerability_index(vuln_id)
            for vuln_id, _ in matrix.most_damaging(3)
        )
        assert by_budget.columns == expected_columns
        explicit = run_grid(
            backend_name,
            (CampaignGridPoint(tolerances=TOLERANCES, columns=expected_columns),),
        )[0]
        assert by_budget == explicit
        assert len(ids) > 3  # the budget actually selected a strict subset

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_probability_overrides(self, backend_name):
        backend, matrix, exposure, powers, _ = grid_fixture(backend_name)
        scalar = run_grid(
            backend_name,
            (
                CampaignGridPoint(
                    tolerances=TOLERANCES, columns=(0, 1), success_probability=0.8
                ),
            ),
        )[0]
        per_column = run_grid(
            backend_name,
            (
                CampaignGridPoint(
                    tolerances=TOLERANCES,
                    columns=(0, 1),
                    success_probabilities=(0.8, 0.8),
                ),
            ),
        )[0]
        assert scalar == per_column
        # p=0 exploits nothing; p=1 compromises every exposed replica,
        # deterministically, in every trial.
        degenerate = run_grid(
            backend_name,
            (
                CampaignGridPoint(
                    tolerances=TOLERANCES, columns=(0,), success_probability=0.0
                ),
                CampaignGridPoint(
                    tolerances=TOLERANCES, columns=(0,), success_probability=1.0
                ),
            ),
            trials=20,
        )
        assert degenerate[0].compromised_total == 0.0
        exposed_power = matrix.exposed_power()[matrix.vulnerability_ids[0]]
        assert degenerate[1].compromised_total == pytest.approx(20 * exposed_power)

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_trial_offset_partitions_sum_to_the_whole(self, backend_name):
        points = (
            CampaignGridPoint(tolerances=TOLERANCES, budget=2),
            CampaignGridPoint(tolerances=TOLERANCES, columns=(3, 4), seed_offset=1),
        )
        whole = run_grid(backend_name, points, trials=50)
        first = run_grid(backend_name, points, trials=30)
        second = run_grid(backend_name, points, trials=20, trial_offset=30)
        for merged, left, right in zip(whole, first, second):
            assert merged.violations == tuple(
                a + b for a, b in zip(left.violations, right.violations)
            )
            assert merged.compromised_total == (
                left.compromised_total + right.compromised_total
            )

    @needs_numpy
    def test_backends_are_bit_identical_in_default_mode(self):
        points = (
            CampaignGridPoint(tolerances=TOLERANCES, budget=4),
            CampaignGridPoint(
                tolerances=(0.25,), columns=(0, 1, 2), success_probability=0.7
            ),
            CampaignGridPoint(tolerances=TOLERANCES, columns=(5,), seed_offset=9),
        )
        assert run_grid("python", points) == run_grid("numpy", points)


class TestGridFastPaths:
    """Opt-in fast paths: tolerance-pinned on numpy, graceful fallback scalar."""

    @needs_numpy
    def test_float32_dtype_is_close_not_identical(self):
        points = (CampaignGridPoint(tolerances=TOLERANCES, budget=4),)
        exact = run_grid("numpy", points, trials=400)[0]
        fast = run_grid("numpy", points, trials=400, dtype="float32")[0]
        assert fast.compromised_total == pytest.approx(
            exact.compromised_total, rel=0.05
        )
        for position in range(len(TOLERANCES)):
            assert fast.violations[position] == pytest.approx(
                exact.violations[position], abs=max(4, 0.05 * 400)
            )

    @needs_numpy
    def test_argpartition_topk_agrees_with_sort(self):
        points = (CampaignGridPoint(tolerances=TOLERANCES, budget=3),)
        assert run_grid("numpy", points, topk="argpartition") == run_grid(
            "numpy", points, topk="sort"
        )

    def test_python_backend_falls_back_instead_of_erroring(self):
        # The scalar backend has no reduced-precision or partition path; both
        # knobs must silently select the exact route, per contract.
        points = (CampaignGridPoint(tolerances=TOLERANCES, budget=3),)
        exact = run_grid("python", points)
        assert run_grid("python", points, dtype="float32") == exact
        assert run_grid("python", points, topk="argpartition") == exact


class TestGridValidation:
    """Grid inputs are validated at the seam, identically on every backend."""

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_empty_grid_is_a_usage_error(self, backend_name):
        with pytest.raises(BackendError, match="at least one grid point"):
            run_grid(backend_name, ())

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_duplicate_points_are_rejected(self, backend_name):
        point = CampaignGridPoint(tolerances=TOLERANCES, columns=(0, 1))
        with pytest.raises(BackendError, match="duplicate"):
            run_grid(backend_name, (point, point))

    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize(
        "point, message",
        [
            (CampaignGridPoint(tolerances=(), columns=(0,)), "tolerance"),
            (CampaignGridPoint(tolerances=(0.0,), columns=(0,)), "tolerance"),
            (CampaignGridPoint(tolerances=(1.5,), columns=(0,)), "tolerance"),
            (
                CampaignGridPoint(tolerances=(float("nan"),), columns=(0,)),
                "tolerance",
            ),
            (CampaignGridPoint(tolerances=TOLERANCES), "exactly one"),
            (
                CampaignGridPoint(tolerances=TOLERANCES, columns=(0,), budget=2),
                "exactly one",
            ),
            (CampaignGridPoint(tolerances=TOLERANCES, budget=0), "budget"),
            (CampaignGridPoint(tolerances=TOLERANCES, columns=(0, 0)), "duplicate"),
            (CampaignGridPoint(tolerances=TOLERANCES, columns=(-1,)), "column"),
            (CampaignGridPoint(tolerances=TOLERANCES, columns=(10_000,)), "column"),
            (
                CampaignGridPoint(
                    tolerances=TOLERANCES, columns=(0,), success_probability=-0.1
                ),
                "probability",
            ),
            (
                CampaignGridPoint(
                    tolerances=TOLERANCES,
                    columns=(0,),
                    success_probability=float("nan"),
                ),
                "probability",
            ),
            (
                CampaignGridPoint(
                    tolerances=TOLERANCES, columns=(0, 1), success_probabilities=(0.5,)
                ),
                "probabilit",
            ),
            (
                CampaignGridPoint(
                    tolerances=TOLERANCES,
                    columns=(0,),
                    success_probabilities=(0.5,),
                    success_probability=0.5,
                ),
                "both",
            ),
            (
                CampaignGridPoint(
                    tolerances=TOLERANCES, budget=2, success_probabilities=(0.5, 0.5)
                ),
                "budget",
            ),
            (
                CampaignGridPoint(tolerances=TOLERANCES, columns=(0,), seed_offset=-1),
                "seed offset",
            ),
        ],
    )
    def test_bad_points_are_rejected(self, backend_name, point, message):
        with pytest.raises(BackendError, match=message):
            run_grid(backend_name, (point,))

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_bad_run_arguments_are_rejected(self, backend_name):
        point = CampaignGridPoint(tolerances=TOLERANCES, columns=(0,))
        with pytest.raises(BackendError):
            run_grid(backend_name, (point,), trials=0)
        with pytest.raises(BackendError):
            run_grid(backend_name, (point,), trial_offset=-1)
        with pytest.raises(BackendError):
            run_grid(backend_name, (point,), dtype="float16")
        with pytest.raises(BackendError):
            run_grid(backend_name, (point,), topk="heap")

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_negative_power_and_nan_probability_are_rejected(self, backend_name):
        backend = get_backend(backend_name)
        point = CampaignGridPoint(tolerances=TOLERANCES, columns=(0,))
        exposure = backend.asarray_matrix(((1.0, 0.0), (0.0, 1.0)))
        with pytest.raises(BackendError):
            backend.campaign_grid(
                exposure,
                backend.asarray((1.0, -1.0)),
                (0.5, 0.5),
                (point,),
                trials=5,
                seed=0,
                total_power=2.0,
            )
        with pytest.raises(BackendError):
            backend.campaign_grid(
                exposure,
                backend.asarray((1.0, 1.0)),
                (float("nan"), 0.5),
                (point,),
                trials=5,
                seed=0,
                total_power=2.0,
            )
        with pytest.raises(BackendError):
            backend.campaign_grid(
                exposure,
                backend.asarray((1.0, 1.0)),
                (0.5, 0.5),
                (point,),
                trials=5,
                seed=0,
                total_power=0.0,
            )

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_validation_is_not_dependent_on_float_equality_quirks(self, backend_name):
        # NaN must be caught by explicit comparison logic: NaN != NaN, so a
        # naive membership test would let it through.
        assert math.isnan(float("nan"))
        with pytest.raises(BackendError):
            run_grid(
                backend_name,
                (
                    CampaignGridPoint(
                        tolerances=TOLERANCES,
                        columns=(0,),
                        success_probabilities=(float("nan"),),
                    ),
                ),
            )
