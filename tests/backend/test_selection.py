"""Tests for backend registration and selection."""

from __future__ import annotations

import pytest

from repro.backend import (
    AUTO,
    BACKEND_ENV_VAR,
    ComputeBackend,
    NumpyBackend,
    PythonBackend,
    available_backends,
    get_backend,
    registered_backends,
    set_default_backend,
    use_backend,
)
from repro.core.exceptions import BackendError


@pytest.fixture(autouse=True)
def _clean_selection_state(monkeypatch):
    """Isolate each test from the process-wide default and the env var."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    previous = set_default_backend(None)
    yield
    set_default_backend(previous)


class TestRegistry:
    def test_python_backend_is_always_registered_and_available(self):
        assert "python" in registered_backends()
        assert "python" in available_backends()

    def test_numpy_backend_is_registered(self):
        assert "numpy" in registered_backends()

    def test_available_is_subset_of_registered(self):
        assert set(available_backends()) <= set(registered_backends())


class TestGetBackend:
    def test_explicit_name_resolves(self):
        assert get_backend("python").name == "python"

    def test_name_is_case_insensitive_and_stripped(self):
        assert get_backend(" Python ").name == "python"

    def test_instances_are_cached(self):
        assert get_backend("python") is get_backend("python")

    def test_instance_passes_through(self):
        backend = get_backend("python")
        assert get_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(BackendError):
            get_backend("fortran")

    def test_auto_prefers_numpy_when_available(self):
        expected = "numpy" if NumpyBackend.is_available() else "python"
        assert get_backend(AUTO).name == expected
        assert get_backend().name == expected

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert get_backend().name == "python"

    def test_env_var_with_unknown_backend_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(BackendError):
            get_backend()

    def test_explicit_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        if NumpyBackend.is_available():
            assert get_backend("numpy").name == "numpy"

    def test_default_beats_env_var(self, monkeypatch):
        if not NumpyBackend.is_available():
            pytest.skip("numpy not installed")
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        set_default_backend("python")
        assert get_backend().name == "python"


class TestDefaultBackend:
    def test_set_and_restore_default(self):
        assert set_default_backend("python") is None
        assert get_backend().name == "python"
        assert set_default_backend(None) == "python"

    def test_set_default_validates_eagerly(self):
        with pytest.raises(BackendError):
            set_default_backend("not-a-backend")

    def test_use_backend_context_manager_scopes_the_default(self):
        with use_backend("python") as backend:
            assert isinstance(backend, PythonBackend)
            assert get_backend().name == "python"
        expected = "numpy" if NumpyBackend.is_available() else "python"
        assert get_backend().name == expected


class TestBackendProtocol:
    def test_backends_are_compute_backends(self):
        for name in available_backends():
            assert isinstance(get_backend(name), ComputeBackend)

    def test_repr_names_the_backend(self):
        assert "python" in repr(get_backend("python"))
