"""Cross-backend equivalence tests.

The contract under test:

- each backend is bit-deterministic for a fixed seed (identical
  ``SafetyViolationEstimate`` on repeated runs);
- the pure-Python backend reproduces the pre-backend scalar loop exactly
  (same ``random.Random`` stream, same summation order);
- python and numpy backends agree within Monte-Carlo tolerance on violation
  probabilities and mean compromised fractions, and both agree with the
  closed-form ``analytic_single_vulnerability_violation`` check;
- the entropy and weighted-accumulation kernels agree across backends.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.monte_carlo import (
    analytic_single_vulnerability_violation,
    estimate_violation_probability,
)
from repro.backend import NumpyBackend, available_backends, get_backend
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import BackendError
from repro.datasets.generators import (
    oligopoly_distribution,
    uniform_distribution,
    zipf_distribution,
)

needs_numpy = pytest.mark.skipif(
    not NumpyBackend.is_available(), reason="numpy not installed"
)

CENSUSES = {
    "monoculture": ConfigurationDistribution({"only": 1.0}),
    "duopoly": ConfigurationDistribution({"a": 0.7, "b": 0.3}),
    "zipf-32": zipf_distribution(32, 1.2),
    "oligopoly": oligopoly_distribution(5, 0.9, 50),
    "uniform-64": uniform_distribution(64),
}


def legacy_reference_estimate(census, *, vulnerability_probability, exploit_budget, trials, seed, tolerance):
    """The pre-backend scalar loop, verbatim (including the per-trial sort)."""
    shares = sorted(census.probabilities(), reverse=True)
    rng = random.Random(seed)
    violations = 0
    compromised_total = 0.0
    for _ in range(trials):
        vulnerable = [share for share in shares if rng.random() < vulnerability_probability]
        vulnerable.sort(reverse=True)
        compromised = sum(vulnerable[:exploit_budget])
        compromised_total += compromised
        if compromised >= tolerance:
            violations += 1
    return violations, compromised_total


class TestPythonBackendMatchesLegacyLoop:
    @pytest.mark.parametrize("label", sorted(CENSUSES))
    @pytest.mark.parametrize("budget", [0, 1, 3, 1000])
    def test_bit_identical_to_pre_backend_implementation(self, label, budget):
        census = CENSUSES[label]
        estimate = estimate_violation_probability(
            census,
            vulnerability_probability=0.3,
            exploit_budget=budget,
            trials=400,
            seed=11,
            backend="python",
        )
        violations, compromised_total = legacy_reference_estimate(
            census,
            vulnerability_probability=0.3,
            exploit_budget=budget,
            trials=400,
            seed=11,
            tolerance=estimate.tolerated_fraction,
        )
        assert estimate.violations == violations
        assert estimate.mean_compromised_fraction == compromised_total / 400


class TestPerBackendDeterminism:
    @pytest.mark.parametrize("backend", available_backends())
    def test_identical_seed_gives_identical_estimate(self, backend):
        census = CENSUSES["zipf-32"]
        first = estimate_violation_probability(
            census, vulnerability_probability=0.4, exploit_budget=2, trials=500, seed=9, backend=backend
        )
        second = estimate_violation_probability(
            census, vulnerability_probability=0.4, exploit_budget=2, trials=500, seed=9, backend=backend
        )
        assert first == second

    @pytest.mark.parametrize("backend", available_backends())
    def test_different_seeds_usually_differ(self, backend):
        census = CENSUSES["duopoly"]
        estimates = {
            estimate_violation_probability(
                census, vulnerability_probability=0.5, trials=200, seed=seed, backend=backend
            ).violations
            for seed in range(6)
        }
        assert len(estimates) > 1


@needs_numpy
class TestCrossBackendAgreement:
    @pytest.mark.parametrize("label", sorted(CENSUSES))
    @pytest.mark.parametrize("budget", [1, 2, 5])
    def test_violation_probability_within_mc_tolerance(self, label, budget):
        census = CENSUSES[label]
        estimates = {
            backend: estimate_violation_probability(
                census,
                vulnerability_probability=0.3,
                exploit_budget=budget,
                trials=6000,
                seed=17,
                backend=backend,
            )
            for backend in ("python", "numpy")
        }
        python, numpy = estimates["python"], estimates["numpy"]
        assert python.violation_probability == pytest.approx(
            numpy.violation_probability, abs=0.03
        )
        assert python.mean_compromised_fraction == pytest.approx(
            numpy.mean_compromised_fraction, abs=0.01
        )
        assert python.tolerated_fraction == numpy.tolerated_fraction

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_agreement_with_analytic_single_exploit_formula(self, backend):
        census = ConfigurationDistribution(
            {"big": 0.5, "mid": 0.35, "small-1": 0.1, "small-2": 0.05}
        )
        probability = 0.35
        estimate = estimate_violation_probability(
            census,
            vulnerability_probability=probability,
            exploit_budget=1,
            trials=8000,
            seed=23,
            backend=backend,
        )
        analytic = analytic_single_vulnerability_violation(
            census, vulnerability_probability=probability, tolerated_fraction=1 / 3
        )
        assert estimate.violation_probability == pytest.approx(analytic, abs=0.02)

    @pytest.mark.parametrize("budget", [1, 3])
    def test_impossible_and_certain_verdicts_are_exact_on_both_backends(self, budget):
        # Verdicts driven by exact share arithmetic must agree bit-for-bit:
        # uniform-64 shares can never reach 1/3 with <= 3 exploits, and a
        # monoculture with p=1 always violates.
        for backend in ("python", "numpy"):
            never = estimate_violation_probability(
                uniform_distribution(64),
                vulnerability_probability=0.9,
                exploit_budget=budget,
                trials=300,
                seed=5,
                backend=backend,
            )
            assert never.violation_probability == 0.0
            always = estimate_violation_probability(
                CENSUSES["monoculture"],
                vulnerability_probability=1.0,
                exploit_budget=budget,
                trials=300,
                seed=5,
                backend=backend,
            )
            assert always.violation_probability == 1.0


class TestEntropyKernel:
    @pytest.mark.parametrize("backend", available_backends())
    def test_matches_reference_entropy(self, backend):
        kernel = get_backend(backend)
        assert kernel.shannon_entropy([0.25, 0.25, 0.25, 0.25]) == pytest.approx(2.0)
        assert kernel.shannon_entropy([1.0]) == 0.0
        assert kernel.shannon_entropy([0.5, 0.5, 0.0]) == pytest.approx(1.0)

    @needs_numpy
    def test_backends_agree_on_skewed_vector(self):
        probabilities = zipf_distribution(100, 1.5).probabilities()
        python = get_backend("python").shannon_entropy(probabilities)
        numpy = get_backend("numpy").shannon_entropy(probabilities)
        assert python == pytest.approx(numpy, rel=1e-12)


class TestWeightedBincount:
    @pytest.mark.parametrize("backend", available_backends())
    def test_groups_and_preserves_first_appearance_order(self, backend):
        kernel = get_backend(backend)
        labels = ["linux", "bsd", "linux", "windows", "bsd", "linux"]
        weights = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        result = kernel.weighted_bincount(labels, weights)
        assert result == {"linux": 10.0, "bsd": 7.0, "windows": 4.0}
        assert list(result) == ["linux", "bsd", "windows"]

    @pytest.mark.parametrize("backend", available_backends())
    def test_empty_input_gives_empty_mapping(self, backend):
        assert get_backend(backend).weighted_bincount([], []) == {}

    @needs_numpy
    def test_backends_agree_on_large_random_input(self):
        rng = random.Random(3)
        labels = [f"component-{rng.randrange(40)}" for _ in range(5000)]
        weights = [rng.random() for _ in range(5000)]
        python = get_backend("python").weighted_bincount(labels, weights)
        numpy = get_backend("numpy").weighted_bincount(labels, weights)
        assert list(python) == list(numpy)
        for key in python:
            assert python[key] == pytest.approx(numpy[key], rel=1e-12)


class TestCampaignKernel:
    """The campaign kernels share a counter-based RNG: bit-identical results."""

    EXPOSURE = [
        [1.0, 0.0, 1.0],
        [1.0, 1.0, 0.0],
        [0.0, 1.0, 1.0],
        [1.0, 1.0, 1.0],
        [0.0, 0.0, 1.0],
    ]
    POWERS = [1.0, 2.0, 1.0, 4.0, 0.5]
    TOTAL = 8.5

    def _run(self, backend, probabilities, *, trials=400, seed=31):
        kernel = get_backend(backend)
        return kernel.campaign_trials(
            kernel.asarray_matrix(self.EXPOSURE),
            kernel.asarray(self.POWERS),
            probabilities,
            trials=trials,
            seed=seed,
            tolerance=1 / 3,
            total_power=self.TOTAL,
        )

    @needs_numpy
    @pytest.mark.parametrize("probabilities", [
        [1.0, 1.0, 1.0],
        [0.5, 0.25, 0.75],
        [0.0, 1.0, 0.3],
    ])
    def test_backends_are_bit_identical(self, probabilities):
        assert self._run("python", probabilities) == self._run("numpy", probabilities)

    @needs_numpy
    def test_chunked_numpy_batches_match_the_scalar_loop(self):
        # Enough trials to force several NumPy chunks with a tiny chunk size.
        from repro.backend import numpy_backend

        original = numpy_backend._CHUNK_CELLS
        numpy_backend._CHUNK_CELLS = 45  # 3 trials of 5x3 cells per chunk
        try:
            batched = self._run("numpy", [0.6, 0.4, 0.9], trials=100)
        finally:
            numpy_backend._CHUNK_CELLS = original
        assert batched == self._run("python", [0.6, 0.4, 0.9], trials=100)

    @pytest.mark.parametrize("backend", available_backends())
    def test_reliable_exploits_compromise_every_exposed_replica(self, backend):
        result = self._run(backend, [1.0, 1.0, 1.0], trials=10)
        # All replicas exposed to something: 8.5 power per trial.
        assert result.compromised_total == pytest.approx(85.0)
        assert result.violations == 10
        assert result.per_vulnerability_totals == pytest.approx((70.0, 70.0, 65.0))

    @pytest.mark.parametrize("backend", available_backends())
    def test_zero_probability_never_compromises(self, backend):
        result = self._run(backend, [0.0, 0.0, 0.0], trials=10)
        assert result.violations == 0
        assert result.compromised_total == 0.0
        assert result.per_vulnerability_totals == (0.0, 0.0, 0.0)

    @pytest.mark.parametrize("backend", available_backends())
    def test_masked_power_sums(self, backend):
        kernel = get_backend(backend)
        sums = kernel.masked_power_sums(
            kernel.asarray_matrix(self.EXPOSURE), kernel.asarray(self.POWERS)
        )
        assert sums == pytest.approx((7.0, 7.0, 6.5))

    @pytest.mark.parametrize("backend", available_backends())
    def test_masked_power_sums_rejects_shape_mismatch(self, backend):
        kernel = get_backend(backend)
        with pytest.raises(BackendError):
            kernel.masked_power_sums([[1.0], [1.0]], [5.0])

    @pytest.mark.parametrize("backend", available_backends())
    def test_campaign_validation(self, backend):
        kernel = get_backend(backend)
        with pytest.raises(BackendError):
            kernel.campaign_trials(
                [], [], [1.0], trials=10, seed=0, tolerance=0.5, total_power=1.0
            )
        with pytest.raises(BackendError):
            kernel.campaign_trials(
                [[1.0]], [1.0], [1.5], trials=10, seed=0, tolerance=0.5, total_power=1.0
            )
        with pytest.raises(BackendError):
            kernel.campaign_trials(
                [[1.0]], [1.0], [0.5], trials=0, seed=0, tolerance=0.5, total_power=1.0
            )
        with pytest.raises(BackendError):
            kernel.campaign_trials(
                [[1.0]], [1.0], [0.5], trials=10, seed=0, tolerance=0.0, total_power=1.0
            )
        with pytest.raises(BackendError):
            kernel.campaign_trials(
                [[1.0, 0.0]], [1.0], [0.5], trials=10, seed=0, tolerance=0.5, total_power=1.0
            )


class TestKernelValidation:
    @pytest.mark.parametrize("backend", available_backends())
    def test_invalid_arguments_raise_backend_error(self, backend):
        kernel = get_backend(backend)
        with pytest.raises(BackendError):
            kernel.violation_trials(
                [], vulnerability_probability=0.5, exploit_budget=1, trials=10, seed=0, tolerance=0.5
            )
        with pytest.raises(BackendError):
            kernel.violation_trials(
                [1.0], vulnerability_probability=1.5, exploit_budget=1, trials=10, seed=0, tolerance=0.5
            )
        with pytest.raises(BackendError):
            kernel.violation_trials(
                [1.0], vulnerability_probability=0.5, exploit_budget=-1, trials=10, seed=0, tolerance=0.5
            )
        with pytest.raises(BackendError):
            kernel.violation_trials(
                [1.0], vulnerability_probability=0.5, exploit_budget=1, trials=0, seed=0, tolerance=0.5
            )
        with pytest.raises(BackendError):
            kernel.violation_trials(
                [1.0], vulnerability_probability=0.5, exploit_budget=1, trials=10, seed=0, tolerance=0.0
            )
        with pytest.raises(BackendError):
            # shares must arrive pre-sorted descending
            kernel.violation_trials(
                [0.2, 0.8], vulnerability_probability=0.5, exploit_budget=1, trials=10, seed=0, tolerance=0.5
            )
