"""Golden-snapshot regression suite for every experiment.

Each file under ``tests/golden/`` is the canonical JSON view of one
experiment's structured result at its default parameters and fixed seed.
Rerunning the experiments and diffing against the snapshots (tight float
tolerances) locks the regenerated paper numbers — Figure 1, Example 1,
Propositions 1-3 and the extension analyses — against regression.

Backend-sensitive experiments (the Monte-Carlo ones) have one snapshot per
backend, since the NumPy and pure-Python RNG streams differ by design.

Regenerate after an intentional change with::

    PYTHONPATH=src python -m repro.cli run --all --quiet --no-cache --update-golden
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.backend import available_backends
from repro.experiments.orchestrator import execute_spec
from repro.experiments.orchestrator import registry

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: Relative/absolute float tolerances: tight enough to catch any real change
#: in a reported number, loose enough to absorb cross-platform libm jitter.
REL_TOL = 1e-9
ABS_TOL = 1e-12


def assert_matches(expected, actual, path="$"):
    """Recursive equality with float tolerance and exact type agreement."""
    if isinstance(expected, bool) or isinstance(actual, bool):
        assert type(expected) is type(actual) and expected == actual, (
            f"{path}: expected {expected!r}, got {actual!r}"
        )
    elif isinstance(expected, float) or isinstance(actual, float):
        assert isinstance(expected, (int, float)) and isinstance(actual, (int, float)), (
            f"{path}: expected a number, got {actual!r}"
        )
        assert math.isclose(expected, actual, rel_tol=REL_TOL, abs_tol=ABS_TOL), (
            f"{path}: expected {expected!r}, got {actual!r}"
        )
    elif isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected a dict, got {actual!r}"
        assert sorted(expected) == sorted(actual), (
            f"{path}: keys differ: {sorted(expected)} vs {sorted(actual)}"
        )
        for key in expected:
            assert_matches(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected a list, got {actual!r}"
        assert len(expected) == len(actual), (
            f"{path}: length {len(expected)} vs {len(actual)}"
        )
        for index, (left, right) in enumerate(zip(expected, actual)):
            assert_matches(left, right, f"{path}[{index}]")
    else:
        assert expected == actual, f"{path}: expected {expected!r}, got {actual!r}"


def _golden_cases():
    """(spec, backend, golden path) for every snapshot that can run here."""
    cases = []
    for spec in registry.all_specs():
        if spec.backend_sensitive:
            for backend in available_backends():
                cases.append(
                    pytest.param(
                        spec,
                        backend,
                        GOLDEN_DIR / f"{spec.experiment_id}.{backend}.json",
                        id=f"{spec.experiment_id}-{backend}",
                    )
                )
        else:
            cases.append(
                pytest.param(
                    spec,
                    None,
                    GOLDEN_DIR / f"{spec.experiment_id}.json",
                    id=spec.experiment_id,
                )
            )
    return cases


@pytest.mark.parametrize("spec, backend, golden_path", _golden_cases())
def test_experiment_matches_golden_snapshot(spec, backend, golden_path):
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path.name}; regenerate with "
        "`python -m repro.cli run --all --quiet --no-cache --update-golden`"
    )
    expected = json.loads(golden_path.read_text(encoding="utf-8"))
    result = execute_spec(spec, backend=backend)
    actual = json.loads(result.canonical_json())
    assert_matches(expected, actual)


def test_every_golden_file_belongs_to_a_registered_experiment():
    """No orphaned snapshots: stale files would silently stop guarding."""
    valid_names = set()
    from repro.backend import registered_backends

    for spec in registry.all_specs():
        if spec.backend_sensitive:
            valid_names.update(
                f"{spec.experiment_id}.{backend}.json" for backend in registered_backends()
            )
        else:
            valid_names.add(f"{spec.experiment_id}.json")
    on_disk = {path.name for path in GOLDEN_DIR.glob("*.json")}
    assert on_disk, "tests/golden is empty"
    orphans = on_disk - valid_names
    assert not orphans, f"golden files without a registered experiment: {sorted(orphans)}"


def test_every_experiment_has_a_golden_file():
    """Coverage guard: adding an experiment without a snapshot must fail."""
    missing = []
    for spec in registry.all_specs():
        if spec.backend_sensitive:
            # At least the always-available python backend must be snapshotted.
            if not (GOLDEN_DIR / f"{spec.experiment_id}.python.json").exists():
                missing.append(spec.experiment_id)
        elif not (GOLDEN_DIR / f"{spec.experiment_id}.json").exists():
            missing.append(spec.experiment_id)
    assert not missing, (
        f"experiments without golden snapshots: {missing}; regenerate with "
        "`python -m repro.cli run --all --quiet --no-cache --update-golden`"
    )
