"""Tests for the classic runner shim over the orchestrator."""

from __future__ import annotations

import pytest

from repro.core.exceptions import OrchestrationError
from repro.experiments import runner
from repro.experiments.orchestrator import registry


class TestAllExperiments:
    def test_matches_registry_order(self):
        assert [name for name, _ in runner.ALL_EXPERIMENTS] == registry.experiment_ids()

    def test_entry_points_print_the_classic_report(self, capsys):
        by_name = dict(runner.ALL_EXPERIMENTS)
        by_name["example1"]()
        output = capsys.readouterr().out
        assert "Example 1" in output
        assert "8-replica" in output


class TestRunAll:
    def test_selected_experiments_print_banners(self, capsys):
        runner.run_all(["figure1"])
        output = capsys.readouterr().out
        assert output.startswith("== figure1 ")
        assert "entropy (bits)" in output

    def test_unknown_name_raises_instead_of_silently_skipping(self):
        with pytest.raises(OrchestrationError, match="unknown experiments: nope"):
            runner.run_all(["figure1", "nope"])

    def test_main_reports_unknown_names_with_exit_code(self, capsys):
        assert runner.main(["nope"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_main_success(self, capsys):
        assert runner.main(["example1"]) == 0
        assert "Example 1" in capsys.readouterr().out
