"""Integration tests for the experiment drivers (paper reproduction checks).

These tests assert the *shape* of each reproduced result — who wins, what is
bounded by what, which direction a sweep moves — exactly as EXPERIMENTS.md
records, using reduced parameters so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.core.exceptions import ExperimentError
from repro.experiments.attestation_coverage import run_attestation_coverage
from repro.experiments.diversity_ablation import run_diversity_ablation
from repro.experiments.example1 import bft_uniform_entropy, comparison_table, run_example1
from repro.experiments.figure1 import BFT_8_REPLICA_ENTROPY_BITS, figure1_table, run_figure1
from repro.experiments.prop1 import proposition1_table, run_proposition1
from repro.experiments.prop2 import proposition2_table, run_proposition2
from repro.experiments.prop3 import proposition3_table, run_proposition3
from repro.experiments.protocol_safety import (
    nakamoto_table,
    protocol_safety_table,
    run_protocol_safety,
)
from repro.experiments.safety_violation import run_safety_violation, safety_violation_table
from repro.experiments.two_class import run_two_class, two_class_table


class TestFigure1:
    def test_entropy_always_below_three_bits(self):
        result = run_figure1(max_residual_miners=200)
        assert result.always_below_bft8
        assert result.max_entropy_bits < BFT_8_REPLICA_ENTROPY_BITS

    def test_entropy_is_monotone_in_residual_miners(self):
        result = run_figure1(max_residual_miners=100)
        entropies = [point.entropy_bits for point in result.points]
        assert entropies == sorted(entropies)

    def test_caption_point_118_miners(self):
        result = run_figure1(max_residual_miners=101)
        point = [p for p in result.points if p.residual_miners == 101][0]
        assert point.total_miners == 118
        assert 2.8 < point.entropy_bits < 3.0

    def test_full_range_endpoint_values(self):
        result = run_figure1(max_residual_miners=1000, step=999)
        assert result.points[0].entropy_bits == pytest.approx(2.828, abs=0.01)
        assert result.points[-1].entropy_bits == pytest.approx(2.915, abs=0.01)

    def test_table_rendering(self):
        result = run_figure1(max_residual_miners=50)
        assert "entropy (bits)" in figure1_table(result, sample_every=10).render()

    def test_parameter_validation(self):
        with pytest.raises(ExperimentError):
            run_figure1(min_residual_miners=0)
        with pytest.raises(ExperimentError):
            run_figure1(max_residual_miners=5, min_residual_miners=10)

    def test_entropy_at_uses_a_memoized_index(self):
        result = run_figure1(max_residual_miners=50)
        expected = {p.residual_miners: p.entropy_bits for p in result.points}
        # Repeated lookups (Example 1 probes several points) hit the O(1) index.
        for x, entropy in expected.items():
            assert result.entropy_at(x) == entropy
        assert result.__dict__["_entropy_index"] == expected

    def test_entropy_at_unknown_x_raises(self):
        result = run_figure1(max_residual_miners=10)
        with pytest.raises(ExperimentError, match="not part of the sweep"):
            result.entropy_at(11)
        # A second miss after the index is built still raises cleanly.
        with pytest.raises(ExperimentError):
            result.entropy_at(0)


class TestExample1:
    def test_bitcoin_stays_below_eight_replica_bft(self):
        result = run_example1(max_residual_miners=300)
        assert result.bitcoin_below_bft8
        assert result.bft8_entropy_bits == pytest.approx(3.0)
        assert result.effective_configurations < 8.0
        assert result.equivalent_bft_size <= 8

    def test_bft_uniform_entropy_reference(self):
        assert bft_uniform_entropy(8) == pytest.approx(3.0)
        assert bft_uniform_entropy(16) == pytest.approx(4.0)

    def test_table_contains_verdict(self):
        result = run_example1(max_residual_miners=100)
        assert "Bitcoin stays below" in comparison_table(result).render()


class TestPropositions:
    def test_proposition1_holds(self):
        sweep = run_proposition1(kappas=(2, 4, 8))
        assert sweep.holds
        assert len(sweep.cases) == 9
        assert "entropy before" in proposition1_table(sweep).render()

    def test_proposition2_holds_and_shows_the_ceiling(self):
        sweep = run_proposition2(sizes=(18, 117, 1017))
        assert sweep.holds
        assert sweep.oligopoly_entropy_ceiling < 3.0
        assert sweep.uniform_final_entropy == pytest.approx(9.99, abs=0.01)
        assert "regime" in proposition2_table(sweep).render()

    def test_proposition3_tradeoff(self):
        sweep = run_proposition3(kappa=8, abundances=(1, 2, 4, 8))
        assert sweep.holds
        takeovers = [r.max_rational_takeover for r in sweep.quadratic_results]
        assert takeovers == sorted(takeovers, reverse=True)
        messages = [r.message_complexity for r in sweep.quadratic_results]
        assert messages == sorted(messages)
        assert "abundance (omega)" in proposition3_table(sweep).render()

    def test_proposition_parameter_validation(self):
        with pytest.raises(ExperimentError):
            run_proposition1(kappas=())
        with pytest.raises(ExperimentError):
            run_proposition2(sizes=(18,))
        with pytest.raises(ExperimentError):
            run_proposition3(kappa=1)


class TestSafetyViolation:
    def test_violation_probability_decreases_with_entropy(self):
        result = run_safety_violation(trials=400)
        assert result.monotone_decreasing
        first, last = result.rows[0], result.rows[-1]
        assert first.violation_probability_bft >= last.violation_probability_bft
        assert last.violation_probability_bft == 0.0

    def test_table_rendering(self):
        result = run_safety_violation(trials=100)
        assert "P[violation]" in safety_violation_table(result).render()


class TestAttestationCoverageAndTwoClass:
    def test_coverage_improves_registry_fidelity(self):
        result = run_attestation_coverage(population_size=60, fractions=(0.25, 1.0))
        partial, full = result.rows
        assert full.attested_census_entropy_bits == pytest.approx(
            full.true_entropy_bits, abs=1e-9
        )
        assert partial.unknown_power_fraction > full.unknown_power_fraction

    def test_two_class_weighting_reduces_unknown_exposure(self):
        result = run_two_class(population_size=60, weight_ratios=(1.0, 4.0, 16.0), trials=300)
        assert result.improves_with_weight
        fractions = [row.unattested_effective_fraction for row in result.rows]
        assert fractions == sorted(fractions, reverse=True)
        assert result.rows[-1].violation_probability <= result.rows[0].violation_probability
        assert "attested weight ratio" in two_class_table(result).render()

    def test_parameter_validation(self):
        with pytest.raises(ExperimentError):
            run_attestation_coverage(population_size=5)
        with pytest.raises(ExperimentError):
            run_two_class(attested_population_fraction=1.5)


class TestProtocolSafetyAndAblation:
    def test_condition_predicts_protocol_safety(self):
        result = run_protocol_safety()
        assert result.condition_predicts_safety
        by_cell = {(row.deployment, row.protocol): row for row in result.bft_rows}
        diverse_pbft = by_cell[("diverse (unique configs)", "pbft")]
        shared_pbft = by_cell[("shared client on 5 of 7", "pbft")]
        assert diverse_pbft.safety_observed
        assert not shared_pbft.safety_observed
        # The hybrid protocol (intact trusted components) survives even there.
        assert by_cell[("shared client on 5 of 7", "hybrid")].safety_observed
        assert "safety observed" in protocol_safety_table(result).render()

    def test_nakamoto_shared_pool_software_reaches_majority(self):
        result = run_protocol_safety()
        diverse, shared = result.nakamoto_rows
        assert not diverse.majority
        assert shared.majority
        assert shared.double_spend_probability == pytest.approx(1.0)
        assert "majority" in nakamoto_table(result).render()

    def test_protocol_safety_requires_seven_replicas(self):
        with pytest.raises(ExperimentError):
            run_protocol_safety(replica_count=8)

    def test_diversity_ablation_planner_wins(self):
        result = run_diversity_ablation(replica_count=40, trials=300)
        assert result.planner_beats_baselines
        by_strategy = {row.strategy: row for row in result.rows}
        mono = by_strategy["monoculture (most popular)"]
        planner = by_strategy["planner (entropy-maximizing)"]
        assert mono.single_fault_violates_bft
        assert not planner.single_fault_violates_bft
        assert planner.entropy_bits > mono.entropy_bits
