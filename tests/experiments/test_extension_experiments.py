"""Integration tests for the extension experiments (window, decentralized pools)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ExperimentError
from repro.experiments.decentralized_pools import (
    decentralization_table,
    run_decentralized_pools,
)
from repro.experiments.vulnerability_window import run_vulnerability_window, window_table


class TestVulnerabilityWindowExperiment:
    def test_both_levers_shrink_the_window(self):
        result = run_vulnerability_window(
            population_size=30,
            adoption_latencies=(20.0, 5.0, 1.0),
            recovery_periods=(4.0, 1.0),
            horizon=120.0,
        )
        assert result.patching_faster_is_better
        assert result.recovery_faster_is_better
        assert result.compromised_fraction > 1 / 3  # the zero-day matters

    def test_peak_is_independent_of_patch_speed(self):
        result = run_vulnerability_window(
            population_size=30, adoption_latencies=(20.0, 1.0), recovery_periods=(1.0,)
        )
        patch_rows = [row for row in result.rows if row.mechanism == "patch rollout"]
        assert patch_rows[0].peak_exposed_fraction == pytest.approx(
            patch_rows[1].peak_exposed_fraction
        )

    def test_table_rendering(self):
        result = run_vulnerability_window(
            population_size=20, adoption_latencies=(5.0,), recovery_periods=(1.0,)
        )
        assert "exposure area" in window_table(result).render()

    def test_parameter_validation(self):
        with pytest.raises(ExperimentError):
            run_vulnerability_window(population_size=2)
        with pytest.raises(ExperimentError):
            run_vulnerability_window(adoption_latencies=())


class TestDecentralizedPoolsExperiment:
    def test_entropy_grows_and_takeover_shrinks(self):
        result = run_decentralized_pools(members_per_pool=10, steps=(0, 3, 17))
        assert result.entropy_is_monotone
        rows = result.rows
        assert rows[0].entropy_bits < 3.0
        assert rows[-1].entropy_bits > 5.0
        assert rows[-1].coalition_takeover < rows[0].coalition_takeover
        assert rows[-1].largest_fault_domain < rows[0].largest_fault_domain

    def test_baseline_row_matches_figure1_shape(self):
        result = run_decentralized_pools(residual_miners=101, steps=(0,))
        assert result.rows[0].effective_replicas == 118
        assert 2.8 < result.rows[0].entropy_bits < 3.0

    def test_table_rendering(self):
        result = run_decentralized_pools(steps=(0, 17))
        assert "decentralized pools" in decentralization_table(result).render()

    def test_parameter_validation(self):
        with pytest.raises(ExperimentError):
            run_decentralized_pools(members_per_pool=0)
        with pytest.raises(ExperimentError):
            run_decentralized_pools(steps=(18,))
        with pytest.raises(ExperimentError):
            run_decentralized_pools(coalition_size=0)


class TestCampaignBudgetExperiment:
    def test_violation_probability_grows_with_budget(self):
        from repro.experiments.campaign_budget import (
            campaign_budget_table,
            run_campaign_budget,
        )

        result = run_campaign_budget(budgets=(1, 3, 6), trials=200)
        assert result.monotone_increasing
        series = [row.violation_probability_bft for row in result.rows]
        assert series[-1] > series[0]
        # The majority tolerance is harder to violate than BFT's.
        for row in result.rows:
            assert row.violation_probability_majority <= row.violation_probability_bft
        assert "budget m" in campaign_budget_table(result).render()

    def test_parameter_validation(self):
        from repro.experiments.campaign_budget import run_campaign_budget

        with pytest.raises(ExperimentError):
            run_campaign_budget(budgets=())
        with pytest.raises(ExperimentError):
            run_campaign_budget(budgets=(1, 0))


class TestCampaignReliabilityExperiment:
    def test_violation_probability_grows_with_reliability(self):
        from repro.experiments.campaign_reliability import run_campaign_reliability

        result = run_campaign_reliability(
            exploit_probabilities=(0.3, 0.6, 0.9), trials=200
        )
        assert result.monotone_increasing
        series = [row.violation_probability_bft for row in result.rows]
        assert series[-1] > series[0]

    def test_population_is_fixed_across_points(self):
        from repro.faults.scenarios import reliability_scenarios

        scenarios = reliability_scenarios((0.2, 0.8), population_size=12, seed=4)
        populations = [s.population for s in scenarios.values()]
        assert populations[0].replica_ids() == populations[1].replica_ids()
        assert [r.configuration for r in populations[0]] == [
            r.configuration for r in populations[1]
        ]

    def test_parameter_validation(self):
        from repro.experiments.campaign_reliability import run_campaign_reliability

        with pytest.raises(ExperimentError):
            run_campaign_reliability(exploit_probabilities=())
        with pytest.raises(ExperimentError):
            run_campaign_reliability(budget=0)


class TestCampaignChurnExperiment:
    def test_trajectory_shape(self):
        from repro.experiments.campaign_churn import run_campaign_churn

        result = run_campaign_churn(steps=40, checkpoints=2, trials=100)
        assert [row.step for row in result.rows] == [0, 20, 40]
        assert all(0.0 <= row.violation_probability_bft <= 1.0 for row in result.rows)
        assert result.entropy_drift == pytest.approx(
            result.rows[-1].entropy_bits - result.rows[0].entropy_bits
        )

    def test_parameter_validation(self):
        from repro.core.exceptions import FaultModelError
        from repro.experiments.campaign_churn import run_campaign_churn
        from repro.faults.scenarios import churned_scenarios, resolve_ecosystem

        with pytest.raises(ExperimentError):
            run_campaign_churn(budget=0)
        with pytest.raises(FaultModelError):
            churned_scenarios(steps=0)
        with pytest.raises(FaultModelError):
            churned_scenarios(steps=10, checkpoints=11)
        with pytest.raises(FaultModelError):
            resolve_ecosystem("martian")
