"""Tests for the diversity planner, manager, monitor and weight policies."""

from __future__ import annotations

import pytest

from repro.core.configuration import ComponentKind, ReplicaConfiguration, SoftwareComponent
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import AnalysisError, PlanningError
from repro.core.optimality import is_kappa_omega_optimal
from repro.core.population import Replica, ReplicaPopulation
from repro.core.resilience import ProtocolFamily
from repro.diversity.manager import DiversityManager
from repro.diversity.monitor import DiversityMonitor, MonitorThresholds
from repro.diversity.planner import EntropyPlanner
from repro.diversity.policy import TwoClassWeightPolicy
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.vulnerability import make_vulnerability


class TestEntropyPlanner:
    def test_even_assignment_without_capacity(self):
        planner = EntropyPlanner(["a", "b", "c", "d"])
        plan = planner.plan(8)
        assert plan.kappa == 4
        assert plan.omega == pytest.approx(2.0)
        assert plan.entropy == pytest.approx(2.0)
        assert is_kappa_omega_optimal(plan.as_abundance())

    def test_uneven_totals_differ_by_at_most_one(self):
        plan = EntropyPlanner(["a", "b", "c"]).plan(7)
        counts = [count for _, count in plan.counts]
        assert max(counts) - min(counts) <= 1
        assert sum(counts) == 7

    def test_capacity_constraints_respected(self):
        planner = EntropyPlanner(["a", "b", "c"], capacity={"a": 1})
        plan = planner.plan(7)
        assert dict(plan.counts)["a"] == 1

    def test_insufficient_capacity_rejected(self):
        planner = EntropyPlanner(["a", "b"], capacity={"a": 1, "b": 1})
        with pytest.raises(PlanningError):
            planner.plan(3)

    def test_plan_kappa_omega(self):
        plan = EntropyPlanner([f"c{i}" for i in range(10)]).plan_kappa_omega(4, 3)
        assert plan.total_replicas == 12
        assert plan.kappa == 4 and plan.omega == 3
        assert is_kappa_omega_optimal(plan.as_abundance(), kappa=4, omega=3)

    def test_plan_kappa_omega_needs_enough_candidates(self):
        with pytest.raises(PlanningError):
            EntropyPlanner(["a", "b"]).plan_kappa_omega(3, 1)

    def test_monoculture_baseline(self):
        plan = EntropyPlanner(["a", "b", "c"]).plan_monoculture(9)
        assert plan.kappa == 1
        assert plan.entropy == 0.0

    def test_proportional_baseline_matches_popularity(self):
        planner = EntropyPlanner(["popular", "rare"])
        plan = planner.plan_proportional(10, {"popular": 0.9, "rare": 0.1})
        counts = dict(plan.counts)
        assert counts["popular"] == 9
        assert counts["rare"] == 1

    def test_proportional_requires_positive_popularity(self):
        with pytest.raises(PlanningError):
            EntropyPlanner(["a"]).plan_proportional(5, {"a": 0.0})

    def test_planner_entropy_dominates_baselines(self):
        labels = [f"c{i}" for i in range(6)]
        planner = EntropyPlanner(labels)
        popularity = {label: 1.0 / (rank + 1) for rank, label in enumerate(labels)}
        assert planner.plan(30).entropy >= planner.plan_proportional(30, popularity).entropy
        assert planner.plan(30).entropy > planner.plan_monoculture(30).entropy

    def test_assignment_list_length(self):
        plan = EntropyPlanner(["a", "b"]).plan(5)
        assert len(plan.assignment_list()) == 5

    def test_duplicate_candidates_rejected(self):
        with pytest.raises(PlanningError):
            EntropyPlanner(["a", "a"])

    def test_from_space(self):
        from repro.core.configuration import default_configuration_space

        planner = EntropyPlanner.from_space(default_configuration_space(), limit=12)
        plan = planner.plan(24)
        assert plan.kappa == 12


class TestDiversityManager:
    def _candidates(self):
        return [
            ReplicaConfiguration.from_names(operating_system=os_name, consensus_client=client)
            for os_name in ("linux", "freebsd", "openbsd")
            for client in ("client-alpha", "client-beta")
        ]

    def test_initial_assignment_is_balanced(self):
        manager = DiversityManager([f"slot-{i}" for i in range(12)], self._candidates())
        deployment = manager.deployment()
        assert deployment.entropy > 2.0
        assert len(deployment.assignment) == 12

    def test_vulnerability_response_migrates_exposed_slots(self):
        manager = DiversityManager([f"slot-{i}" for i in range(12)], self._candidates())
        vulnerability = make_vulnerability(ComponentKind.OPERATING_SYSTEM, "linux")
        migrated = manager.respond_to_vulnerability(vulnerability)
        assert migrated  # some slots ran linux
        catalog = VulnerabilityCatalog([vulnerability])
        assert manager.exposure_fraction(catalog) == 0.0
        assert manager.migrations_performed == len(migrated)

    def test_no_safe_candidate_raises(self):
        only_linux = [
            ReplicaConfiguration.from_names(operating_system="linux", consensus_client="c")
        ]
        manager = DiversityManager(["slot-0"], only_linux)
        with pytest.raises(PlanningError):
            manager.respond_to_vulnerability(
                make_vulnerability(ComponentKind.OPERATING_SYSTEM, "linux")
            )

    def test_population_export(self):
        manager = DiversityManager(["s0", "s1", "s2", "s3"], self._candidates())
        population = manager.population()
        assert len(population) == 4

    def test_duplicate_slots_rejected(self):
        with pytest.raises(PlanningError):
            DiversityManager(["s0", "s0"], self._candidates())


class TestDiversityMonitor:
    def test_healthy_census_raises_no_alerts(self):
        monitor = DiversityMonitor()
        census = ConfigurationDistribution.uniform_labels(16)
        assert monitor.is_healthy(census)

    def test_low_entropy_and_richness_alerts(self):
        monitor = DiversityMonitor()
        census = ConfigurationDistribution({"a": 0.6, "b": 0.4})
        codes = {alert.code for alert in monitor.evaluate(census)}
        assert "low-entropy" in codes
        assert "low-richness" in codes
        assert "single-configuration-violation" in codes

    def test_critical_alert_when_single_share_exceeds_tolerance(self):
        monitor = DiversityMonitor(family=ProtocolFamily.NAKAMOTO)
        census = ConfigurationDistribution({"a": 0.55, "b": 0.25, "c": 0.10, "d": 0.10})
        alerts = monitor.evaluate(census)
        assert any(alert.severity == "critical" for alert in alerts)

    def test_warning_band_below_tolerance(self):
        thresholds = MonitorThresholds(min_entropy_bits=0.0, min_support=1, max_single_share_factor=0.5)
        monitor = DiversityMonitor(thresholds=thresholds)
        census = ConfigurationDistribution({"a": 0.2, "b": 0.2, "c": 0.2, "d": 0.2, "e": 0.2})
        codes = {alert.code for alert in monitor.evaluate(census)}
        assert codes == {"single-configuration-risk"}

    def test_entropy_history_accumulates(self):
        monitor = DiversityMonitor()
        monitor.evaluate(ConfigurationDistribution.uniform_labels(4))
        monitor.evaluate(ConfigurationDistribution.uniform_labels(8))
        assert len(monitor.entropy_history()) == 2

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(AnalysisError):
            MonitorThresholds(min_entropy_bits=-1.0)
        with pytest.raises(AnalysisError):
            MonitorThresholds(min_support=0)


class TestTwoClassPolicy:
    def _population(self) -> ReplicaPopulation:
        replicas = []
        for index in range(4):
            replicas.append(
                Replica(
                    f"attested-{index}",
                    ReplicaConfiguration.labeled(f"a{index}"),
                    power=1.0,
                    attested=True,
                )
            )
        for index in range(6):
            replicas.append(
                Replica(
                    f"plain-{index}",
                    ReplicaConfiguration.labeled(f"p{index}"),
                    power=1.0,
                    attested=False,
                )
            )
        return ReplicaPopulation(replicas)

    def test_equal_weights_reflect_population_split(self):
        census = TwoClassWeightPolicy().apply(self._population())
        assert census.attested_power_fraction == pytest.approx(0.4)
        assert census.unattested_worst_case_fraction == pytest.approx(0.6)

    def test_boosting_attested_weight_shrinks_unknown_mass(self):
        population = self._population()
        equal = TwoClassWeightPolicy(1.0, 1.0).apply(population)
        boosted = TwoClassWeightPolicy(4.0, 1.0).apply(population)
        assert boosted.unattested_worst_case_fraction < equal.unattested_worst_case_fraction
        assert boosted.entropy > equal.entropy

    def test_sweep_ratio_is_monotone(self):
        population = self._population()
        results = TwoClassWeightPolicy().sweep_ratio(population, (1.0, 2.0, 4.0, 8.0))
        fractions = [census.unattested_worst_case_fraction for _, census in results]
        assert fractions == sorted(fractions, reverse=True)

    def test_invalid_weights_rejected(self):
        with pytest.raises(AnalysisError):
            TwoClassWeightPolicy(-1.0, 1.0)
        with pytest.raises(AnalysisError):
            TwoClassWeightPolicy(0.0, 0.0)
        with pytest.raises(AnalysisError):
            TwoClassWeightPolicy().sweep_ratio(self._population(), (0.0,))
