"""Bulk ``/results`` (JSON + NDJSON streaming) and cache-admin plane tests.

The NDJSON test is the write-path acceptance check: the stream of a sweep
must carry exactly the canonical results a sharded orchestrator run merges
into ``RESULTS.json`` — the serving plane and the batch plane are two views
of the same content-addressed bytes.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qs, unquote, urlsplit

import pytest

import repro.serve.service as service_module
from repro.backend import get_backend
from repro.experiments.orchestrator import (
    ResultCache,
    filter_specs,
    merge_results_documents,
    registry,
    results_document,
    run_experiments,
    select_shard,
)
from repro.serve.app import ResultApp
from repro.serve.http import HttpRequest, StreamingHttpResponse
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import ResultService

SWEEP = ["example1", "figure1", "proposition1", "proposition2"]


def _request(method, path, document=None):
    split = urlsplit(path)
    body = b"" if document is None else json.dumps(document).encode("utf-8")
    return HttpRequest(
        method=method,
        target=path,
        path=unquote(split.path),
        query=parse_qs(split.query, keep_blank_values=True),
        version="HTTP/1.1",
        headers={},
        body=body,
    )


def with_app(test_body, tmp_path, **service_kwargs):
    async def _run():
        with ThreadPoolExecutor(max_workers=2) as executor:
            app = ResultApp(
                ResultService(
                    cache=ResultCache(str(tmp_path / "cache")),
                    executor=executor,
                    metrics=ServiceMetrics(),
                    **service_kwargs,
                )
            )
            try:
                return await test_body(app)
            finally:
                await app.close()

    return asyncio.run(_run())


async def _ndjson_lines(response):
    assert isinstance(response, StreamingHttpResponse)
    payload = b""
    async for chunk in response.chunks:
        payload += chunk
    return [json.loads(line) for line in payload.splitlines() if line]


class TestResultsDocument:
    def test_get_with_explicit_experiments(self, tmp_path):
        async def body(app):
            response = await app.handle(
                _request("GET", "/results?experiment=example1&experiment=figure1")
            )
            assert response.status == 200
            document = json.loads(response.body)
            assert sorted(document["results"]) == ["example1", "figure1"]
            assert app.metrics.bulk_results_served == 2

        with_app(body, tmp_path)

    def test_post_document_equals_get_query(self, tmp_path):
        async def body(app):
            via_get = await app.handle(_request("GET", "/results?experiment=example1"))
            via_post = await app.handle(
                _request("POST", "/results", {"experiments": ["example1"]})
            )
            assert via_get.body == via_post.body

        with_app(body, tmp_path)

    def test_tag_selection(self, tmp_path):
        async def body(app):
            tag = registry.known_tags()[0]
            expected = [
                spec.experiment_id
                for spec in registry.all_specs()
                if tag in spec.tags
            ]
            response = await app.handle(_request("GET", f"/results?tag={tag}"))
            document = json.loads(response.body)
            assert sorted(document["results"]) == sorted(expected)

        with_app(body, tmp_path)

    def test_unknown_tag_is_400(self, tmp_path):
        async def body(app):
            response = await app.handle(_request("GET", "/results?tag=nope"))
            assert response.status == 400
            assert "unknown tag" in json.loads(response.body)["error"]["message"]

        with_app(body, tmp_path)

    def test_duplicate_experiments_in_a_document_are_400(self, tmp_path):
        async def body(app):
            response = await app.handle(
                _request(
                    "POST", "/results", {"experiments": ["example1", "example1"]}
                )
            )
            assert response.status == 400
            assert "ndjson" in json.loads(response.body)["error"]["message"]

        with_app(body, tmp_path)

    def test_bad_format_is_400(self, tmp_path):
        async def body(app):
            response = await app.handle(_request("GET", "/results?format=xml"))
            assert response.status == 400

        with_app(body, tmp_path)

    def test_unknown_query_parameter_is_400(self, tmp_path):
        async def body(app):
            response = await app.handle(_request("GET", "/results?bogus=1"))
            assert response.status == 400
            assert "bogus" in json.loads(response.body)["error"]["message"]

        with_app(body, tmp_path)


class TestNdjsonStreaming:
    def test_sharded_sweep_stream_matches_merged_results_json(self, tmp_path):
        """The acceptance check: NDJSON lines == merged shard documents.

        The same sweep is run twice — once through the orchestrator as two
        shards merged into one ``RESULTS.json`` document, once through the
        serving plane as an NDJSON stream — and the result sets must be
        identical, byte-for-value.
        """
        specs = filter_specs(registry.all_specs(), names=SWEEP)
        backend = get_backend().name
        shard_documents = []
        for index in (1, 2):
            shard = select_shard(specs, index, 2)
            results = run_experiments(shard, backend=backend)
            shard_documents.append(
                results_document(results, shard=f"{index}/2", backend=backend)
            )
        merged = merge_results_documents(shard_documents)

        async def body(app):
            response = await app.handle(
                _request(
                    "POST",
                    "/results",
                    {"experiments": SWEEP, "format": "ndjson"},
                )
            )
            assert response.status == 200
            assert dict(response.headers)["X-Result-Count"] == str(len(SWEEP))
            return await _ndjson_lines(response)

        lines = with_app(body, tmp_path)
        assert [line["experiment_id"] for line in lines] == SWEEP
        streamed = {line["experiment_id"]: line["result"] for line in lines}
        assert streamed == merged["results"]

    def test_stream_is_in_memory_after_warmup(self, tmp_path):
        async def body(app):
            first = await app.handle(
                _request("GET", "/results?experiment=example1&format=ndjson")
            )
            # The stream is lazy: the build happens while chunks are drained.
            await _ndjson_lines(first)
            builds_after_first = app.metrics.builds
            response = await app.handle(
                _request("GET", "/results?experiment=example1&format=ndjson")
            )
            lines = await _ndjson_lines(response)
            assert len(lines) == 1
            assert app.metrics.builds == builds_after_first  # pure cache hit

        with_app(body, tmp_path)

    def test_mid_stream_failure_emits_a_terminal_error_line(
        self, tmp_path, monkeypatch
    ):
        real_execute = service_module._pool_execute
        calls = []

        def _second_fails(experiment_id, params_doc, backend):
            calls.append(experiment_id)
            if len(calls) > 1:
                raise RuntimeError("injected build failure")
            return real_execute(experiment_id, params_doc, backend)

        monkeypatch.setattr(service_module, "_pool_execute", _second_fails)

        async def body(app):
            response = await app.handle(
                _request(
                    "GET",
                    "/results?experiment=example1&experiment=figure1&format=ndjson",
                )
            )
            return await _ndjson_lines(response)

        lines = with_app(body, tmp_path)
        assert lines[0]["experiment_id"] == "example1"
        assert lines[1]["error"]["status"] == 500
        assert len(lines) == 2  # the stream stops at the error line


class TestCacheAdmin:
    def test_stats_counts_entries_over_http(self, tmp_path):
        async def body(app):
            empty = json.loads((await app.handle(_request("GET", "/cache/stats"))).body)
            assert empty["entries"] == 0
            await app.handle(_request("GET", "/experiments/example1"))
            warm = json.loads((await app.handle(_request("GET", "/cache/stats"))).body)
            assert warm["entries"] == 1
            assert warm["directory"] == app.service.cache.directory
            assert app.metrics.cache_admin_ops == 2

        with_app(body, tmp_path)

    def test_warm_then_prune_cycle(self, tmp_path):
        async def body(app):
            first = json.loads(
                (
                    await app.handle(
                        _request("POST", "/cache/warm", {"experiments": SWEEP})
                    )
                ).body
            )
            assert first["counts"] == {"hit": 0, "miss": len(SWEEP)}
            second = json.loads(
                (
                    await app.handle(
                        _request("POST", "/cache/warm", {"experiments": SWEEP})
                    )
                ).body
            )
            assert second["counts"] == {"hit": len(SWEEP), "miss": 0}
            assert {entry["cache"] for entry in second["results"]} == {"hit"}
            pruned = json.loads(
                (await app.handle(_request("POST", "/cache/prune"))).body
            )
            # Everything is live (same fingerprint), so prune keeps it all.
            assert pruned["removed_entries"] == 0
            assert pruned["kept_entries"] == len(SWEEP)

        with_app(body, tmp_path)

    def test_invalidate_one_key_forces_a_rebuild(self, tmp_path):
        async def body(app):
            first = await app.handle(_request("GET", "/experiments/example1"))
            key = dict(first.headers)["ETag"].strip('"')
            builds = app.metrics.builds
            removed = json.loads(
                (
                    await app.handle(
                        _request("POST", "/cache/invalidate", {"key": key})
                    )
                ).body
            )
            assert removed == {"action": "invalidate", "key": key, "removed": True}
            # A second invalidate of the already-deleted key finds nothing.
            missing = json.loads(
                (
                    await app.handle(
                        _request("POST", "/cache/invalidate", {"key": key})
                    )
                ).body
            )
            assert missing["removed"] is False
            again = await app.handle(_request("GET", "/experiments/example1"))
            assert dict(again.headers)["X-Cache"] == "miss"
            assert app.metrics.builds == builds + 1
            assert again.body == first.body  # deterministic rebuild

        with_app(body, tmp_path)

    def test_invalidate_without_key_uses_the_refresh_hook(self, tmp_path):
        calls = []

        async def body(app):
            async def fake_refresh():
                calls.append(True)
                return True

            app._refresh = fake_refresh
            await app.handle(_request("GET", "/experiments/example1"))
            assert len(app._body_cache) == 1
            response = json.loads(
                (await app.handle(_request("POST", "/cache/invalidate", {}))).body
            )
            assert response == {"action": "invalidate", "fingerprint_changed": True}
            assert calls == [True]
            # A fingerprint change makes every retained body unreachable.
            assert len(app._body_cache) == 0

        with_app(body, tmp_path)

    def test_admin_documents_reject_unknown_fields(self, tmp_path):
        async def body(app):
            for path, document in (
                ("/cache/invalidate", {"keys": []}),
                ("/cache/warm", {"experiment": "example1"}),
            ):
                response = await app.handle(_request("POST", path, document))
                assert response.status == 400, path

        with_app(body, tmp_path)
