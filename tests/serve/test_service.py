"""Tests for the transport-free result service core.

Uses a thread pool instead of a process pool — ``_pool_execute`` is
executor-agnostic and threads keep these unit tests fast; the real process
pool is exercised end-to-end in ``test_server.py``.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.backend import get_backend
from repro.core.exceptions import ServeError
from repro.experiments.orchestrator import ResultCache, execute_spec
from repro.experiments.orchestrator import registry
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import ResultService


@pytest.fixture
def service(tmp_path):
    with ThreadPoolExecutor(max_workers=2) as executor:
        yield ResultService(
            cache=ResultCache(str(tmp_path / "cache")),
            executor=executor,
            metrics=ServiceMetrics(),
        )


class TestDescribeExperiments:
    def test_lists_every_registered_experiment(self, service):
        document = service.describe_experiments()
        ids = [entry["id"] for entry in document["experiments"]]
        assert ids == registry.experiment_ids()
        assert document["tags"] == registry.known_tags()

    def test_params_schema_carries_names_types_defaults(self, service):
        document = service.describe_experiments()
        by_id = {entry["id"]: entry for entry in document["experiments"]}
        figure1_params = {param["name"]: param for param in by_id["figure1"]["params"]}
        assert figure1_params["max_residual_miners"]["type"] == "int"
        assert figure1_params["max_residual_miners"]["default"] == 1000
        assert by_id["safety_violation"]["backend_sensitive"] is True

    def test_listing_is_json_safe(self, service):
        import json

        json.dumps(service.describe_experiments())


class TestPrepare:
    def test_unknown_experiment_is_404(self, service):
        with pytest.raises(ServeError) as excinfo:
            service.prepare("does-not-exist", {})
        assert excinfo.value.status == 404

    def test_default_key_matches_the_orchestrator_cache_key(self, service):
        spec = registry.get_spec("figure1")
        prepared = service.prepare("figure1", {})
        expected = service.cache.key_for(
            spec, spec.params_dict(), get_backend().name
        )
        assert prepared.key == expected

    def test_param_overrides_change_the_key(self, service):
        default = service.prepare("figure1", {})
        tweaked = service.prepare("figure1", {"max_residual_miners": ["10"]})
        assert tweaked.key != default.key
        assert tweaked.params_doc["max_residual_miners"] == 10

    def test_unknown_param_is_400(self, service):
        with pytest.raises(ServeError) as excinfo:
            service.prepare("figure1", {"bogus": ["1"]})
        assert excinfo.value.status == 400
        assert "bogus" in str(excinfo.value)

    def test_non_integer_value_is_400(self, service):
        with pytest.raises(ServeError) as excinfo:
            service.prepare("figure1", {"max_residual_miners": ["ten"]})
        assert excinfo.value.status == 400

    def test_repeated_param_is_400(self, service):
        with pytest.raises(ServeError) as excinfo:
            service.prepare("figure1", {"max_residual_miners": ["1", "2"]})
        assert excinfo.value.status == 400

    def test_float_param_coercion(self, service):
        prepared = service.prepare(
            "safety_violation", {"vulnerability_probability": ["0.5"]}
        )
        assert prepared.params_doc["vulnerability_probability"] == 0.5

    def test_non_finite_float_is_400(self, service):
        with pytest.raises(ServeError) as excinfo:
            service.prepare("safety_violation", {"vulnerability_probability": ["nan"]})
        assert excinfo.value.status == 400

    def test_params_on_parameterless_experiment_is_400(self, service):
        parameterless = [
            spec.experiment_id
            for spec in registry.all_specs()
            if spec.params_type is None
        ]
        if not parameterless:
            pytest.skip("every experiment takes parameters")
        with pytest.raises(ServeError) as excinfo:
            service.prepare(parameterless[0], {"x": ["1"]})
        assert excinfo.value.status == 400

    def test_unknown_backend_is_400(self, service):
        with pytest.raises(ServeError) as excinfo:
            service.prepare("figure1", {"backend": ["cuda"]})
        assert excinfo.value.status == 400

    def test_explicit_backend_is_resolved(self, service):
        prepared = service.prepare("safety_violation", {"backend": ["python"]})
        assert prepared.backend == "python"


class TestFetch:
    def test_miss_then_hit(self, service):
        async def _run():
            prepared = service.prepare("example1", {})
            first, first_state = await service.fetch(prepared)
            second, second_state = await service.fetch(prepared)
            return first, first_state, second, second_state

        first, first_state, second, second_state = asyncio.run(_run())
        assert (first_state, second_state) == ("miss", "hit")
        assert first.canonical_json() == second.canonical_json()
        assert service.metrics.builds == 1
        assert service.metrics.cache_hits == 1
        assert service.metrics.cache_misses == 1

    def test_result_matches_direct_execution(self, service):
        async def _run():
            prepared = service.prepare("example1", {})
            result, _ = await service.fetch(prepared)
            return result

        served = asyncio.run(_run())
        direct = execute_spec(registry.get_spec("example1"))
        assert served.canonical_json() == direct.canonical_json()

    def test_fifty_concurrent_identical_requests_build_once(self, service):
        async def _run():
            prepared = service.prepare("example1", {})
            results = await asyncio.gather(
                *(service.fetch(prepared) for _ in range(50))
            )
            return results

        results = asyncio.run(_run())
        assert len(results) == 50
        canonical = {result.canonical_json() for result, _ in results}
        assert len(canonical) == 1
        assert service.metrics.builds == 1
        assert service.metrics.single_flight_joined == 49

    def test_distinct_params_are_not_coalesced(self, service):
        async def _run():
            first = service.prepare("example1", {})
            second = service.prepare("example1", {"max_residual_miners": ["10"]})
            return await asyncio.gather(service.fetch(first), service.fetch(second))

        (result_a, _), (result_b, _) = asyncio.run(_run())
        assert service.metrics.builds == 2
        assert result_a.canonical_json() != result_b.canonical_json()

    def test_build_straddling_a_refresh_is_stored_under_the_new_key(self, service):
        from repro.experiments.orchestrator.cache import (
            invalidate_code_fingerprint,
            set_code_fingerprint,
        )

        async def _run():
            prepared = service.prepare("example1", {})
            # A source-edit refresh lands between prepare() and the build:
            # the new fingerprint keys the code the executor now runs.
            set_code_fingerprint("0" * 64)
            result, state = await service.fetch(prepared)
            return prepared, result, state

        try:
            prepared, result, state = asyncio.run(_run())
        finally:
            invalidate_code_fingerprint()
        assert state == "miss"
        # Nothing may be stored under the stale pre-refresh key...
        assert service.cache.load(prepared.key) is None
        # ...the entry lives under the key the post-refresh world derives.
        rekeyed = service.cache.key_for(
            prepared.spec,
            prepared.params_doc,
            prepared.backend,
            fingerprint="0" * 64,
        )
        assert service.cache.load(rekeyed) is not None

    def test_waiter_cancellation_does_not_kill_the_build(self, service):
        async def _run():
            prepared = service.prepare("example1", {})
            task = asyncio.ensure_future(service.fetch(prepared))
            await asyncio.sleep(0)  # let the fetch register its build
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # The shielded build completes and lands in the cache.
            result, state = await service.fetch(prepared)
            return result, state

        result, state = asyncio.run(_run())
        assert result.experiment_id == "example1"
        assert service.metrics.builds == 1
