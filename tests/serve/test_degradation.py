"""Graceful-degradation tests: circuit breaker, build deadlines, single-flight.

The breaker walks its closed → open → half-open → closed cycle against an
injectable fake clock (no sleeping), and the service-level tests show the
full degradation story: repeated build failures turn into fast 503s with a
``Retry-After`` hint, ``/healthz`` reports ``degraded``, and one successful
probe restores normal service without a restart.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.serve.service as service_module
from repro.core.exceptions import ServeError
from repro.experiments.orchestrator import ResultCache
from repro.serve.app import ResultApp
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.http import HttpRequest
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import ResultService


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == CLOSED
            assert breaker.allow_build()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow_build()
        assert breaker.times_opened == 1

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two *consecutive* failures

    def test_retry_after_counts_down_with_the_clock(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=30.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(30.0)
        clock.advance(12.0)
        assert breaker.retry_after() == pytest.approx(18.0)
        assert breaker.retry_after_header() == "18"

    def test_retry_after_header_is_at_least_one_second(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(4.99)
        assert breaker.retry_after_header() == "1"

    def test_half_open_allows_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow_build()  # the probe
        assert not breaker.allow_build()  # everyone else keeps waiting

    def test_probe_success_closes_without_a_restart(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow_build()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow_build()
        assert breaker.retry_after() == 0.0

    def test_probe_failure_reopens_for_another_full_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=10.0, clock=clock
        )
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow_build()
        breaker.record_failure()  # one failed probe re-trips immediately
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(10.0)
        assert breaker.times_opened == 2

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=7.0)
        snapshot = breaker.snapshot()
        assert snapshot["state"] == CLOSED
        assert snapshot["failure_threshold"] == 2
        assert snapshot["reset_timeout_seconds"] == 7.0
        assert snapshot["times_opened"] == 0


def _make_service(tmp_path, executor, **kwargs):
    return ResultService(
        cache=ResultCache(str(tmp_path / "cache")),
        executor=executor,
        metrics=ServiceMetrics(),
        **kwargs,
    )


def _boom(experiment_id, params_doc, backend):
    raise RuntimeError("injected build failure")


def _get(path):
    return HttpRequest(
        method="GET", target=path, path=path, query={}, version="HTTP/1.1", headers={}
    )


class TestServiceDegradation:
    def test_breaker_opens_then_503_with_retry_after(self, tmp_path, monkeypatch):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=30.0, clock=clock
        )
        monkeypatch.setattr(service_module, "_pool_execute", _boom)

        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                service = _make_service(tmp_path, executor, breaker=breaker)
                prepared = service.prepare("example1", {})
                for _ in range(2):
                    with pytest.raises(RuntimeError):
                        await service.fetch(prepared)
                assert service.health() == {"status": "degraded", "breaker": "open"}
                with pytest.raises(ServeError) as excinfo:
                    await service.fetch(prepared)
                return service, excinfo.value

        service, error = asyncio.run(scenario())
        assert error.status == 503
        assert dict(error.headers)["Retry-After"] == "30"
        assert service.metrics.build_failures == 2
        assert service.metrics.builds_rejected == 1
        # The rejection is not itself a build failure.
        assert service.metrics.builds == 2

    def test_probe_recovers_service_without_restart(self, tmp_path, monkeypatch):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=30.0, clock=clock
        )
        monkeypatch.setattr(service_module, "_pool_execute", _boom)

        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                service = _make_service(tmp_path, executor, breaker=breaker)
                prepared = service.prepare("example1", {})
                with pytest.raises(RuntimeError):
                    await service.fetch(prepared)
                with pytest.raises(ServeError):
                    await service.fetch(prepared)  # open: rejected fast
                # The fault clears and the reset window elapses.
                monkeypatch.setattr(
                    service_module, "_pool_execute", service_module._pool_execute
                )
                monkeypatch.undo()
                clock.advance(30.0)
                assert service.health()["breaker"] == "half-open"
                result, state = await service.fetch(prepared)  # the probe
                assert state == "miss"
                assert service.health() == {"status": "ok", "breaker": "closed"}
                # Later identical requests are plain cache hits.
                _, second_state = await service.fetch(prepared)
                assert second_state == "hit"
                return service

        service = asyncio.run(scenario())
        assert service.breaker.times_opened == 1

    def test_build_deadline_answers_504_and_counts_a_failure(
        self, tmp_path, monkeypatch
    ):
        release = threading.Event()

        def _slow(experiment_id, params_doc, backend):
            release.wait(30.0)
            raise AssertionError("the deadline should have fired first")

        monkeypatch.setattr(service_module, "_pool_execute", _slow)

        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                service = _make_service(tmp_path, executor, build_deadline=0.05)
                prepared = service.prepare("example1", {})
                with pytest.raises(ServeError) as excinfo:
                    await service.fetch(prepared)
                release.set()
                return service, excinfo.value

        service, error = asyncio.run(scenario())
        assert error.status == 504
        assert "deadline" in str(error)
        assert service.metrics.build_timeouts == 1
        assert service.metrics.build_failures == 1  # the breaker counts 504s

    def test_single_flight_failure_releases_every_waiter_and_the_gate(
        self, tmp_path, monkeypatch
    ):
        started = threading.Event()
        release = threading.Event()

        def _blocking_boom(experiment_id, params_doc, backend):
            started.set()
            release.wait(30.0)
            raise RuntimeError("late failure")

        monkeypatch.setattr(service_module, "_pool_execute", _blocking_boom)

        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                service = _make_service(
                    tmp_path,
                    executor,
                    breaker=CircuitBreaker(failure_threshold=100),
                )
                prepared = service.prepare("example1", {})
                waiters = [
                    asyncio.ensure_future(service.fetch(prepared)) for _ in range(3)
                ]
                await asyncio.to_thread(started.wait, 30.0)
                await asyncio.sleep(0.05)  # let every waiter join the flight
                release.set()
                outcomes = await asyncio.gather(*waiters, return_exceptions=True)
                # Every waiter got the one failure...
                assert all(isinstance(o, RuntimeError) for o in outcomes)
                # ...and the gate is already clear for the next request.
                assert service._inflight == {}
                assert service.metrics.single_flight_joined == 2
                monkeypatch.undo()
                result, state = await service.fetch(prepared)
                assert state == "miss"
                return result

        result = asyncio.run(scenario())
        assert result.experiment_id == "example1"


class TestAppDegradation:
    def test_healthz_and_503_surface_through_the_app(self, tmp_path, monkeypatch):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=30.0, clock=clock
        )
        monkeypatch.setattr(service_module, "_pool_execute", _boom)

        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                service = _make_service(tmp_path, executor, breaker=breaker)
                app = ResultApp(service)
                healthy = await app.handle(_get("/healthz"))
                first = await app.handle(_get("/experiments/example1"))
                rejected = await app.handle(_get("/experiments/example1"))
                degraded = await app.handle(_get("/healthz"))
                return healthy, first, rejected, degraded

        healthy, first, rejected, degraded = asyncio.run(scenario())
        assert healthy.status == 200
        assert b'"status": "ok"' in healthy.body
        assert first.status == 500  # the failing build itself
        assert rejected.status == 503
        assert dict(rejected.headers)["Retry-After"] == "30"
        assert b"temporarily disabled" in rejected.body
        # Liveness stays 200; the body carries the degradation.
        assert degraded.status == 200
        assert b'"status": "degraded"' in degraded.body
        assert b'"breaker": "open"' in degraded.body
