"""Write-path tests: the job store and the ``/jobs`` plane of the app.

The app tests drive :meth:`ResultApp.handle` directly with hand-built
:class:`HttpRequest` objects over a thread-pool service (the same pattern as
``test_degradation.py``); the real process pool and real sockets are covered
end-to-end in ``test_server.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from urllib.parse import parse_qs, unquote, urlsplit

import pytest

import repro.serve.service as service_module
from repro.experiments.orchestrator import ResultCache
from repro.serve.app import MAX_JOB_TASKS, ResultApp
from repro.serve.breaker import CircuitBreaker
from repro.serve.http import HttpRequest
from repro.serve.jobs import JobStore, JobTask
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import ResultService

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _request(method, path, document=None, headers=None):
    split = urlsplit(path)
    body = b"" if document is None else json.dumps(document).encode("utf-8")
    return HttpRequest(
        method=method,
        target=path,
        path=unquote(split.path),
        query=parse_qs(split.query, keep_blank_values=True),
        version="HTTP/1.1",
        headers={name.lower(): value for name, value in (headers or {}).items()},
        body=body,
    )


def _make_app(tmp_path, executor, **kwargs):
    service = ResultService(
        cache=ResultCache(str(tmp_path / "cache")),
        executor=executor,
        metrics=ServiceMetrics(),
        **kwargs,
    )
    return ResultApp(service)


def with_app(test_body, tmp_path, **service_kwargs):
    async def _run():
        with ThreadPoolExecutor(max_workers=2) as executor:
            app = _make_app(tmp_path, executor, **service_kwargs)
            try:
                return await test_body(app)
            finally:
                await app.close()

    return asyncio.run(_run())


async def _poll_until_finished(app, job_id, attempts=2000):
    for _ in range(attempts):
        response = await app.handle(_request("GET", f"/jobs/{job_id}"))
        assert response.status == 200
        snapshot = json.loads(response.body)
        if snapshot["status"] in ("done", "failed"):
            return snapshot
        await asyncio.sleep(0.005)
    raise AssertionError(f"job {job_id} never finished")


class TestJobStore:
    def _task(self, app):
        prepared = app.service.prepare("example1", {})
        return JobTask(prepared=prepared)

    def test_ids_are_sequential(self, tmp_path):
        async def body(app):
            store = JobStore()
            first = store.create([self._task(app)])
            second = store.create([self._task(app)])
            assert (first.job_id, second.job_id) == ("j000001", "j000002")
            assert store.get("j000001") is first
            assert store.get("nope") is None

        with_app(body, tmp_path)

    def test_history_limit_validation(self):
        with pytest.raises(ValueError):
            JobStore(history_limit=0)

    def test_eviction_drops_oldest_finished_only(self, tmp_path):
        async def body(app):
            store = JobStore(history_limit=2, clock=FakeClock())
            active = store.create([self._task(app)])
            store.mark_running(active)
            finished = []
            for _ in range(3):
                job = store.create([self._task(app)])
                store.mark_done(job)
                finished.append(job)
            # The running job survives even though it is the oldest; the
            # oldest *finished* jobs go first.
            assert store.get(active.job_id) is active
            assert store.get(finished[0].job_id) is None
            assert store.get(finished[-1].job_id) is finished[-1]
            assert store.counts()["evicted"] == 2
            assert store.counts()["retained"] == 2

        with_app(body, tmp_path)

    def test_all_active_jobs_may_exceed_the_limit(self, tmp_path):
        async def body(app):
            store = JobStore(history_limit=1, clock=FakeClock())
            jobs = [store.create([self._task(app)]) for _ in range(3)]
            for job in jobs:
                store.mark_running(job)
            assert store.counts()["retained"] == 3
            assert store.counts()["evicted"] == 0

        with_app(body, tmp_path)

    def test_counts_shape(self, tmp_path):
        async def body(app):
            store = JobStore(history_limit=8, clock=FakeClock())
            done = store.create([self._task(app)])
            store.mark_done(done)
            failed = store.create([self._task(app)])
            store.mark_failed(failed, "boom")
            store.create([self._task(app)])
            assert store.counts() == {
                "retained": 3,
                "history_limit": 8,
                "evicted": 0,
                "queued": 1,
                "running": 0,
                "done": 1,
                "failed": 1,
            }
            assert failed.error == "boom"
            assert failed.snapshot()["status"] == "failed"

        with_app(body, tmp_path)


class TestJobSubmission:
    def test_submit_poll_result_round_trip_matches_golden(self, tmp_path):
        """POST → 202 → poll → result bytes identical to the golden file."""

        async def body(app):
            submit = await app.handle(
                _request(
                    "POST",
                    "/jobs",
                    {"experiment": "safety_violation", "backend": "python"},
                )
            )
            assert submit.status == 202
            accepted = json.loads(submit.body)
            assert accepted["status"] in ("queued", "running", "done")
            assert dict(submit.headers)["Location"] == accepted["path"]
            snapshot = await _poll_until_finished(app, accepted["id"])
            assert snapshot["status"] == "done"
            assert snapshot["tasks_done"] == snapshot["tasks_total"] == 1
            assert snapshot["tasks"][0]["cache"] == "miss"
            result = await app.handle(
                _request("GET", accepted["result_path"])
            )
            return result

        result = with_app(body, tmp_path)
        assert result.status == 200
        golden = (GOLDEN_DIR / "safety_violation.python.json").read_bytes()
        assert result.body == golden

    def test_wait_submission_returns_the_finished_snapshot(self, tmp_path):
        async def body(app):
            response = await app.handle(
                _request("POST", "/jobs", {"experiment": "example1", "wait": True})
            )
            assert response.status == 200
            snapshot = json.loads(response.body)
            assert snapshot["status"] == "done"
            assert app.metrics.jobs_submitted == 1
            assert app.metrics.jobs_completed == 1
            index = await app.handle(_request("GET", "/jobs"))
            listing = json.loads(index.body)
            assert listing["counts"]["done"] == 1
            assert listing["jobs"][0]["id"] == snapshot["id"]

        with_app(body, tmp_path)

    def test_duplicate_submits_coalesce_through_single_flight(self, tmp_path):
        """N identical submissions cost exactly one build."""

        async def body(app):
            responses = await asyncio.gather(
                *(
                    app.handle(
                        _request(
                            "POST", "/jobs", {"experiment": "example1", "wait": True}
                        )
                    )
                    for _ in range(5)
                )
            )
            assert [r.status for r in responses] == [200] * 5
            assert all(
                json.loads(r.body)["status"] == "done" for r in responses
            )
            assert app.metrics.jobs_submitted == 5
            assert app.metrics.jobs_completed == 5
            return app.metrics

        metrics = with_app(body, tmp_path)
        assert metrics.builds == 1
        assert metrics.single_flight_joined >= 1

    def test_breaker_open_submission_is_503_with_retry_after(
        self, tmp_path, monkeypatch
    ):
        def _boom(experiment_id, params_doc, backend):
            raise RuntimeError("injected build failure")

        monkeypatch.setattr(service_module, "_pool_execute", _boom)
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=30.0, clock=clock)

        async def body(app):
            first = await app.handle(
                _request("POST", "/jobs", {"experiment": "example1", "wait": True})
            )
            assert first.status == 200
            assert json.loads(first.body)["status"] == "failed"
            assert app.metrics.jobs_failed == 1
            # The breaker is open now: submissions are refused at the door.
            second = await app.handle(
                _request("POST", "/jobs", {"experiment": "example1"})
            )
            assert second.status == 503
            assert dict(second.headers)["Retry-After"] == "30"
            assert "breaker" in json.loads(second.body)["error"]["message"]
            assert app.metrics.jobs_submitted == 1  # the rejected one never counted
            # Reads still serve: /healthz reports the degradation honestly.
            health = await app.handle(_request("GET", "/healthz"))
            assert json.loads(health.body)["breaker"] == "open"

        with_app(body, tmp_path, breaker=breaker)

    def test_failed_job_records_the_task_error(self, tmp_path, monkeypatch):
        def _boom(experiment_id, params_doc, backend):
            raise RuntimeError("injected build failure")

        monkeypatch.setattr(service_module, "_pool_execute", _boom)

        async def body(app):
            response = await app.handle(
                _request("POST", "/jobs", {"experiment": "example1", "wait": True})
            )
            snapshot = json.loads(response.body)
            assert snapshot["status"] == "failed"
            assert "injected build failure" in snapshot["error"]
            assert snapshot["tasks"][0]["status"] == "failed"
            result = await app.handle(
                _request("GET", f"/jobs/{snapshot['id']}/result")
            )
            assert result.status == 500
            assert "failed" in json.loads(result.body)["error"]["message"]

        with_app(body, tmp_path)

    def test_result_of_unfinished_job_is_409(self, tmp_path, monkeypatch):
        release = threading.Event()
        real_execute = service_module._pool_execute

        def _slow(experiment_id, params_doc, backend):
            release.wait(30.0)
            return real_execute(experiment_id, params_doc, backend)

        monkeypatch.setattr(service_module, "_pool_execute", _slow)

        async def body(app):
            submit = await app.handle(
                _request("POST", "/jobs", {"experiment": "example1"})
            )
            job_id = json.loads(submit.body)["id"]
            early = await app.handle(_request("GET", f"/jobs/{job_id}/result"))
            assert early.status == 409
            release.set()
            snapshot = await _poll_until_finished(app, job_id)
            assert snapshot["status"] == "done"
            late = await app.handle(_request("GET", f"/jobs/{job_id}/result"))
            assert late.status == 200

        with_app(body, tmp_path)

    def test_unknown_job_is_404(self, tmp_path):
        async def body(app):
            response = await app.handle(_request("GET", "/jobs/j999999"))
            assert response.status == 404
            result = await app.handle(_request("GET", "/jobs/j999999/result"))
            assert result.status == 404

        with_app(body, tmp_path)


class TestGridSubmission:
    def test_grid_expands_to_one_task_per_point(self, tmp_path):
        async def body(app):
            response = await app.handle(
                _request(
                    "POST",
                    "/jobs",
                    {
                        "experiment": "figure1",
                        "grid": {"max_residual_miners": [10, 20, 30]},
                        "wait": True,
                    },
                )
            )
            snapshot = json.loads(response.body)
            assert snapshot["status"] == "done"
            assert snapshot["tasks_total"] == 3
            params = [task["params"]["max_residual_miners"] for task in snapshot["tasks"]]
            assert params == [10, 20, 30]
            keys = {task["key"] for task in snapshot["tasks"]}
            assert len(keys) == 3
            result = await app.handle(
                _request("GET", f"/jobs/{snapshot['id']}/result")
            )
            document = json.loads(result.body)
            assert document["job"] == snapshot["id"]
            assert len(document["results"]) == 3

        with_app(body, tmp_path)

    def test_grid_axis_overlapping_params_is_400(self, tmp_path):
        async def body(app):
            response = await app.handle(
                _request(
                    "POST",
                    "/jobs",
                    {
                        "experiment": "figure1",
                        "params": {"max_residual_miners": 10},
                        "grid": {"max_residual_miners": [10, 20]},
                    },
                )
            )
            assert response.status == 400
            assert "overlap" in json.loads(response.body)["error"]["message"]

        with_app(body, tmp_path)

    def test_grid_over_the_task_limit_is_400(self, tmp_path):
        async def body(app):
            response = await app.handle(
                _request(
                    "POST",
                    "/jobs",
                    {
                        "experiment": "figure1",
                        "grid": {
                            "max_residual_miners": list(range(MAX_JOB_TASKS + 1))
                        },
                    },
                )
            )
            assert response.status == 400
            assert app.metrics.jobs_submitted == 0

        with_app(body, tmp_path)


class TestSubmissionValidation:
    @pytest.mark.parametrize(
        "document, fragment",
        [
            ({}, "'experiment' or 'experiments'"),
            ({"experiment": "example1", "bogus": 1}, "bogus"),
            ({"experiment": 7}, "experiment id string"),
            ({"experiment": "example1", "wait": "yes"}, "'wait'"),
            ({"experiments": "example1"}, "must be a list"),
            ({"experiments": []}, "at least one task"),
            ({"experiments": [7]}, "experiments[0]"),
            (
                {"experiments": ["example1"], "grid": {"x": [1]}},
                "'experiments' cannot be combined",
            ),
            ({"experiment": "example1", "grid": {}}, "'grid'"),
            (
                {"experiment": "figure1", "grid": {"max_residual_miners": []}},
                "non-empty list",
            ),
        ],
    )
    def test_invalid_documents_are_400(self, tmp_path, document, fragment):
        async def body(app):
            response = await app.handle(_request("POST", "/jobs", document))
            assert response.status == 400, response.body
            assert fragment in json.loads(response.body)["error"]["message"]

        with_app(body, tmp_path)

    def test_unknown_experiment_is_404(self, tmp_path):
        async def body(app):
            response = await app.handle(
                _request("POST", "/jobs", {"experiment": "does-not-exist"})
            )
            assert response.status == 404

        with_app(body, tmp_path)

    def test_json_typed_params_are_strict(self, tmp_path):
        async def body(app):
            # JSON documents carry real types; "10" for an int param is a
            # client bug, unlike in query strings where everything is text.
            response = await app.handle(
                _request(
                    "POST",
                    "/jobs",
                    {
                        "experiment": "figure1",
                        "params": {"max_residual_miners": "10"},
                    },
                )
            )
            assert response.status == 400

        with_app(body, tmp_path)

    def test_non_object_body_is_400(self, tmp_path):
        async def body(app):
            response = await app.handle(_request("POST", "/jobs", [1, 2]))
            assert response.status == 400
            garbage = _request("POST", "/jobs")
            garbage = HttpRequest(
                method="POST",
                target="/jobs",
                path="/jobs",
                query={},
                version="HTTP/1.1",
                headers={},
                body=b"not json",
            )
            response = await app.handle(garbage)
            assert response.status == 400

        with_app(body, tmp_path)
