"""End-to-end tests: real sockets, real process pool, real HTTP bytes.

Each test drives a :class:`ResultServer` on an ephemeral port through the
bench client.  The heavyweight checks (golden equality for every
experiment, 50-way single-flight) share one server per test so the process
pool is paid for once.
"""

from __future__ import annotations

import asyncio
import json
import math
from pathlib import Path

import pytest

from repro.backend import get_backend
from repro.experiments.orchestrator import registry
from repro.serve import BenchClient, ServiceMetrics
from repro.serve.server import ResultServer

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: Float tolerances matching the golden regression suite
#: (tests/experiments/test_golden.py): experiments marked
#: backend-insensitive still jitter by ~1 ulp across backends, and the
#: golden files were generated under one ambient backend.
REL_TOL = 1e-9
ABS_TOL = 1e-12


def assert_close(expected, actual, path="$"):
    """Recursive equality with the golden suite's float tolerance."""
    if isinstance(expected, bool) or isinstance(actual, bool):
        assert type(expected) is type(actual) and expected == actual, path
    elif isinstance(expected, float) or isinstance(actual, float):
        assert isinstance(expected, (int, float)) and isinstance(actual, (int, float)), path
        assert math.isclose(expected, actual, rel_tol=REL_TOL, abs_tol=ABS_TOL), (
            f"{path}: {expected!r} != {actual!r}"
        )
    elif isinstance(expected, dict):
        assert isinstance(actual, dict) and expected.keys() == actual.keys(), path
        for key in expected:
            assert_close(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(expected) == len(actual), path
        for index, (left, right) in enumerate(zip(expected, actual)):
            assert_close(left, right, f"{path}[{index}]")
    else:
        assert expected == actual, f"{path}: {expected!r} != {actual!r}"


def with_server(test_body, *, jobs=2, **server_kwargs):
    """Run ``await test_body(server, client)`` against a fresh server."""

    async def _run():
        server = ResultServer(
            host="127.0.0.1",
            port=0,
            jobs=jobs,
            refresh_interval=0.0,
            metrics=ServiceMetrics(),
            **server_kwargs,
        )
        await server.start()
        try:
            async with BenchClient("127.0.0.1", server.port) as client:
                return await test_body(server, client)
        finally:
            await server.stop()

    return asyncio.run(_run())


class TestRoutes:
    def test_healthz(self):
        async def body(server, client):
            return await client.get("/healthz")

        response = with_server(body)
        assert response.status == 200
        assert json.loads(response.body) == {"status": "ok", "breaker": "closed"}

    def test_experiments_listing(self):
        async def body(server, client):
            return await client.get("/experiments")

        response = with_server(body)
        assert response.status == 200
        document = json.loads(response.body)
        assert [e["id"] for e in document["experiments"]] == registry.experiment_ids()

    def test_metrics_counts_requests(self):
        async def body(server, client):
            await client.get("/healthz")
            return await client.get("/metrics")

        response = with_server(body)
        snapshot = json.loads(response.body)
        assert snapshot["requests_total"] == 2
        assert snapshot["responses_by_status"]["200"] == 1  # /metrics not yet counted

    def test_unknown_route_is_404(self):
        async def body(server, client):
            return await client.get("/nope")

        response = with_server(body)
        assert response.status == 404
        assert json.loads(response.body)["error"]["status"] == 404

    def test_unknown_experiment_is_404(self):
        async def body(server, client):
            return await client.get("/experiments/does-not-exist")

        assert with_server(body).status == 404

    def test_bad_param_is_400(self):
        async def body(server, client):
            return await client.get("/experiments/figure1?bogus=1")

        response = with_server(body)
        assert response.status == 400
        assert "bogus" in json.loads(response.body)["error"]["message"]

    def test_post_is_405(self):
        async def body(server, client):
            writer = client._writer
            writer.write(b"POST /healthz HTTP/1.1\r\n\r\n")
            await writer.drain()
            status_line = (await client._reader.readline()).decode()
            # Drain the rest of the response off the shared connection.
            while (await client._reader.readline()).strip():
                pass
            return status_line

        status_line = with_server(body)
        assert " 405 " in status_line

    def test_malformed_request_is_answered_and_closed(self):
        async def body(server, client):
            writer = client._writer
            writer.write(b"garbage\r\n\r\n")
            await writer.drain()
            status_line = (await client._reader.readline()).decode()
            return status_line

        assert " 400 " in with_server(body)


class TestResultServing:
    def test_miss_then_hit_with_stable_etag(self):
        async def body(server, client):
            first = await client.get("/experiments/example1")
            second = await client.get("/experiments/example1")
            return first, second

        first, second = with_server(body)
        assert (first.status, second.status) == (200, 200)
        assert first.header("x-cache") == "miss"
        assert second.header("x-cache") == "hit"
        assert first.header("etag") == second.header("etag")
        assert first.body == second.body

    def test_repeat_requests_hit_the_in_memory_body_cache(self):
        async def body(server, client):
            first = await client.get("/experiments/example1")
            second = await client.get("/experiments/example1")
            third = await client.get("/experiments/example1")
            return first, second, third, server.metrics

        first, second, third, metrics = with_server(body)
        assert first.body == second.body == third.body
        # First request built and populated the body cache; the repeats are
        # answered from memory without any disk read.
        assert metrics.memory_hits == 2
        assert metrics.cache_hits == 2
        assert second.header("x-cache") == "hit"

    def test_etag_round_trip_is_304(self):
        async def body(server, client):
            first = await client.get("/experiments/example1")
            etag = first.header("etag")
            revalidated = await client.get(
                "/experiments/example1", headers={"If-None-Match": etag}
            )
            return first, revalidated, server.metrics.not_modified

        first, revalidated, not_modified = with_server(body)
        assert revalidated.status == 304
        assert revalidated.body == b""
        assert revalidated.header("etag") == first.header("etag")
        assert not_modified == 1

    def test_stale_etag_gets_a_fresh_200(self):
        async def body(server, client):
            await client.get("/experiments/example1")
            return await client.get(
                "/experiments/example1", headers={"If-None-Match": '"stale"'}
            )

        assert with_server(body).status == 200

    def test_params_select_a_different_result(self):
        async def body(server, client):
            default = await client.get("/experiments/example1")
            tweaked = await client.get("/experiments/example1?max_residual_miners=10")
            return default, tweaked

        default, tweaked = with_server(body)
        assert tweaked.status == 200
        assert tweaked.header("etag") != default.header("etag")
        assert tweaked.body != default.body
        assert json.loads(tweaked.body)["params"]["max_residual_miners"] == 10

    def test_served_json_is_byte_identical_to_every_golden_snapshot(self):
        backend = get_backend().name

        async def body(server, client):
            async def fetch(experiment_id):
                async with BenchClient("127.0.0.1", server.port) as own:
                    return experiment_id, await own.get(f"/experiments/{experiment_id}")

            pairs = await asyncio.gather(
                *(fetch(spec.experiment_id) for spec in registry.all_specs())
            )
            return dict(pairs)

        responses = with_server(body, jobs=4)
        for spec in registry.all_specs():
            name = (
                f"{spec.experiment_id}.{backend}.json"
                if spec.backend_sensitive
                else f"{spec.experiment_id}.json"
            )
            golden = (GOLDEN_DIR / name).read_bytes()
            response = responses[spec.experiment_id]
            assert response.status == 200, spec.experiment_id
            if spec.backend_sensitive:
                # Per-backend golden files: byte-identity must hold exactly.
                assert response.body == golden, (
                    f"{spec.experiment_id} differs from golden"
                )
            else:
                # Backend-insensitive golden files were generated under one
                # ambient backend and jitter by ~1 ulp on others; hold them
                # to the golden suite's tolerance, byte-identity when the
                # ambient backend reproduces the file exactly.
                if response.body != golden:
                    assert_close(
                        json.loads(golden),
                        json.loads(response.body),
                        path=spec.experiment_id,
                    )

    def test_explicit_backend_query_param(self):
        async def body(server, client):
            return await client.get("/experiments/safety_violation?backend=python")

        response = with_server(body)
        assert response.status == 200
        assert json.loads(response.body)["backend"] == "python"


class TestSingleFlight:
    def test_fifty_concurrent_requests_trigger_exactly_one_build(self):
        async def body(server, client):
            async def one_request():
                async with BenchClient("127.0.0.1", server.port) as own:
                    return await own.get("/experiments/example1")

            responses = await asyncio.gather(*(one_request() for _ in range(50)))
            return responses, server.metrics

        responses, metrics = with_server(body)
        assert [r.status for r in responses] == [200] * 50
        assert len({r.body for r in responses}) == 1
        assert metrics.builds == 1
        assert metrics.cache_misses == 50
        assert metrics.single_flight_joined == 49


class TestFingerprintRefresh:
    def test_refresh_now_reports_no_change_on_stable_source(self):
        async def body(server, client):
            return await server.refresh_now()

        assert with_server(body) is False

    def test_refresh_now_picks_up_a_poisoned_memo(self, monkeypatch):
        from repro.experiments.orchestrator import cache as cache_module

        async def body(server, client):
            before = await client.get("/experiments/example1")
            # Simulate a source edit: the memoized fingerprint no longer
            # matches what hashing the tree produces.
            monkeypatch.setattr(
                cache_module, "_package_fingerprint_cache", "0" * 64
            )
            changed = await server.refresh_now()
            after = await client.get("/experiments/example1")
            return before, changed, after, server.metrics

        before, changed, after, metrics = with_server(body)
        assert changed is True
        assert metrics.fingerprint_refreshes == 1
        # Same source, refreshed fingerprint: the key (and cache entry)
        # still matches, so the second request is a hit on the same ETag.
        assert after.header("etag") == before.header("etag")
        assert after.header("x-cache") == "hit"


class TestWritePathOverSockets:
    """The write plane end-to-end: real sockets, real process pool."""

    def test_submit_poll_fetch_round_trip(self):
        async def body(server, client):
            submit = await client.post("/jobs", {"experiment": "example1"})
            assert submit.status == 202
            accepted = json.loads(submit.body)
            assert submit.header("location") == f"/jobs/{accepted['id']}"
            for _ in range(2000):
                poll = await client.get(f"/jobs/{accepted['id']}")
                snapshot = json.loads(poll.body)
                if snapshot["status"] in ("done", "failed"):
                    break
                await asyncio.sleep(0.01)
            assert snapshot["status"] == "done"
            result = await client.get(f"/jobs/{accepted['id']}/result")
            direct = await client.get("/experiments/example1")
            metrics_response = await client.get("/metrics")
            return result, direct, json.loads(metrics_response.body)

        result, direct, metrics = with_server(body)
        assert result.status == 200
        # The job's result and the read plane serve the same bytes.
        assert result.body == direct.body
        assert metrics["jobs_submitted"] == 1
        assert metrics["jobs_completed"] == 1
        assert metrics["jobs"]["done"] == 1

    def test_ndjson_stream_decodes_over_a_real_connection(self):
        async def body(server, client):
            response = await client.get(
                "/results?experiment=example1&experiment=figure1&format=ndjson"
            )
            direct = await client.get("/experiments/example1")
            return response, direct

        response, direct = with_server(body)
        assert response.status == 200
        assert response.header("transfer-encoding") == "chunked"
        lines = [json.loads(line) for line in response.body.splitlines() if line]
        assert [line["experiment_id"] for line in lines] == ["example1", "figure1"]
        assert lines[0]["result"] == json.loads(direct.body)

    def test_cache_admin_cycle_over_sockets(self):
        async def body(server, client):
            await client.get("/experiments/example1")
            stats = json.loads((await client.get("/cache/stats")).body)
            warm = json.loads(
                (await client.post("/cache/warm", {"experiments": ["figure1"]})).body
            )
            after = json.loads((await client.get("/cache/stats")).body)
            prune = json.loads((await client.post("/cache/prune", {})).body)
            return stats, warm, after, prune

        stats, warm, after, prune = with_server(body)
        assert stats["entries"] == 1
        assert warm["counts"] == {"hit": 0, "miss": 1}
        assert after["entries"] == 2
        assert prune["kept_entries"] == 2

    def test_keep_alive_survives_a_mixed_request_sequence(self):
        async def body(server, client):
            # One connection: read, stream, write, admin — framing must
            # stay aligned across Content-Length and chunked responses.
            first = await client.get("/experiments/example1")
            streamed = await client.get("/results?experiment=example1&format=ndjson")
            job = await client.post(
                "/jobs", {"experiment": "example1", "wait": True}
            )
            health = await client.get("/healthz")
            return first, streamed, job, health

        first, streamed, job, health = with_server(body)
        assert first.status == streamed.status == job.status == health.status == 200
        assert json.loads(job.body)["status"] == "done"
