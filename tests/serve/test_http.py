"""Tests for the stdlib HTTP parsing/encoding layer of the result service."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.exceptions import ServeError
from repro.serve.http import (
    LAST_CHUNK,
    MAX_BODY_BYTES,
    MAX_HEADER_COUNT,
    HttpResponse,
    StreamingHttpResponse,
    encode_chunk,
    etag_for,
    if_none_match_matches,
    read_request,
)


def parse(raw: bytes):
    """Feed raw bytes to the parser through a real StreamReader."""

    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(_run())


class TestRequestParsing:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.query == {}
        assert request.header("host") == "x"
        assert request.keep_alive is True

    def test_query_string_is_a_multidict(self):
        request = parse(b"GET /experiments/figure1?step=2&tag=a&tag=b HTTP/1.1\r\n\r\n")
        assert request.path == "/experiments/figure1"
        assert request.query == {"step": ["2"], "tag": ["a", "b"]}

    def test_percent_decoding(self):
        request = parse(b"GET /experiments/fig%31 HTTP/1.1\r\n\r\n")
        assert request.path == "/experiments/fig1"

    def test_header_names_are_case_insensitive(self):
        request = parse(b"GET / HTTP/1.1\r\nIf-None-Match: \"abc\"\r\n\r\n")
        assert request.header("if-none-match") == '"abc"'
        assert request.header("If-None-Match") == '"abc"'

    def test_connection_close_disables_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert request.keep_alive is False

    def test_http10_defaults_to_close(self):
        assert parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive is False
        request = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert request.keep_alive is True

    def test_clean_eof_before_any_request_is_none(self):
        assert parse(b"") is None


class TestMalformedRequests:
    @pytest.mark.parametrize(
        "raw",
        [
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"\r\nGET",
        ],
    )
    def test_bad_request_line_is_400(self, raw):
        with pytest.raises(ServeError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_truncated_request_line_is_400(self):
        with pytest.raises(ServeError) as excinfo:
            parse(b"GET /x HT")
        assert excinfo.value.status == 400

    def test_bad_header_line_is_400(self):
        with pytest.raises(ServeError) as excinfo:
            parse(b"GET /x HTTP/1.1\r\nnot a header\r\n\r\n")
        assert excinfo.value.status == 400

    def test_too_many_headers_is_431(self):
        headers = b"".join(
            b"h%d: v\r\n" % index for index in range(MAX_HEADER_COUNT + 1)
        )
        with pytest.raises(ServeError) as excinfo:
            parse(b"GET /x HTTP/1.1\r\n" + headers + b"\r\n")
        assert excinfo.value.status == 431

    def test_oversized_request_line_is_431(self):
        with pytest.raises(ServeError) as excinfo:
            parse(b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 431


class TestResponseEncoding:
    def test_basic_response_wire_format(self):
        response = HttpResponse(status=200, body=b'{"ok": true}\n')
        wire = response.encode(keep_alive=True)
        head, _, body = wire.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert b"Content-Length: 13" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok": true}\n'

    def test_close_response(self):
        wire = HttpResponse(status=404, body=b"{}").encode(keep_alive=False)
        assert b"Connection: close" in wire

    def test_304_has_no_body(self):
        response = HttpResponse(status=304, headers=(("ETag", '"k"'),))
        wire = response.encode(keep_alive=True)
        assert wire.startswith(b"HTTP/1.1 304 Not Modified\r\n")
        assert wire.endswith(b"\r\n\r\n")
        assert b'ETag: "k"' in wire

    def test_extra_headers_are_emitted(self):
        wire = HttpResponse(
            status=200, body=b"{}", headers=(("X-Cache", "hit"),)
        ).encode()
        assert b"X-Cache: hit" in wire


class TestETags:
    def test_etag_is_the_quoted_key(self):
        assert etag_for("abc123") == '"abc123"'

    def test_exact_match(self):
        assert if_none_match_matches('"abc"', '"abc"') is True

    def test_no_match(self):
        assert if_none_match_matches('"xyz"', '"abc"') is False

    def test_star_matches_anything(self):
        assert if_none_match_matches("*", '"abc"') is True

    def test_list_of_candidates(self):
        assert if_none_match_matches('"one", "abc", "two"', '"abc"') is True

    def test_weak_prefix_is_stripped(self):
        assert if_none_match_matches('W/"abc"', '"abc"') is True

    def test_missing_header_never_matches(self):
        assert if_none_match_matches(None, '"abc"') is False
        assert if_none_match_matches("", '"abc"') is False


class TestRequestBodies:
    def test_content_length_body_is_read(self):
        request = parse(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}"
        )
        assert request.method == "POST"
        assert request.body == b'{"a":1}'

    def test_missing_content_length_means_empty_body(self):
        request = parse(b"POST /jobs HTTP/1.1\r\n\r\n")
        assert request.body == b""

    def test_oversized_body_is_413(self):
        with pytest.raises(ServeError) as excinfo:
            parse(
                f"POST /jobs HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
        assert excinfo.value.status == 413

    def test_malformed_content_length_is_400(self):
        for value in (b"seven", b"-1"):
            with pytest.raises(ServeError) as excinfo:
                parse(b"POST /jobs HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n")
            assert excinfo.value.status == 400

    def test_truncated_body_is_400(self):
        with pytest.raises(ServeError) as excinfo:
            parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}")
        assert excinfo.value.status == 400
        assert "truncated" in str(excinfo.value)

    def test_chunked_request_body_is_rejected(self):
        # A half-parsed chunked body would desynchronize keep-alive framing,
        # so the parser refuses it before reading any body byte.
        with pytest.raises(ServeError) as excinfo:
            parse(
                b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"2\r\n{}\r\n0\r\n\r\n"
            )
        assert excinfo.value.status == 400
        assert "chunked" in str(excinfo.value)


class TestChunkedResponses:
    def test_chunk_framing(self):
        assert encode_chunk(b"hello") == b"5\r\nhello\r\n"
        assert encode_chunk(b"") == b""
        assert LAST_CHUNK == b"0\r\n\r\n"

    def test_streaming_head_announces_chunked(self):
        async def chunks():
            yield b"x"

        head = StreamingHttpResponse(
            status=200, chunks=chunks(), headers=(("X-Result-Count", "3"),)
        ).encode_head()
        assert b"Transfer-Encoding: chunked" in head
        assert b"Content-Length" not in head
        assert b"X-Result-Count: 3" in head
        assert b"application/x-ndjson" in head

    def test_streaming_head_honors_connection_close(self):
        async def chunks():
            yield b"x"

        head = StreamingHttpResponse(status=200, chunks=chunks()).encode_head(
            keep_alive=False
        )
        assert b"Connection: close" in head
