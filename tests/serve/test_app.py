"""App-layer tests: route-table dispatch (405 + ``Allow``) and the
byte-bounded in-memory body cache."""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qs, unquote, urlsplit

import pytest

from repro.experiments.orchestrator import ResultCache
from repro.serve.app import ResultApp
from repro.serve.http import HttpRequest
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import ResultService


def _request(method, path, document=None):
    split = urlsplit(path)
    body = b"" if document is None else json.dumps(document).encode("utf-8")
    return HttpRequest(
        method=method,
        target=path,
        path=unquote(split.path),
        query=parse_qs(split.query, keep_blank_values=True),
        version="HTTP/1.1",
        headers={},
        body=body,
    )


def with_app(test_body, tmp_path, **app_kwargs):
    async def _run():
        with ThreadPoolExecutor(max_workers=2) as executor:
            app = ResultApp(
                ResultService(
                    cache=ResultCache(str(tmp_path / "cache")),
                    executor=executor,
                    metrics=ServiceMetrics(),
                ),
                **app_kwargs,
            )
            try:
                return await test_body(app)
            finally:
                await app.close()

    return asyncio.run(_run())


class TestMethodNotAllowed:
    @pytest.mark.parametrize(
        "method, path, allow",
        [
            ("POST", "/healthz", "GET"),
            ("POST", "/metrics", "GET"),
            ("POST", "/experiments", "GET"),
            ("POST", "/experiments/example1", "GET"),
            ("PUT", "/jobs", "GET, POST"),
            ("DELETE", "/jobs/j000001", "GET"),
            ("PUT", "/results", "GET, POST"),
            ("POST", "/cache/stats", "GET"),
            ("GET", "/cache/prune", "POST"),
            ("GET", "/cache/invalidate", "POST"),
            ("GET", "/cache/warm", "POST"),
        ],
    )
    def test_405_carries_the_per_path_allow_header(
        self, tmp_path, method, path, allow
    ):
        async def body(app):
            response = await app.handle(_request(method, path))
            assert response.status == 405
            assert dict(response.headers)["Allow"] == allow
            # Same uniform JSON error envelope as every other failure.
            error = json.loads(response.body)["error"]
            assert error["status"] == 405
            assert method in error["message"]

        with_app(body, tmp_path)

    def test_unrouted_paths_stay_404(self, tmp_path):
        async def body(app):
            for path in ("/nope", "/jobs/j1/extra/deep", "/cache", "/cache/nope"):
                response = await app.handle(_request("GET", path))
                assert response.status == 404, path

        with_app(body, tmp_path)

    def test_trailing_slash_routes_like_the_bare_path(self, tmp_path):
        async def body(app):
            response = await app.handle(_request("GET", "/healthz/"))
            assert response.status == 200

        with_app(body, tmp_path)


class TestBodyCacheByteBound:
    def test_lru_eviction_is_by_total_bytes(self, tmp_path):
        """The regression pin: the bound is bytes, not an entry count."""

        async def body(app):
            app._store_body("a", b"x" * 40)
            app._store_body("b", b"x" * 40)
            app._store_body("c", b"x" * 40)  # 120 bytes: over the 100 bound
            assert app._cached_body("a") is None  # least recently used: gone
            assert app._cached_body("b") is not None
            assert app._cached_body("c") is not None
            assert app._body_cache_total == 80

        with_app(body, tmp_path, body_cache_bytes=100)

    def test_lookup_refreshes_recency(self, tmp_path):
        async def body(app):
            app._store_body("a", b"x" * 40)
            app._store_body("b", b"x" * 40)
            app._cached_body("a")  # touch: "b" becomes the eviction victim
            app._store_body("c", b"x" * 40)
            assert app._cached_body("a") is not None
            assert app._cached_body("b") is None

        with_app(body, tmp_path, body_cache_bytes=100)

    def test_oversized_body_is_served_but_never_cached(self, tmp_path):
        async def body(app):
            app._store_body("small", b"x" * 10)
            app._store_body("huge", b"x" * 1000)
            assert app._cached_body("huge") is None
            # Admitting the oversized body must not have evicted anything.
            assert app._cached_body("small") is not None

        with_app(body, tmp_path, body_cache_bytes=100)

    def test_restore_of_a_key_replaces_its_bytes_once(self, tmp_path):
        async def body(app):
            app._store_body("a", b"x" * 30)
            app._store_body("a", b"y" * 50)
            assert app._cached_body("a") == b"y" * 50
            assert app._body_cache_total == 50

        with_app(body, tmp_path, body_cache_bytes=100)

    def test_drop_body_keeps_the_total_consistent(self, tmp_path):
        async def body(app):
            app._store_body("a", b"x" * 30)
            app._drop_body("a")
            app._drop_body("a")  # double drop is a no-op
            assert app._body_cache_total == 0
            app._store_body("b", b"x" * 100)  # exactly the bound fits
            assert app._cached_body("b") is not None

        with_app(body, tmp_path, body_cache_bytes=100)

    def test_tiny_bound_still_serves_correctly(self, tmp_path):
        async def body(app):
            first = await app.handle(_request("GET", "/experiments/example1"))
            second = await app.handle(_request("GET", "/experiments/example1"))
            assert first.status == second.status == 200
            assert first.body == second.body
            # Nothing fits in one byte, so the second hit came from disk.
            assert app.metrics.memory_hits == 0
            assert app._body_cache_total == 0

        with_app(body, tmp_path, body_cache_bytes=1)

    def test_served_experiment_bodies_flow_through_the_byte_cache(self, tmp_path):
        async def body(app):
            response = await app.handle(_request("GET", "/experiments/example1"))
            assert app._body_cache_total == len(response.body)
            again = await app.handle(_request("GET", "/experiments/example1"))
            assert again.body == response.body
            assert app.metrics.memory_hits == 1

        with_app(body, tmp_path)
