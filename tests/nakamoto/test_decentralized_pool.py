"""Tests for decentralized pools / non-outsourceable mining."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ProtocolError
from repro.nakamoto.decentralized_pool import (
    decentralization_report,
    decentralize_pools,
    operator_takeover_fraction,
    pooled_population,
)
from repro.nakamoto.miner import Miner
from repro.nakamoto.pool import MiningPool, pools_from_snapshot


def _two_pool_landscape():
    big = MiningPool("big-pool")
    for index in range(10):
        big.add_member(Miner(f"big-{index}", 6.0))
    small = MiningPool("small-pool")
    for index in range(4):
        small.add_member(Miner(f"small-{index}", 5.0))
    solo = [Miner("solo-0", 10.0), Miner("solo-1", 10.0)]
    return [big, small], solo


class TestDecentralizePools:
    def test_all_pools_decentralized_by_default(self):
        pools, solo = _two_pool_landscape()
        population = decentralize_pools(pools, solo)
        assert len(population) == 16  # 10 + 4 members + 2 solo
        assert population.total_power() == pytest.approx(100.0)

    def test_selective_decentralization(self):
        pools, solo = _two_pool_landscape()
        population = decentralize_pools(pools, solo, decentralized_pool_ids=["big-pool"])
        # big pool split into 10 members; small pool stays aggregated.
        assert len(population) == 13
        assert population.power_of("small-pool") == pytest.approx(20.0)

    def test_unknown_pool_rejected(self):
        pools, solo = _two_pool_landscape()
        with pytest.raises(ProtocolError):
            decentralize_pools(pools, solo, decentralized_pool_ids=["ghost"])

    def test_empty_landscape_rejected(self):
        with pytest.raises(ProtocolError):
            decentralize_pools([], [])

    def test_pool_without_members_cannot_be_decentralized(self):
        with pytest.raises(ProtocolError):
            decentralize_pools([MiningPool("empty")], [])


class TestDecentralizationReport:
    def test_entropy_increases_and_dominance_decreases(self):
        pools, solo = _two_pool_landscape()
        report = decentralization_report(pools, solo)
        assert report.entropy_gain_bits > 0
        assert report.decentralized_largest_share < report.pooled_largest_share
        assert report.decentralized_replicas > report.pooled_replicas

    def test_breaks_operator_majority_flag(self):
        big = MiningPool("mega")
        for index in range(10):
            big.add_member(Miner(f"m-{index}", 6.0))
        solo = [Miner("solo", 40.0)]
        report = decentralization_report([big], solo)
        assert report.pooled_largest_share == pytest.approx(0.6)
        assert report.breaks_operator_majority

    def test_snapshot_decentralization_matches_figure1_baseline(self):
        pools, solo = pools_from_snapshot(residual_miners=101, members_per_pool=1)
        report = decentralization_report(pools, solo, decentralized_pool_ids=[])
        # With nothing decentralized, the census is the Figure 1 situation.
        assert report.pooled_entropy_bits == pytest.approx(
            report.decentralized_entropy_bits
        )
        assert report.pooled_entropy_bits < 3.0

    def test_full_snapshot_decentralization_beats_three_bits(self):
        pools, solo = pools_from_snapshot(residual_miners=101, members_per_pool=20)
        report = decentralization_report(pools, solo)
        assert report.decentralized_entropy_bits > 3.0


class TestOperatorTakeover:
    def test_takeover_shrinks_with_decentralization(self):
        pools, solo = _two_pool_landscape()
        before = operator_takeover_fraction(pools, solo, 1, decentralized_pool_ids=[])
        after = operator_takeover_fraction(pools, solo, 1)
        assert before == pytest.approx(0.6)
        assert after < before

    def test_pooled_population_helper(self):
        pools, solo = _two_pool_landscape()
        population = pooled_population(pools, solo)
        assert len(population) == 4  # 2 pools + 2 solo miners

    def test_negative_coalition_rejected(self):
        pools, solo = _two_pool_landscape()
        with pytest.raises(ProtocolError):
            operator_takeover_fraction(pools, solo, -1)
