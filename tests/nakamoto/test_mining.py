"""Tests for miners, pools, the mining simulation, selfish mining and attacks."""

from __future__ import annotations

import pytest

from repro.core.exceptions import AnalysisError, ProtocolError
from repro.nakamoto.attack import (
    confirmations_for_risk,
    double_spend_success_probability,
    majority_takeover,
)
from repro.nakamoto.miner import Miner, miners_as_population
from repro.nakamoto.pool import (
    MiningPool,
    compromised_power_fraction,
    pool_population,
    pools_from_snapshot,
)
from repro.nakamoto.selfish import honest_mining_revenue, selfish_mining_revenue
from repro.nakamoto.simulation import MiningSimulation


class TestMinersAndPools:
    def test_miner_defaults_to_unique_configuration(self):
        a = Miner("a", 10.0)
        b = Miner("b", 10.0)
        assert a.configuration != b.configuration

    def test_miner_rejects_negative_power(self):
        with pytest.raises(ProtocolError):
            Miner("a", -1.0)

    def test_miners_as_population(self):
        population = miners_as_population([Miner("a", 60.0), Miner("b", 40.0)])
        assert population.total_power() == pytest.approx(100.0)

    def test_pool_aggregates_members(self):
        pool = MiningPool("pool-x")
        pool.add_member(Miner("m1", 5.0))
        pool.add_member(Miner("m2", 7.0))
        assert pool.total_hash_power() == pytest.approx(12.0)
        assert len(pool) == 2
        assert pool.as_replica().power == pytest.approx(12.0)

    def test_pool_rejects_duplicate_member(self):
        pool = MiningPool("pool-x")
        pool.add_member(Miner("m1", 5.0))
        with pytest.raises(ProtocolError):
            pool.add_member(Miner("m1", 1.0))

    def test_snapshot_pools(self):
        pools, solo = pools_from_snapshot(residual_miners=10)
        assert len(pools) == 17
        assert len(solo) == 10
        total = sum(p.total_hash_power() for p in pools) + sum(m.hash_power for m in solo)
        assert total == pytest.approx(100.015)  # printed shares + residual

    def test_snapshot_members_per_pool(self):
        pools, _ = pools_from_snapshot(members_per_pool=4)
        assert all(len(pool) == 4 for pool in pools)

    def test_pool_population_entropy_below_three_bits(self):
        pools, solo = pools_from_snapshot(residual_miners=101)
        population = pool_population(pools, solo)
        assert population.entropy() < 3.0

    def test_compromised_power_fraction(self):
        pools, solo = pools_from_snapshot(residual_miners=0)
        fraction = compromised_power_fraction(pools, solo, ["foundry-usa", "antpool"])
        assert fraction > 0.5

    def test_compromised_power_unknown_pool_rejected(self):
        pools, solo = pools_from_snapshot()
        with pytest.raises(ProtocolError):
            compromised_power_fraction(pools, solo, ["ghost-pool"])


class TestMiningSimulation:
    def _miners(self):
        return [Miner("big", 55.0), Miner("mid", 30.0), Miner("small", 15.0)]

    def test_honest_mining_produces_requested_blocks(self):
        result = MiningSimulation(self._miners(), seed=1).mine_honest(100)
        assert result.main_chain_length == 100
        assert sum(dict(result.blocks_by_miner).values()) == 100

    def test_block_share_tracks_hash_power(self):
        result = MiningSimulation(self._miners(), seed=2).mine_honest(2000)
        counts = dict(result.blocks_by_miner)
        assert counts["big"] > counts["mid"] > counts["small"]

    def test_deterministic_given_seed(self):
        a = MiningSimulation(self._miners(), seed=3).mine_honest(50)
        b = MiningSimulation(self._miners(), seed=3).mine_honest(50)
        assert a.blocks_by_miner == b.blocks_by_miner

    def test_majority_attacker_usually_wins(self):
        sim = MiningSimulation(self._miners(), seed=4)
        rate = sim.estimate_attack_success(["big"], confirmations=6, trials=60)
        assert rate > 0.8

    def test_small_attacker_usually_loses(self):
        sim = MiningSimulation(self._miners(), seed=5)
        rate = sim.estimate_attack_success(["small"], confirmations=6, trials=60)
        assert rate < 0.2

    def test_attack_reverts_confirmations_on_success(self):
        sim = MiningSimulation(self._miners(), seed=6)
        result = sim.run_double_spend(["big", "mid"], confirmations=4)
        assert result.attack_succeeded
        assert result.reverted_blocks >= 4

    def test_attacker_coalition_must_be_nonempty(self):
        sim = MiningSimulation(self._miners(), seed=7)
        with pytest.raises(ProtocolError):
            sim.run_double_spend([])

    def test_all_miners_attacking_rejected(self):
        sim = MiningSimulation(self._miners(), seed=8)
        with pytest.raises(ProtocolError):
            sim.run_double_spend(["big", "mid", "small"])

    def test_simulation_requires_miners_and_power(self):
        with pytest.raises(ProtocolError):
            MiningSimulation([])
        with pytest.raises(ProtocolError):
            MiningSimulation([Miner("a", 0.0)])


class TestSelfishMining:
    def test_large_pool_with_visibility_profits(self):
        result = selfish_mining_revenue(0.4, gamma=0.5, rounds=30_000, seed=1)
        assert result.profitable
        assert result.relative_revenue > 0.4

    def test_small_pool_without_visibility_loses(self):
        result = selfish_mining_revenue(0.15, gamma=0.0, rounds=30_000, seed=2)
        assert not result.profitable

    def test_revenue_grows_with_alpha(self):
        low = selfish_mining_revenue(0.2, gamma=0.0, rounds=20_000, seed=3)
        high = selfish_mining_revenue(0.45, gamma=0.0, rounds=20_000, seed=3)
        assert high.relative_revenue > low.relative_revenue

    def test_honest_revenue_is_alpha(self):
        assert honest_mining_revenue(0.3) == pytest.approx(0.3)

    def test_parameter_validation(self):
        with pytest.raises(ProtocolError):
            selfish_mining_revenue(0.6)
        with pytest.raises(ProtocolError):
            selfish_mining_revenue(0.3, gamma=1.5)
        with pytest.raises(ProtocolError):
            honest_mining_revenue(1.5)


class TestAttackAnalysis:
    def test_majority_attacker_always_succeeds(self):
        assert double_spend_success_probability(0.5, 6) == pytest.approx(1.0)
        assert double_spend_success_probability(0.7, 10) == pytest.approx(1.0)

    def test_zero_power_never_succeeds(self):
        assert double_spend_success_probability(0.0, 6) == 0.0

    def test_probability_decreases_with_confirmations(self):
        probs = [double_spend_success_probability(0.3, z) for z in range(1, 8)]
        assert probs == sorted(probs, reverse=True)

    def test_probability_increases_with_power(self):
        assert double_spend_success_probability(0.4, 6) > double_spend_success_probability(0.1, 6)

    def test_known_reference_value(self):
        # ~0.0005 for a 10% attacker at 6 confirmations (Rosenfeld's table).
        value = double_spend_success_probability(0.10, 6)
        assert 1e-4 < value < 1e-3

    def test_confirmations_for_risk(self):
        depth = confirmations_for_risk(0.1, risk=0.001)
        assert 4 <= depth <= 8
        with pytest.raises(AnalysisError):
            confirmations_for_risk(0.6, risk=0.001, max_confirmations=50)

    def test_majority_takeover_report(self):
        report = majority_takeover({"a": 60.0, "b": 40.0}, ["a"])
        assert report.majority
        assert report.compromised_fraction == pytest.approx(0.6)
        assert report.double_spend_probability == pytest.approx(1.0)

    def test_majority_takeover_validation(self):
        with pytest.raises(AnalysisError):
            majority_takeover({}, [])
        with pytest.raises(AnalysisError):
            majority_takeover({"a": 1.0}, ["ghost"])
