"""Unit tests for blocks, the block tree and the longest-chain rule."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ProtocolError
from repro.nakamoto.block import Block
from repro.nakamoto.chain import BlockTree


class TestBlock:
    def test_genesis(self):
        genesis = Block.genesis()
        assert genesis.height == 0
        assert genesis.parent_id is None

    def test_child_links_to_parent(self):
        genesis = Block.genesis()
        child = genesis.child("b1", "miner-a", timestamp=10.0)
        assert child.parent_id == genesis.block_id
        assert child.height == 1
        assert child.miner_id == "miner-a"

    def test_non_genesis_needs_parent(self):
        with pytest.raises(ProtocolError):
            Block(block_id="x", parent_id=None, height=1, miner_id="m")

    def test_second_genesis_rejected(self):
        with pytest.raises(ProtocolError):
            Block(block_id="x", parent_id="something", height=0, miner_id="m")

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ProtocolError):
            Block(block_id="x", parent_id="genesis", height=1, miner_id="m", timestamp=-1.0)


class TestBlockTree:
    def _linear_chain(self, length: int) -> BlockTree:
        tree = BlockTree()
        tip = tree.block(tree.genesis_id)
        for index in range(length):
            block = tip.child(f"b{index}", f"miner-{index % 2}")
            tree.add(block)
            tip = block
        return tree

    def test_linear_chain_height(self):
        tree = self._linear_chain(5)
        assert tree.height() == 5
        assert tree.tip().block_id == "b4"
        assert len(tree.main_chain()) == 6  # genesis + 5

    def test_fork_choice_prefers_longer_branch(self):
        tree = BlockTree()
        genesis = tree.block(tree.genesis_id)
        a1 = genesis.child("a1", "alice")
        tree.add(a1)
        b1 = genesis.child("b1", "bob")
        tree.add(b1)
        b2 = b1.child("b2", "bob")
        tree.add(b2)
        assert tree.tip().block_id == "b2"
        assert tree.fork_count() == 1  # a1 is orphaned

    def test_tie_breaks_by_first_seen(self):
        tree = BlockTree()
        genesis = tree.block(tree.genesis_id)
        tree.add(genesis.child("first", "alice"))
        tree.add(genesis.child("second", "bob"))
        assert tree.tip().block_id == "first"

    def test_blocks_by_miner_counts_main_chain_only(self):
        tree = BlockTree()
        genesis = tree.block(tree.genesis_id)
        a1 = genesis.child("a1", "alice")
        tree.add(a1)
        tree.add(genesis.child("o1", "orphan-miner"))
        a2 = a1.child("a2", "alice")
        tree.add(a2)
        counts = tree.blocks_by_miner()
        assert counts == {"alice": 2}
        assert tree.blocks_by_miner(main_chain_only=False)["orphan-miner"] == 1

    def test_duplicate_block_rejected(self):
        tree = self._linear_chain(1)
        with pytest.raises(ProtocolError):
            tree.add(tree.block(tree.genesis_id).child("b0", "x"))

    def test_unknown_parent_rejected(self):
        tree = BlockTree()
        with pytest.raises(ProtocolError):
            tree.add(Block(block_id="x", parent_id="ghost", height=1, miner_id="m"))

    def test_height_must_extend_parent(self):
        tree = BlockTree()
        with pytest.raises(ProtocolError):
            tree.add(Block(block_id="x", parent_id=tree.genesis_id, height=5, miner_id="m"))

    def test_common_prefix(self):
        tree = BlockTree()
        genesis = tree.block(tree.genesis_id)
        shared = genesis.child("shared", "alice")
        tree.add(shared)
        a2 = shared.child("a2", "alice")
        tree.add(a2)
        b2 = shared.child("b2", "bob")
        tree.add(b2)
        assert tree.common_prefix_with("b2").block_id == "shared"

    def test_confirmation_depth(self):
        tree = self._linear_chain(6)
        assert tree.confirmation_depth("b0") == 6
        assert tree.confirmation_depth("b5") == 1
        assert tree.confirmation_depth(tree.genesis_id) == 7

    def test_confirmation_depth_of_orphan_is_zero(self):
        tree = BlockTree()
        genesis = tree.block(tree.genesis_id)
        tree.add(genesis.child("main1", "alice"))
        tree.add(genesis.child("orphan", "bob"))
        main2 = tree.block("main1").child("main2", "alice")
        tree.add(main2)
        assert tree.confirmation_depth("orphan") == 0
