"""Tests for the env-driven chaos-injection harness.

Everything that can be verified in-process is (rule parsing, caps, the
deterministic decision stream, once-tokens); the ``crash`` kind is verified
in a subprocess because it is a real ``os._exit`` — the whole point.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from repro.core.exceptions import ChaosError, ReproError
from repro.testing.chaos import (
    CHAOS_CRASH_EXIT_CODE,
    CHAOS_ENV_VAR,
    CHAOS_HANG_ENV_VAR,
    CHAOS_ONCE_ENV_VAR,
    CHAOS_SEED_ENV_VAR,
    ChaosConfig,
    active_chaos,
    chaos_checkpoint,
    reset_chaos,
)

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture(autouse=True)
def _fresh_chaos(monkeypatch):
    """Each test starts and ends with a pristine, inactive configuration."""
    for name in (
        CHAOS_ENV_VAR,
        CHAOS_SEED_ENV_VAR,
        CHAOS_HANG_ENV_VAR,
        CHAOS_ONCE_ENV_VAR,
    ):
        monkeypatch.delenv(name, raising=False)
    reset_chaos()
    yield
    reset_chaos()


class TestParse:
    def test_single_rule_with_defaults(self):
        config = ChaosConfig.parse("crash:0.2")
        (rule,) = config.rules
        assert rule.kind == "crash"
        assert rule.probability == 0.2
        assert rule.max_injections is None
        assert rule.site == "task"

    def test_explicit_site_and_cap(self):
        config = ChaosConfig.parse("corrupt:1:2@cache-write")
        (rule,) = config.rules
        assert rule.kind == "corrupt"
        assert rule.probability == 1.0
        assert rule.max_injections == 2
        assert rule.site == "cache-write"

    def test_multiple_rules_and_blank_segments(self):
        config = ChaosConfig.parse("crash:0.1, hang:0.5@task, ,corrupt:1@cache-write")
        assert [rule.kind for rule in config.rules] == ["crash", "hang", "corrupt"]

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:1",  # unknown kind
            "crash",  # missing probability
            "crash:lots",  # non-numeric probability
            "crash:1.5",  # probability out of range
            "crash:-0.1",  # probability out of range
            "crash:1:x",  # non-integer cap
            "crash:1:-1",  # negative cap
            "crash:1:2:3",  # too many fields
            ":1",  # empty kind
        ],
    )
    def test_malformed_rules_raise(self, spec):
        with pytest.raises(ReproError):
            ChaosConfig.parse(spec)

    def test_zero_probability_rule_is_inactive(self):
        assert not ChaosConfig.parse("crash:0").active
        assert ChaosConfig.parse("crash:0.01").active


class TestFromEnv:
    def test_unset_environment_is_inactive(self):
        config = ChaosConfig.from_env({})
        assert config.rules == ()
        assert not config.active

    def test_environment_variables_are_read(self, tmp_path):
        config = ChaosConfig.from_env(
            {
                CHAOS_ENV_VAR: "hang:1@task",
                CHAOS_SEED_ENV_VAR: "99",
                CHAOS_HANG_ENV_VAR: "0.25",
                CHAOS_ONCE_ENV_VAR: str(tmp_path / "once"),
            }
        )
        assert config.seed == 99
        assert config.hang_seconds == 0.25
        assert config.once_dir == str(tmp_path / "once")

    def test_active_chaos_is_memoized_until_reset(self, monkeypatch):
        assert not active_chaos().active
        monkeypatch.setenv(CHAOS_ENV_VAR, "corrupt:1")
        # Memoized: the env change is invisible until reset_chaos().
        assert not active_chaos().active
        reset_chaos()
        assert active_chaos().active


class TestInject:
    def test_corrupt_at_task_site_raises_chaos_error(self):
        config = ChaosConfig.parse("corrupt:1")
        with pytest.raises(ChaosError):
            config.inject("task", key="t1")

    def test_corrupt_at_cache_write_is_returned_to_the_caller(self):
        config = ChaosConfig.parse("corrupt:1@cache-write")
        assert config.inject("cache-write", key="k") == "corrupt"

    def test_site_mismatch_never_fires(self):
        config = ChaosConfig.parse("corrupt:1@cache-write")
        assert config.inject("task", key="t") is None

    def test_per_process_cap_bounds_injections(self):
        config = ChaosConfig.parse("corrupt:1:2")
        for _ in range(2):
            with pytest.raises(ChaosError):
                config.inject("task")
        assert config.inject("task") is None
        assert config.inject("task") is None

    def test_decision_stream_is_deterministic_for_a_seed(self):
        def decisions(seed):
            config = ChaosConfig.parse("corrupt:0.5@cache-write", seed=seed)
            return [config.inject("cache-write") for _ in range(32)]

        first = decisions(7)
        assert decisions(7) == first
        assert any(value == "corrupt" for value in first)
        assert any(value is None for value in first)
        assert decisions(8) != first

    def test_hang_sleeps_the_configured_duration(self):
        config = ChaosConfig.parse("hang:1", hang_seconds=0.05)
        started = time.monotonic()
        assert config.inject("task") is None
        assert time.monotonic() - started >= 0.04

    def test_once_tokens_are_claimed_across_configs(self, tmp_path):
        once = str(tmp_path / "once")
        first = ChaosConfig.parse("corrupt:1", once_dir=once)
        with pytest.raises(ChaosError):
            first.inject("task", key="shard-0")
        # A "different process" sharing the directory: the token is taken.
        second = ChaosConfig.parse("corrupt:1", once_dir=once)
        assert second.inject("task", key="shard-0") is None
        # A different key is a different token.
        with pytest.raises(ChaosError):
            second.inject("task", key="shard-1")

    def test_checkpoint_is_a_no_op_without_chaos(self):
        assert chaos_checkpoint("task", key="anything") is None


class TestCrashKind:
    def test_crash_kills_the_process_with_the_chaos_exit_code(self, tmp_path):
        script = (
            "from repro.testing.chaos import chaos_checkpoint\n"
            "chaos_checkpoint('task', key='victim')\n"
            "print('survived')\n"
        )
        env = dict(os.environ)
        env[CHAOS_ENV_VAR] = "crash:1"
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == CHAOS_CRASH_EXIT_CODE
        assert "survived" not in completed.stdout

    def test_crash_with_once_token_fires_exactly_once(self, tmp_path):
        script = (
            "from repro.testing.chaos import chaos_checkpoint\n"
            "chaos_checkpoint('task', key='victim')\n"
            "print('survived')\n"
        )
        env = dict(os.environ)
        env[CHAOS_ENV_VAR] = "crash:1"
        env[CHAOS_ONCE_ENV_VAR] = str(tmp_path / "once")
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        first = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=60
        )
        second = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=60
        )
        assert first.returncode == CHAOS_CRASH_EXIT_CODE
        assert second.returncode == 0
        assert "survived" in second.stdout
