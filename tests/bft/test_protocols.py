"""Integration tests for the PBFT, HotStuff-style and hybrid protocol simulations.

These tests check the safety cliff the paper's Section II-C condition
describes: runs stay safe while the Byzantine voting power respects the
protocol's bound and demonstrably lose safety once a (shared) fault pushes it
past the bound.
"""

from __future__ import annotations

import pytest

from repro.bft.hybrid import HybridRun
from repro.bft.pbft import PbftRun
from repro.bft.runner import fault_bound_for, run_consensus
from repro.core.exceptions import ProtocolError
from repro.faults.injection import FaultSchedule


def _ids(count: int):
    return [f"r{i}" for i in range(count)]


class TestPbft:
    def test_honest_run_commits_everywhere(self):
        result = run_consensus(_ids(4), protocol="pbft")
        assert result.safety_ok
        assert result.all_honest_decided
        assert result.messages_sent > 0

    def test_multiple_sequences(self):
        result = run_consensus(_ids(4), protocol="pbft", values=("a", "b", "c"))
        assert result.safety_ok
        assert result.all_honest_decided

    def test_crashed_backup_within_bound_keeps_liveness(self):
        result = run_consensus(_ids(4), FaultSchedule.crashed(["r3"]), protocol="pbft")
        assert result.safety_ok
        assert result.all_honest_decided

    def test_byzantine_backup_within_bound_is_safe(self):
        result = run_consensus(_ids(4), FaultSchedule.byzantine(["r3"]), protocol="pbft")
        assert result.safety_ok
        assert result.within_fault_bound

    def test_byzantine_primary_alone_cannot_break_safety(self):
        result = run_consensus(_ids(7), FaultSchedule.byzantine(["r0"]), protocol="pbft")
        assert result.safety_ok

    def test_safety_violation_beyond_fault_bound(self):
        # n=4, f=1: a Byzantine primary plus one Byzantine backup exceed f and
        # produce conflicting commits on the two honest replicas.
        result = run_consensus(_ids(4), FaultSchedule.byzantine(["r0", "r3"]), protocol="pbft")
        assert not result.within_fault_bound
        assert not result.safety_ok

    def test_safety_violation_in_larger_deployment(self):
        # n=7, f=2: three Byzantine replicas spanning both halves break safety.
        result = run_consensus(
            _ids(7), FaultSchedule.byzantine(["r0", "r3", "r5"]), protocol="pbft"
        )
        assert not result.safety_ok

    def test_minimum_replica_count_enforced(self):
        with pytest.raises(ProtocolError):
            PbftRun(replica_ids=_ids(3), fault_schedule=FaultSchedule.none())

    def test_unknown_primary_rejected(self):
        with pytest.raises(ProtocolError):
            PbftRun(
                replica_ids=_ids(4),
                fault_schedule=FaultSchedule.none(),
                primary_id="ghost",
            )

    def test_empty_values_rejected(self):
        run = PbftRun(replica_ids=_ids(4), fault_schedule=FaultSchedule.none())
        with pytest.raises(ProtocolError):
            run.execute(())


class TestHotStuff:
    def test_honest_run_commits_everywhere(self):
        result = run_consensus(_ids(4), protocol="hotstuff")
        assert result.safety_ok
        assert result.all_honest_decided

    def test_linear_message_complexity_is_lower_than_pbft(self):
        pbft = run_consensus(_ids(10), protocol="pbft")
        hotstuff = run_consensus(_ids(10), protocol="hotstuff")
        assert hotstuff.messages_sent < pbft.messages_sent

    def test_byzantine_followers_within_bound_are_safe(self):
        result = run_consensus(
            _ids(7), FaultSchedule.byzantine(["r5", "r6"]), protocol="hotstuff"
        )
        assert result.safety_ok

    def test_equivocating_leader_with_collusion_breaks_safety(self):
        result = run_consensus(
            _ids(4), FaultSchedule.byzantine(["r0", "r3"]), protocol="hotstuff"
        )
        assert not result.safety_ok

    def test_equivocating_leader_alone_cannot_break_safety(self):
        result = run_consensus(_ids(7), FaultSchedule.byzantine(["r0"]), protocol="hotstuff")
        assert result.safety_ok


class TestHybrid:
    def test_honest_run_commits_everywhere(self):
        result = run_consensus(_ids(3), protocol="hybrid")
        assert result.safety_ok
        assert result.all_honest_decided

    def test_needs_only_2f_plus_1_replicas(self):
        assert fault_bound_for("hybrid", 3) == 1
        assert fault_bound_for("pbft", 4) == 1

    def test_byzantine_primary_with_intact_tee_cannot_equivocate(self):
        result = run_consensus(_ids(5), FaultSchedule.byzantine(["r0", "r4"]), protocol="hybrid")
        assert result.safety_ok

    def test_compromised_trusted_components_break_safety(self):
        # The same fault pattern becomes fatal once the trusted hardware falls
        # (the paper's trusted-hardware diversity concern).
        result = run_consensus(
            _ids(5),
            FaultSchedule.byzantine(["r0", "r4"]),
            protocol="hybrid",
            tee_compromised_ids=["r0", "r4"],
        )
        assert not result.safety_ok

    def test_unknown_tee_id_rejected(self):
        with pytest.raises(ProtocolError):
            HybridRun(
                replica_ids=_ids(3),
                fault_schedule=FaultSchedule.none(),
                tee_compromised_ids=frozenset({"ghost"}),
            ).execute()

    def test_minimum_replica_count(self):
        with pytest.raises(ProtocolError):
            HybridRun(replica_ids=_ids(2), fault_schedule=FaultSchedule.none())


class TestRunner:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ProtocolError):
            run_consensus(_ids(4), protocol="raft")

    def test_population_input(self, unique_population):
        result = run_consensus(unique_population, protocol="pbft")
        assert result.safety_ok
        assert result.quorum.total_replicas == 8

    def test_empty_replica_list_rejected(self):
        with pytest.raises(ProtocolError):
            run_consensus([], protocol="pbft")

    def test_byzantine_count_reported(self):
        result = run_consensus(_ids(4), FaultSchedule.byzantine(["r1"]), protocol="pbft")
        assert result.byzantine_count == 1
        assert result.within_fault_bound

    def test_fault_bound_for_unknown_protocol(self):
        with pytest.raises(ProtocolError):
            fault_bound_for("tendermint", 4)
