"""Unit tests for BFT quorum arithmetic and replicated ledgers."""

from __future__ import annotations

import pytest

from repro.bft.ledger import ReplicatedLedger, check_agreement
from repro.bft.quorum import QuorumModel, QuorumSpec
from repro.core.exceptions import ProtocolError


class TestQuorumSpec:
    def test_classic_bounds(self):
        spec = QuorumSpec(total_replicas=4)
        assert spec.fault_bound == 1
        assert spec.quorum_size == 3
        assert spec.is_exact

    def test_classic_larger_deployment(self):
        spec = QuorumSpec(total_replicas=10)
        assert spec.fault_bound == 3
        assert spec.quorum_size == 7
        assert spec.is_exact  # 10 = 3*3 + 1
        assert not QuorumSpec(total_replicas=11).is_exact

    def test_hybrid_bounds(self):
        spec = QuorumSpec(total_replicas=3, model=QuorumModel.HYBRID)
        assert spec.fault_bound == 1
        assert spec.quorum_size == 2
        assert spec.is_exact

    def test_tolerates(self):
        spec = QuorumSpec(total_replicas=7)
        assert spec.tolerates(2)
        assert not spec.tolerates(3)

    def test_quorum_intersection_argument(self):
        spec = QuorumSpec(total_replicas=7)
        assert spec.quorums_intersect_in_honest(2)
        assert not spec.quorums_intersect_in_honest(3)

    def test_for_fault_bound(self):
        assert QuorumSpec.for_fault_bound(2).total_replicas == 7
        assert QuorumSpec.for_fault_bound(2, model=QuorumModel.HYBRID).total_replicas == 5

    def test_minimum_sizes_enforced(self):
        with pytest.raises(ProtocolError):
            QuorumSpec(total_replicas=3)  # classic needs >= 4
        with pytest.raises(ProtocolError):
            QuorumSpec(total_replicas=2, model=QuorumModel.HYBRID)

    def test_negative_byzantine_count_rejected(self):
        with pytest.raises(ProtocolError):
            QuorumSpec(total_replicas=4).tolerates(-1)


class TestReplicatedLedger:
    def test_commit_and_query(self):
        ledger = ReplicatedLedger("r0")
        ledger.commit(0, "tx-a", time=1.0)
        assert ledger.value_at(0) == "tx-a"
        assert ledger.commit_time(0) == pytest.approx(1.0)
        assert 0 in ledger
        assert ledger.committed_sequences() == (0,)

    def test_idempotent_recommit(self):
        ledger = ReplicatedLedger("r0")
        ledger.commit(0, "tx-a", time=1.0)
        ledger.commit(0, "tx-a", time=2.0)
        assert ledger.commit_time(0) == pytest.approx(1.0)

    def test_conflicting_local_commit_raises(self):
        ledger = ReplicatedLedger("r0")
        ledger.commit(0, "tx-a")
        with pytest.raises(ProtocolError):
            ledger.commit(0, "tx-b")

    def test_rejects_invalid_inputs(self):
        ledger = ReplicatedLedger("r0")
        with pytest.raises(ProtocolError):
            ledger.commit(-1, "tx")
        with pytest.raises(ProtocolError):
            ledger.commit(0, "")


class TestAgreement:
    def _ledgers(self, assignments):
        ledgers = {}
        for replica_id, entries in assignments.items():
            ledger = ReplicatedLedger(replica_id)
            for sequence, value in entries.items():
                ledger.commit(sequence, value)
            ledgers[replica_id] = ledger
        return ledgers

    def test_agreement_when_all_match(self):
        ledgers = self._ledgers({"a": {0: "x"}, "b": {0: "x"}, "c": {0: "x"}})
        report = check_agreement(ledgers)
        assert report.safe
        assert report.fully_replicated_sequences == (0,)

    def test_conflict_detected(self):
        ledgers = self._ledgers({"a": {0: "x"}, "b": {0: "y"}})
        report = check_agreement(ledgers)
        assert not report.safe
        assert report.conflicts == ((0, ("x", "y")),)

    def test_byzantine_ledgers_are_excluded(self):
        ledgers = self._ledgers({"honest1": {0: "x"}, "honest2": {0: "x"}, "byz": {0: "y"}})
        report = check_agreement(ledgers, honest_ids=["honest1", "honest2"])
        assert report.safe

    def test_partial_replication_is_safe_but_not_fully_replicated(self):
        ledgers = self._ledgers({"a": {0: "x"}, "b": {}})
        report = check_agreement(ledgers)
        assert report.safe
        assert report.decided_sequences == (0,)
        assert report.fully_replicated_sequences == ()

    def test_unknown_honest_id_rejected(self):
        ledgers = self._ledgers({"a": {0: "x"}})
        with pytest.raises(ProtocolError):
            check_agreement(ledgers, honest_ids=["ghost"])

    def test_empty_input_rejected(self):
        with pytest.raises(ProtocolError):
            check_agreement({})
