"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestListAndRun:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "decentralized_pools" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "example1"]) == 0
        output = capsys.readouterr().out
        assert "Example 1" in output
        assert "8-replica" in output

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "does-not-exist"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_multiple_experiments(self, capsys):
        assert main(["run", "proposition1", "proposition3"]) == 0
        output = capsys.readouterr().out
        assert "Proposition 1" in output
        assert "Proposition 3" in output


class TestEntropyCommand:
    def test_entropy_of_uniform_distribution(self, capsys):
        assert main(["entropy", "a=1", "b=1", "c=1", "d=1"]) == 0
        output = capsys.readouterr().out
        assert "2.0000" in output  # 2 bits
        assert "respects" in output

    def test_entropy_flags_dangerous_concentration(self, capsys):
        assert main(["entropy", "foundry=60", "rest=40"]) == 0
        output = capsys.readouterr().out
        assert "VIOLATES" in output

    def test_malformed_share_is_an_error(self, capsys):
        assert main(["entropy", "justaname"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_non_numeric_power_is_an_error(self, capsys):
        assert main(["entropy", "a=notanumber"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_command_exits_with_usage_error(self):
        with pytest.raises(SystemExit):
            main([])


class TestBackendsCommand:
    def test_backends_lists_registered_backends(self, capsys):
        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        assert "python" in output
        assert "numpy" in output
        assert "yes" in output

    def test_global_backend_flag_changes_active_backend(self, capsys):
        assert main(["--backend", "python", "backends"]) == 0
        output = capsys.readouterr().out
        python_row = next(line for line in output.splitlines() if line.startswith("python"))
        assert "yes" in python_row  # available AND active

    def test_backend_flag_is_restored_after_the_command(self, capsys, monkeypatch):
        from repro.backend import BACKEND_ENV_VAR, NumpyBackend, get_backend

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        main(["--backend", "python", "list"])
        capsys.readouterr()
        expected = "numpy" if NumpyBackend.is_available() else "python"
        assert get_backend().name == expected

    def test_unknown_backend_is_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["--backend", "fortran", "list"])


class TestBenchCommand:
    def test_bench_prints_table_for_every_backend(self, capsys):
        assert main(["bench", "--trials", "100", "--configs", "10", "--repeats", "1"]) == 0
        output = capsys.readouterr().out
        assert "trials/sec" in output
        assert "python" in output

    def test_bench_writes_snapshot(self, tmp_path, capsys):
        import json

        snapshot = tmp_path / "BENCH_TEST.json"
        assert (
            main(
                [
                    "bench",
                    "--trials", "100",
                    "--configs", "10",
                    "--repeats", "1",
                    "--output", str(snapshot),
                ]
            )
            == 0
        )
        capsys.readouterr()
        document = json.loads(snapshot.read_text())
        assert document["workload"]["configs"] == 10
        assert set(document["results"])  # at least one backend measured

    def test_bench_rejects_bad_workload(self, capsys):
        assert main(["bench", "--trials", "0"]) == 1
        assert "error:" in capsys.readouterr().err
