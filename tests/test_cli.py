"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.orchestrator import load_results_document


class TestListAndRun:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "decentralized_pools" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "example1"]) == 0
        output = capsys.readouterr().out
        assert "Example 1" in output
        assert "8-replica" in output

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "does-not-exist"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_multiple_experiments(self, capsys):
        assert main(["run", "proposition1", "proposition3"]) == 0
        output = capsys.readouterr().out
        assert "Proposition 1" in output
        assert "Proposition 3" in output


class TestRunOrchestration:
    def test_tag_filter_selects_the_propositions(self, capsys):
        assert main(["run", "--tag", "proposition", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "Proposition 1" in output
        assert "Proposition 2" in output
        assert "Proposition 3" in output
        assert "Figure 1" not in output

    def test_unknown_tag_is_a_usage_error(self, capsys):
        assert main(["run", "--tag", "no-such-tag"]) == 2
        assert "unknown tags" in capsys.readouterr().err

    def test_bad_shard_is_a_usage_error(self, capsys):
        assert main(["run", "--shard", "3/2", "figure1"]) == 2
        assert "shard" in capsys.readouterr().err

    def test_quiet_suppresses_reports(self, capsys):
        assert main(["run", "--quiet", "--no-cache", "figure1"]) == 0
        assert capsys.readouterr().out == ""

    def test_results_artifact_is_written(self, tmp_path, capsys):
        path = tmp_path / "RESULTS.json"
        assert main(["run", "--quiet", "--no-cache", "--results", str(path), "figure1"]) == 0
        document = load_results_document(str(path))
        assert list(document["results"]) == ["figure1"]
        assert document["results"]["figure1"]["metrics"]["always_below_bft8"] is True
        assert "results written to" in capsys.readouterr().out

    def test_second_invocation_is_served_from_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        argv = ["run", "--quiet", "--cache-dir", cache_dir, "figure1", "example1"]
        assert main(argv + ["--results", str(first)]) == 0
        assert main(argv + ["--results", str(second)]) == 0
        capsys.readouterr()
        first_doc = load_results_document(str(first))
        second_doc = load_results_document(str(second))
        assert first_doc["run"]["cached"] == {"figure1": False, "example1": False}
        assert second_doc["run"]["cached"] == {"figure1": True, "example1": True}
        assert first_doc["results"] == second_doc["results"]

    def test_shards_merge_to_the_unsharded_artifact(self, tmp_path, capsys):
        unsharded = tmp_path / "full.json"
        merged = tmp_path / "merged.json"
        base = ["run", "--quiet", "--no-cache", "--tag", "paper"]
        assert main(base + ["--results", str(unsharded)]) == 0
        assert main(base + ["--shard", "1/2", "--results", str(merged)]) == 0
        assert main(base + ["--shard", "2/2", "--results", str(merged), "--merge"]) == 0
        capsys.readouterr()
        full_doc = load_results_document(str(unsharded))
        merged_doc = load_results_document(str(merged))
        assert merged_doc["results"] == full_doc["results"]
        assert merged_doc["run"]["shards"] == ["1/2", "2/2"]

    def test_update_golden_writes_snapshots(self, tmp_path, capsys):
        golden_dir = tmp_path / "golden"
        assert (
            main(
                [
                    "run",
                    "--quiet",
                    "--no-cache",
                    "--update-golden",
                    "--golden-dir",
                    str(golden_dir),
                    "figure1",
                ]
            )
            == 0
        )
        capsys.readouterr()
        document = json.loads((golden_dir / "figure1.json").read_text(encoding="utf-8"))
        assert document["experiment_id"] == "figure1"
        assert "wall_time_seconds" not in document

    def test_non_positive_jobs_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "--jobs", "0", "figure1"])
        with pytest.raises(SystemExit):
            main(["run", "--jobs", "-2", "figure1"])

    def test_parallel_flag_matches_serial_results(self, tmp_path, capsys):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        base = ["run", "--quiet", "--no-cache", "--tag", "proposition"]
        assert main(base + ["--results", str(serial)]) == 0
        assert main(base + ["--parallel", "--jobs", "2", "--results", str(parallel)]) == 0
        capsys.readouterr()
        assert (
            load_results_document(str(serial))["results"]
            == load_results_document(str(parallel))["results"]
        )


class TestEntropyCommand:
    def test_entropy_of_uniform_distribution(self, capsys):
        assert main(["entropy", "a=1", "b=1", "c=1", "d=1"]) == 0
        output = capsys.readouterr().out
        assert "2.0000" in output  # 2 bits
        assert "respects" in output

    def test_entropy_flags_dangerous_concentration(self, capsys):
        assert main(["entropy", "foundry=60", "rest=40"]) == 0
        output = capsys.readouterr().out
        assert "VIOLATES" in output

    def test_malformed_share_is_an_error(self, capsys):
        assert main(["entropy", "justaname"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_non_numeric_power_is_an_error(self, capsys):
        assert main(["entropy", "a=notanumber"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_duplicate_name_is_an_error(self, capsys):
        assert main(["entropy", "a=1", "a=2"]) == 1
        error = capsys.readouterr().err
        assert "duplicate name" in error
        assert "'a'" in error

    def test_duplicate_name_among_many_is_an_error(self, capsys):
        assert main(["entropy", "a=1", "b=2", "a=3"]) == 1
        assert "duplicate name" in capsys.readouterr().err

    def test_missing_command_exits_with_usage_error(self):
        with pytest.raises(SystemExit):
            main([])


class TestMergeRequiresResults:
    def test_merge_without_results_is_a_usage_error(self, capsys):
        assert main(["run", "example1", "--merge"]) == 2
        assert "--merge requires --results" in capsys.readouterr().err

    def test_merge_with_results_still_works(self, tmp_path, capsys):
        path = tmp_path / "RESULTS.json"
        assert main(["run", "example1", "--quiet", "--results", str(path)]) == 0
        assert (
            main(["run", "figure1", "--quiet", "--results", str(path), "--merge"]) == 0
        )
        document = json.loads(path.read_text())
        assert set(document["results"]) == {"example1", "figure1"}


class TestCacheCommand:
    def test_stats_is_the_default_action(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["run", "example1", "--quiet", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(cache_dir)]) == 0
        output = capsys.readouterr().out
        assert "live entries" in output

    def test_prune_removes_stale_entries(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.orchestrator import cache as cache_module

        cache_dir = tmp_path / "cache"
        assert main(["run", "example1", "--quiet", "--cache-dir", str(cache_dir)]) == 0
        monkeypatch.setattr(cache_module, "_package_fingerprint_cache", "0" * 64)
        capsys.readouterr()
        assert main(["cache", "--prune", "--cache-dir", str(cache_dir)]) == 0
        output = capsys.readouterr().out
        assert "removed 1 stale entries" in output
        assert not list(cache_dir.glob("*.json"))

    def test_clear_removes_live_entries(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["run", "example1", "--quiet", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "--clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not list(cache_dir.glob("*.json"))

    def test_prune_and_clear_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["cache", "--prune", "--clear"])

    def test_warm_primes_misses_then_reports_hits(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["cache", "--warm", "example1", "--cache-dir", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert "1 result(s) computed, 0 already cached" in first
        assert len(list(cache_dir.glob("*.json"))) == 1
        assert main(["cache", "--warm", "example1", "--cache-dir", str(cache_dir)]) == 0
        second = capsys.readouterr().out
        assert "0 result(s) computed, 1 already cached" in second

    def test_warm_with_tag_selects_by_tag(self, tmp_path, capsys):
        from repro.experiments.orchestrator import registry

        tag = registry.known_tags()[0]
        expected = sum(1 for spec in registry.all_specs() if tag in spec.tags)
        cache_dir = tmp_path / "cache"
        assert main(
            ["cache", "--warm", "--tag", tag, "--cache-dir", str(cache_dir)]
        ) == 0
        assert f"({expected} selected" in capsys.readouterr().out
        assert len(list(cache_dir.glob("*.json"))) == expected

    def test_warm_unknown_experiment_is_a_usage_error(self, tmp_path, capsys):
        assert main(["cache", "--warm", "nope", "--cache-dir", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_warm_only_flags_require_warm(self, tmp_path, capsys):
        assert main(["cache", "--stats", "--tag", "x", "--cache-dir", str(tmp_path)]) == 2
        assert "--warm" in capsys.readouterr().err


class TestBenchServeCommand:
    def test_bench_serve_writes_snapshot(self, tmp_path, capsys):
        output = tmp_path / "BENCH_4.json"
        assert (
            main(
                [
                    "bench-serve",
                    "example1",
                    "--requests",
                    "8",
                    "--concurrency",
                    "2",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "warm (cache hits)" in printed
        document = json.loads(output.read_text())
        assert document["benchmark"] == "result_service"
        assert document["phases"]["cold_misses"]["statuses"] == {"200": 1}
        assert document["phases"]["warm_hits"]["statuses"] == {"200": 8}
        assert document["phases"]["warm_hits"]["x_cache"] == {"hit": 8}
        assert document["phases"]["conditional_304"]["statuses"] == {"304": 8}

    def test_bench_serve_unknown_experiment_is_a_usage_error(self, capsys):
        assert main(["bench-serve", "nope"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_bench_serve_write_ratio_adds_the_mixed_phase(self, tmp_path, capsys):
        output = tmp_path / "BENCH_7.json"
        assert (
            main(
                [
                    "bench-serve",
                    "example1",
                    "--requests",
                    "8",
                    "--concurrency",
                    "2",
                    "--write-ratio",
                    "0.25",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "mixed (25% writes)" in printed
        document = json.loads(output.read_text())
        assert document["workload"]["write_ratio"] == 0.25
        mixed = document["phases"]["mixed_read_write"]
        assert mixed["requests"] == 8
        # Every fourth request is a POST /jobs (wait=true → 200); the rest
        # are warm GETs — all against the already-primed cache.
        assert mixed["statuses"] == {"200": 8}
        assert mixed["x_cache"].get("hit", 0) >= 6

    def test_bench_serve_bad_write_ratio_is_an_error(self, capsys):
        assert main(["bench-serve", "example1", "--write-ratio", "1.5"]) == 1
        assert "write ratio" in capsys.readouterr().err


class TestServeCommand:
    def test_busy_port_is_a_clean_error(self, capsys):
        import socket

        with socket.socket() as blocker:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 1
        error = capsys.readouterr().err
        assert "cannot serve on" in error
        assert str(port) in error


class TestBackendsCommand:
    def test_backends_lists_registered_backends(self, capsys):
        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        assert "python" in output
        assert "numpy" in output
        assert "yes" in output

    def test_global_backend_flag_changes_active_backend(self, capsys):
        assert main(["--backend", "python", "backends"]) == 0
        output = capsys.readouterr().out
        python_row = next(line for line in output.splitlines() if line.startswith("python"))
        assert "yes" in python_row  # available AND active

    def test_backend_flag_is_restored_after_the_command(self, capsys, monkeypatch):
        from repro.backend import BACKEND_ENV_VAR, NumpyBackend, get_backend

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        main(["--backend", "python", "list"])
        capsys.readouterr()
        expected = "numpy" if NumpyBackend.is_available() else "python"
        assert get_backend().name == expected

    def test_unknown_backend_is_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["--backend", "fortran", "list"])


class TestBenchCommand:
    def test_bench_prints_table_for_every_backend(self, capsys):
        assert main(["bench", "--trials", "100", "--configs", "10", "--repeats", "1"]) == 0
        output = capsys.readouterr().out
        assert "trials/sec" in output
        assert "python" in output

    def test_bench_writes_snapshot(self, tmp_path, capsys):
        import json

        snapshot = tmp_path / "BENCH_TEST.json"
        assert (
            main(
                [
                    "bench",
                    "--trials", "100",
                    "--configs", "10",
                    "--repeats", "1",
                    "--output", str(snapshot),
                ]
            )
            == 0
        )
        capsys.readouterr()
        document = json.loads(snapshot.read_text())
        assert document["workload"]["configs"] == 10
        assert set(document["results"])  # at least one backend measured

    def test_bench_rejects_bad_workload(self, capsys):
        assert main(["bench", "--trials", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBenchCampaignCommand:
    def test_bench_campaign_prints_table_for_every_backend(self, capsys):
        assert (
            main(
                [
                    "bench-campaign",
                    "--trials", "50",
                    "--replicas", "12",
                    "--repeats", "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "campaigns/sec" in output
        assert "python" in output
        assert "identical campaign results: True" in output

    def test_bench_campaign_writes_snapshot(self, tmp_path, capsys):
        import json

        snapshot = tmp_path / "BENCH_CAMPAIGN_TEST.json"
        assert (
            main(
                [
                    "bench-campaign",
                    "--trials", "50",
                    "--replicas", "12",
                    "--repeats", "1",
                    "--output", str(snapshot),
                ]
            )
            == 0
        )
        capsys.readouterr()
        document = json.loads(snapshot.read_text())
        assert document["benchmark"] == "batch_campaign_engine"
        assert document["workload"]["trials"] == 50
        assert set(document["results"])  # at least one backend measured
        if "numpy" in document["results"]:
            assert document["speedup_numpy_over_python"] > 0

    def test_bench_campaign_rejects_bad_workload(self, capsys):
        assert main(["bench-campaign", "--trials", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBenchGridCommand:
    SMALL = [
        "bench-grid",
        "--trials", "60",
        "--replicas", "10",
        "--budgets", "1", "2",
        "--probabilities", "0.5",
        "--repeats", "1",
        "--scalar-trials", "40",
    ]

    def test_bench_grid_prints_table_for_every_backend(self, capsys):
        assert main(list(self.SMALL)) == 0
        output = capsys.readouterr().out
        assert "point-trials/sec" in output
        assert "python_fused" in output
        assert "python_looped" in output
        assert "fused grid identical to looped campaigns: True" in output

    def test_bench_grid_writes_snapshot(self, tmp_path, capsys):
        snapshot = tmp_path / "BENCH_GRID_TEST.json"
        assert main(list(self.SMALL) + ["--output", str(snapshot)]) == 0
        capsys.readouterr()
        document = json.loads(snapshot.read_text())
        assert document["benchmark"] == "grid_campaign_engine"
        assert document["workload"]["grid_points"] == 2
        assert document["identical_fused_vs_looped"] is True
        assert "python_fused" in document["results"]
        if "numpy_fused" in document["results"]:
            assert document["speedup_fused_over_looped_numpy"] > 0
            assert document["speedup_numpy_fused_over_python_scalar"] > 0

    def test_bench_grid_rejects_bad_workload(self, capsys):
        assert main(["bench-grid", "--trials", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBenchPopulationCommand:
    SMALL = [
        "bench-population",
        "--sizes", "200",
        "--trials", "8",
        "--seed", "3",
        "--dense-limit", "200",
    ]

    def test_bench_population_prints_table_and_identity(self, capsys):
        assert main(list(self.SMALL)) == 0
        output = capsys.readouterr().out
        assert "sparse population bench:" in output
        assert "sparse trials/sec" in output
        assert "sparse identical to dense at overlapping scales: True" in output
        assert "peak RSS:" in output

    def test_bench_population_writes_snapshot(self, tmp_path, capsys):
        snapshot = tmp_path / "BENCH_POP_TEST.json"
        assert main(list(self.SMALL) + ["--output", str(snapshot)]) == 0
        capsys.readouterr()
        document = json.loads(snapshot.read_text())
        assert document["benchmark"] == "sparse_population_plane"
        assert document["results"]["200"]["nnz"] == 200 * 5
        assert document["identical_sparse_vs_dense"] is True
        assert document["peak_rss_kb"] > 0

    def test_bench_population_enforces_the_memory_ceiling(self, capsys):
        assert main(list(self.SMALL) + ["--memory-ceiling-mb", "1"]) == 1
        captured = capsys.readouterr()
        assert "exceeds" in captured.err

    def test_bench_population_rejects_bad_workload(self, capsys):
        assert main(["bench-population", "--trials", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBenchBackendsCommand:
    SMALL = [
        "bench-backends",
        "--trials", "200",
        "--python-trials", "60",
        "--replicas", "24",
        "--seed", "5",
        "--repeats", "1",
        "--workers", "1", "2",
        "--sparse-size", "3000",
        "--sparse-trials", "6",
        "--sparse-workers", "2",
    ]

    def test_bench_backends_prints_table_and_speedups(self, capsys):
        pytest.importorskip("numpy")
        assert main(list(self.SMALL)) == 0
        output = capsys.readouterr().out
        assert "backend comparison:" in output
        assert "numpy" in output
        assert "shm[w=2]" in output
        assert "over numpy:" in output
        assert "sparse sweep:" in output
        assert "identical: True" in output

    def test_bench_backends_writes_snapshot(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        snapshot = tmp_path / "BENCH_10_TEST.json"
        assert main(list(self.SMALL) + ["--output", str(snapshot)]) == 0
        capsys.readouterr()
        document = json.loads(snapshot.read_text())
        assert document["benchmark"] == "backend_comparison"
        assert document["results"]["shm[w=1]"]["identical"] is True
        assert document["sparse_sweep"]["pruned_identical_to_unpruned"] is True

    def test_bench_backends_enforces_the_memory_ceiling(self, capsys):
        pytest.importorskip("numpy")
        assert main(list(self.SMALL) + ["--memory-ceiling-mb", "1"]) == 1
        assert "exceeds" in capsys.readouterr().err

    def test_bench_backends_enforces_min_speedup(self, capsys):
        pytest.importorskip("numpy")
        # An absurd bar fails deterministically regardless of host speed.
        arguments = list(self.SMALL) + [
            "--min-speedup", "1000000",
            "--min-speedup-workers", "2",
        ]
        assert main(arguments) == 1
        assert "below the required" in capsys.readouterr().err

    def test_bench_backends_min_speedup_needs_a_measurement(self, capsys):
        pytest.importorskip("numpy")
        arguments = list(self.SMALL) + [
            "--min-speedup", "1.0",
            "--min-speedup-workers", "64",
        ]
        assert main(arguments) == 1
        assert "no shm measurement" in capsys.readouterr().err

    def test_bench_backends_rejects_bad_workload(self, capsys):
        pytest.importorskip("numpy")
        assert main(["bench-backends", "--trials", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBackendsReasonColumn:
    def test_backends_table_has_reason_column(self, capsys):
        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        assert "reason" in output.splitlines()[0]

    def test_unavailable_backend_shows_its_reason(self, capsys, monkeypatch):
        from repro.backend import selection
        from repro.backend.base import ComputeBackend

        class Broken(ComputeBackend):
            name = "broken"

            @classmethod
            def is_available(cls):
                return False

            @classmethod
            def availability_error(cls):
                return "probe exploded: no such device"

        Broken.__abstractmethods__ = frozenset()
        monkeypatch.setattr(
            selection, "_REGISTRY", selection._REGISTRY + (Broken,)
        )
        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        broken_row = next(
            line for line in output.splitlines() if line.startswith("broken")
        )
        assert "no" in broken_row
        assert "probe exploded: no such device" in broken_row
