"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestListAndRun:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "decentralized_pools" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "example1"]) == 0
        output = capsys.readouterr().out
        assert "Example 1" in output
        assert "8-replica" in output

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "does-not-exist"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_multiple_experiments(self, capsys):
        assert main(["run", "proposition1", "proposition3"]) == 0
        output = capsys.readouterr().out
        assert "Proposition 1" in output
        assert "Proposition 3" in output


class TestEntropyCommand:
    def test_entropy_of_uniform_distribution(self, capsys):
        assert main(["entropy", "a=1", "b=1", "c=1", "d=1"]) == 0
        output = capsys.readouterr().out
        assert "2.0000" in output  # 2 bits
        assert "respects" in output

    def test_entropy_flags_dangerous_concentration(self, capsys):
        assert main(["entropy", "foundry=60", "rest=40"]) == 0
        output = capsys.readouterr().out
        assert "VIOLATES" in output

    def test_malformed_share_is_an_error(self, capsys):
        assert main(["entropy", "justaname"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_non_numeric_power_is_an_error(self, capsys):
        assert main(["entropy", "a=notanumber"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_command_exits_with_usage_error(self):
        with pytest.raises(SystemExit):
            main([])
