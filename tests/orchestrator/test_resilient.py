"""Tests for the fault-tolerant executor.

Thread-backed factories keep the policy tests (retries, backoff, attempt
log) fast; the process-pool tests exercise the behaviours only real worker
processes have — deadline kills and broken-pool recovery after a hard
``os._exit``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.exceptions import ChaosError, TaskTimeoutError
from repro.experiments.orchestrator.resilient import (
    ResilientExecutor,
    backoff_delay,
)


# Pool tasks must be module-level so process pools can pickle them.
def _double(value):
    return value * 2


def _echo(value):
    return value


def _raise_value_error():
    raise ValueError("deterministic application bug")


def _chaos_until_marker(marker, value):
    """Raise ChaosError on the first call (per marker), then succeed."""
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        raise ChaosError("injected")
    return value


def _always_chaos():
    raise ChaosError("always")


def _exit_until_marker(marker):
    """Die like a killed worker on the first call (per marker), then succeed."""
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(3)
    return "recovered"


def _always_exit():
    os._exit(3)


def _sleep_until_marker(marker, seconds):
    """Hang on the first call (per marker), then return promptly."""
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        time.sleep(seconds)
    return "fast"


def _sleep_forever(seconds):
    time.sleep(seconds)
    return "slept"


def _thread_pool():
    return ThreadPoolExecutor(max_workers=2)


class TestBackoffDelay:
    def test_deterministic_per_label_and_attempt(self):
        assert backoff_delay("t", 1) == backoff_delay("t", 1)
        assert backoff_delay("t", 1) != backoff_delay("u", 1)

    def test_exponential_and_capped(self):
        # Jitter is in [0.5, 1.5), so the bounds below are safe.
        assert backoff_delay("t", 1, base=0.1, cap=10.0) < 0.15
        assert backoff_delay("t", 10, base=0.1, cap=2.0) <= 3.0

    def test_zero_base_disables_backoff(self):
        assert backoff_delay("t", 3, base=0.0) == 0.0


class TestPolicy:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ResilientExecutor(deadline=0.0)
        with pytest.raises(ValueError):
            ResilientExecutor(retries=-1)

    def test_passthrough_success(self):
        pool = ResilientExecutor(factory=_thread_pool, backoff_base=0.0)
        try:
            assert pool.submit(_double, 21).result(timeout=30) == 42
            assert pool.tasks_succeeded == 1
            assert pool.tasks_failed == 0
            (attempt,) = list(pool.attempts)
            assert attempt.outcome == "ok"
            assert attempt.attempt == 1
        finally:
            pool.shutdown()

    def test_label_includes_first_string_argument(self):
        pool = ResilientExecutor(factory=_thread_pool, backoff_base=0.0)
        try:
            assert pool.submit(_echo, "figure1").result(timeout=30) == "figure1"
            (attempt,) = list(pool.attempts)
            assert attempt.task == "_echo:figure1"
        finally:
            pool.shutdown()

    def test_deterministic_error_fails_fast(self):
        pool = ResilientExecutor(factory=_thread_pool, retries=5, backoff_base=0.0)
        try:
            with pytest.raises(ValueError):
                pool.submit(_raise_value_error).result(timeout=30)
            assert pool.tasks_failed == 1
            assert pool.retries_total == 0
            (attempt,) = list(pool.attempts)
            assert attempt.outcome == "error"
            assert "ValueError" in attempt.error
        finally:
            pool.shutdown()

    def test_chaos_error_is_retried(self, tmp_path):
        marker = str(tmp_path / "marker")
        pool = ResilientExecutor(factory=_thread_pool, retries=2, backoff_base=0.0)
        try:
            future = pool.submit(_chaos_until_marker, marker, "ok")
            assert future.result(timeout=30) == "ok"
            assert pool.retries_total == 1
            assert pool.tasks_succeeded == 1
            outcomes = [attempt.outcome for attempt in pool.attempts]
            assert outcomes == ["error", "ok"]
        finally:
            pool.shutdown()

    def test_retry_budget_is_exhausted(self):
        pool = ResilientExecutor(factory=_thread_pool, retries=1, backoff_base=0.0)
        try:
            with pytest.raises(ChaosError):
                pool.submit(_always_chaos).result(timeout=30)
            assert pool.tasks_failed == 1
            assert pool.retries_total == 1
            assert [attempt.attempt for attempt in pool.attempts] == [1, 2]
        finally:
            pool.shutdown()

    def test_submit_after_shutdown_is_rejected(self):
        pool = ResilientExecutor(factory=_thread_pool)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(_double, 1)
        # Shutting down twice is a no-op, not an error.
        pool.shutdown()

    def test_recycle_swaps_the_inner_pool(self):
        created = []

        def factory():
            created.append(object())
            return ThreadPoolExecutor(max_workers=1)

        pool = ResilientExecutor(factory=factory, backoff_base=0.0)
        try:
            assert pool.generation == 0
            pool.recycle()
            assert pool.generation == 1
            assert len(created) == 2
            assert pool.pool_recycles == 1
            assert pool.submit(_double, 2).result(timeout=30) == 4
        finally:
            pool.shutdown()

    def test_snapshot_shape(self):
        pool = ResilientExecutor(factory=_thread_pool, deadline=9.0, retries=3)
        try:
            pool.submit(_double, 1).result(timeout=30)
            snapshot = pool.snapshot()
            assert snapshot["deadline_seconds"] == 9.0
            assert snapshot["retries"] == 3
            assert snapshot["pool_generation"] == 0
            assert snapshot["tasks_submitted"] == 1
            assert snapshot["tasks_succeeded"] == 1
            (attempt,) = snapshot["recent_attempts"]
            assert attempt["outcome"] == "ok"
            assert attempt["error"] is None
        finally:
            pool.shutdown()


class TestProcessPoolFaults:
    def test_broken_pool_is_recycled_and_the_task_redispatched(self, tmp_path):
        marker = str(tmp_path / "marker")
        pool = ResilientExecutor(max_workers=1, retries=2, backoff_base=0.0)
        try:
            future = pool.submit(_exit_until_marker, marker)
            assert future.result(timeout=120) == "recovered"
            assert pool.pool_breaks >= 1
            assert pool.pool_recycles >= 1
            assert pool.generation >= 1
            assert pool.tasks_succeeded == 1
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def test_pool_losses_do_not_spend_the_retry_budget(self, tmp_path):
        """A crash-killed worker is re-dispatched even with ``retries=0``:
        the task never failed, its pool did."""
        marker = str(tmp_path / "marker")
        pool = ResilientExecutor(max_workers=1, retries=0, backoff_base=0.0)
        try:
            future = pool.submit(_exit_until_marker, marker)
            assert future.result(timeout=120) == "recovered"
            assert pool.losses_redispatched >= 1
            assert pool.retries_total == 0  # the failure budget is untouched
            assert pool.tasks_succeeded == 1
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def test_a_task_that_always_kills_its_worker_eventually_fails(self):
        """The loss budget bounds a worker-killer: after ``max_pool_losses``
        re-dispatches each breaking a fresh pool, the task fails."""
        pool = ResilientExecutor(
            max_workers=1, retries=3, backoff_base=0.0, max_pool_losses=2
        )
        try:
            future = pool.submit(_always_exit)
            with pytest.raises(Exception):
                future.result(timeout=120)
            assert pool.tasks_failed == 1
            assert pool.pool_breaks == 3  # budget 2 allows two re-dispatches
            assert pool.losses_redispatched == 2
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def test_loss_budget_validation(self):
        with pytest.raises(ValueError):
            ResilientExecutor(max_pool_losses=0)

    def test_completed_results_survive_a_later_breakage(self, tmp_path):
        marker = str(tmp_path / "marker")
        pool = ResilientExecutor(max_workers=1, retries=2, backoff_base=0.0)
        try:
            first = pool.submit(_double, 4)
            assert first.result(timeout=120) == 8
            second = pool.submit(_exit_until_marker, marker)
            assert second.result(timeout=120) == "recovered"
            assert first.result() == 8
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def test_deadline_times_out_and_kills_the_hung_worker(self):
        pool = ResilientExecutor(max_workers=1, deadline=0.5, retries=0)
        try:
            future = pool.submit(_sleep_forever, 120.0)
            with pytest.raises(TaskTimeoutError) as excinfo:
                future.result(timeout=120)
            assert "0.5s deadline" in str(excinfo.value)
            assert pool.timeouts_total == 1
            assert pool.generation == 1  # the hung pool was recycled
            assert pool.tasks_failed == 1
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def test_timeout_then_retry_succeeds_on_the_fresh_pool(self, tmp_path):
        marker = str(tmp_path / "marker")
        pool = ResilientExecutor(
            max_workers=1, deadline=0.5, retries=1, backoff_base=0.0
        )
        try:
            future = pool.submit(_sleep_until_marker, marker, 120.0)
            assert future.result(timeout=120) == "fast"
            assert pool.timeouts_total == 1
            assert pool.retries_total == 1
            assert pool.tasks_succeeded == 1
            outcomes = [attempt.outcome for attempt in pool.attempts]
            assert outcomes == ["timeout", "ok"]
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
