"""Determinism guarantees: serial == process-parallel == sharded == cached.

The orchestrator's contract is that execution mode is unobservable in the
results: for a fixed seed the canonical ``ExperimentResult`` JSON is
byte-identical no matter how the run was scheduled or whether it was served
from the on-disk cache.
"""

from __future__ import annotations

import pytest

from repro.experiments.orchestrator import (
    ResultCache,
    results_document,
    run_experiments,
    select_shard,
)
from repro.experiments.orchestrator import registry

#: A fast cross-section: deterministic analytics, a Monte-Carlo experiment
#: (backend-sensitive), and a multi-table protocol experiment.
FAST_IDS = ("figure1", "example1", "proposition1", "safety_violation", "protocol_safety")


def fast_specs():
    return [registry.get_spec(experiment_id) for experiment_id in FAST_IDS]


def canonical(results):
    return [result.canonical_json() for result in results]


class TestSerialVsParallel:
    def test_process_parallel_is_byte_identical_to_serial(self):
        specs = fast_specs()
        serial = run_experiments(specs)
        parallel = run_experiments(specs, parallel=True, max_workers=3)
        assert canonical(serial) == canonical(parallel)

    def test_execution_order_does_not_matter(self):
        specs = fast_specs()
        forward = run_experiments(specs)
        reversed_results = run_experiments(list(reversed(specs)))
        by_id_forward = {r.experiment_id: r.canonical_json() for r in forward}
        by_id_reversed = {r.experiment_id: r.canonical_json() for r in reversed_results}
        assert by_id_forward == by_id_reversed


class TestSharding:
    def test_shards_union_to_the_unsharded_run(self):
        specs = fast_specs()
        unsharded = {r.experiment_id: r.canonical_json() for r in run_experiments(specs)}
        sharded = {}
        for index in (1, 2):
            shard = select_shard(specs, index, 2)
            for result in run_experiments(shard):
                assert result.experiment_id not in sharded  # shards are disjoint
                sharded[result.experiment_id] = result.canonical_json()
        assert sharded == unsharded

    def test_shards_partition_the_selection(self):
        specs = list(registry.all_specs())
        seen = []
        for index in (1, 2, 3):
            seen.extend(spec.experiment_id for spec in select_shard(specs, index, 3))
        assert sorted(seen) == sorted(spec.experiment_id for spec in specs)


class TestCachePaths:
    def test_cache_hit_is_byte_identical_to_miss(self, tmp_path):
        specs = fast_specs()
        cache = ResultCache(str(tmp_path / "cache"))
        fresh = run_experiments(specs, cache=cache)
        assert all(not result.cached for result in fresh)
        assert len(cache) == len(specs)
        hits = run_experiments(specs, cache=cache)
        assert all(result.cached for result in hits)
        assert canonical(fresh) == canonical(hits)

    def test_force_recomputes_but_matches(self, tmp_path):
        specs = fast_specs()[:2]
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_experiments(specs, cache=cache)
        forced = run_experiments(specs, cache=cache, force=True)
        assert all(not result.cached for result in forced)
        assert canonical(first) == canonical(forced)

    def test_parallel_run_populates_the_cache(self, tmp_path):
        specs = fast_specs()[:3]
        cache = ResultCache(str(tmp_path / "cache"))
        run_experiments(specs, parallel=True, cache=cache)
        assert len(cache) == len(specs)
        hits = run_experiments(specs, cache=cache)
        assert all(result.cached for result in hits)


class TestBackendPinning:
    def test_explicit_backend_matches_across_modes(self):
        specs = [registry.get_spec("safety_violation"), registry.get_spec("diversity_ablation")]
        serial = run_experiments(specs, backend="python")
        parallel = run_experiments(specs, backend="python", parallel=True)
        assert canonical(serial) == canonical(parallel)
        assert all(result.backend == "python" for result in serial)

    def test_backend_insensitive_results_record_no_backend(self):
        spec = registry.get_spec("figure1")
        (result,) = run_experiments([spec], backend="python")
        assert result.backend is None


class TestResultsDocumentDeterminism:
    def test_sharded_documents_merge_to_the_unsharded_document(self):
        from repro.experiments.orchestrator import merge_results_documents

        specs = fast_specs()
        unsharded = results_document(run_experiments(specs))
        shard_docs = [
            results_document(
                run_experiments(select_shard(specs, index, 2)), shard=f"{index}/2"
            )
            for index in (1, 2)
        ]
        merged = merge_results_documents(shard_docs)
        assert merged["results"] == unsharded["results"]
