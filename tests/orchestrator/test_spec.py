"""Tests for spec registration, filtering and shard selection."""

from __future__ import annotations

import pytest

from repro.core.exceptions import OrchestrationError
from repro.experiments.orchestrator import filter_specs, parse_shard, select_shard
from repro.experiments.orchestrator import registry


class TestRegistry:
    def test_seventeen_experiments_in_paper_order(self):
        ids = registry.experiment_ids()
        assert len(ids) == 17
        assert ids[:5] == [
            "figure1",
            "example1",
            "proposition1",
            "proposition2",
            "proposition3",
        ]
        # The campaign-engine sweeps (PR 5) plus the sparse ecosystem-scale
        # sweep (PR 9) close the registry.
        assert ids[-4:] == [
            "campaign_budget",
            "campaign_reliability",
            "campaign_churn",
            "ecosystem_scale",
        ]

    def test_get_spec_unknown_raises(self):
        with pytest.raises(OrchestrationError, match="unknown experiment"):
            registry.get_spec("does-not-exist")

    def test_every_spec_is_complete(self):
        for spec in registry.all_specs():
            assert spec.title
            assert spec.tags
            assert callable(spec.build)
            assert callable(spec.render)

    def test_backend_sensitive_specs_are_the_monte_carlo_ones(self):
        sensitive = {
            spec.experiment_id for spec in registry.all_specs() if spec.backend_sensitive
        }
        assert sensitive == {"safety_violation", "two_class", "diversity_ablation"}

    def test_seeded_specs_record_their_default_seed(self):
        by_id = {spec.experiment_id: spec for spec in registry.all_specs()}
        assert by_id["safety_violation"].seed == 7
        assert by_id["two_class"].seed == 23
        assert by_id["figure1"].seed is None
        assert by_id["campaign_budget"].seed == 11

    def test_campaign_specs_are_backend_insensitive(self):
        # The campaign kernels draw from a counter-based RNG stream, so the
        # sweeps produce identical numbers on every backend and need only
        # one golden snapshot each.
        by_id = {spec.experiment_id: spec for spec in registry.all_specs()}
        for name in ("campaign_budget", "campaign_reliability", "campaign_churn"):
            assert not by_id[name].backend_sensitive

    def test_params_round_trip(self):
        for spec in registry.all_specs():
            document = spec.params_dict()
            rebuilt = spec.params_from_dict(document)
            assert spec.params_dict(rebuilt) == document


class TestFiltering:
    def test_no_filters_selects_everything(self):
        specs = registry.all_specs()
        assert filter_specs(specs) == list(specs)

    def test_name_filter_preserves_registry_order(self):
        specs = registry.all_specs()
        selected = filter_specs(specs, names=("proposition2", "figure1"))
        assert [spec.experiment_id for spec in selected] == ["figure1", "proposition2"]

    def test_unknown_name_raises(self):
        with pytest.raises(OrchestrationError, match="unknown experiments: nope"):
            filter_specs(registry.all_specs(), names=("nope",))

    def test_tag_filter(self):
        selected = filter_specs(registry.all_specs(), tags=("proposition",))
        assert [spec.experiment_id for spec in selected] == [
            "proposition1",
            "proposition2",
            "proposition3",
        ]

    def test_multiple_tags_are_a_union(self):
        selected = filter_specs(registry.all_specs(), tags=("figure", "example"))
        assert [spec.experiment_id for spec in selected] == ["figure1", "example1"]

    def test_unknown_tag_raises(self):
        with pytest.raises(OrchestrationError, match="unknown tags"):
            filter_specs(registry.all_specs(), tags=("no-such-tag",))

    def test_names_and_tags_compose(self):
        selected = filter_specs(
            registry.all_specs(),
            names=("figure1", "proposition1"),
            tags=("proposition",),
        )
        assert [spec.experiment_id for spec in selected] == ["proposition1"]

    def test_empty_intersection_of_valid_filters_raises(self):
        # figure1 is a valid name and monte-carlo a valid tag, but nothing
        # carries both — a silent empty selection would look like success.
        with pytest.raises(OrchestrationError, match="no experiment matches"):
            filter_specs(registry.all_specs(), names=("figure1",), tags=("monte-carlo",))


class TestShardParsing:
    def test_parse_valid(self):
        assert parse_shard("1/2") == (1, 2)
        assert parse_shard(" 3/7 ") == (3, 7)

    @pytest.mark.parametrize("bad", ["", "1", "0/2", "3/2", "1/0", "a/b", "1/2/3", "-1/2"])
    def test_parse_invalid(self, bad):
        with pytest.raises(OrchestrationError):
            parse_shard(bad)


class TestShardSelection:
    def test_round_robin_assignment(self):
        specs = registry.all_specs()
        first = select_shard(specs, 1, 2)
        second = select_shard(specs, 2, 2)
        assert [spec.experiment_id for spec in first] == [
            spec.experiment_id for spec in specs[0::2]
        ]
        assert [spec.experiment_id for spec in second] == [
            spec.experiment_id for spec in specs[1::2]
        ]

    def test_single_shard_is_everything(self):
        specs = registry.all_specs()
        assert select_shard(specs, 1, 1) == list(specs)

    def test_more_shards_than_specs_yields_empty_shards(self):
        specs = registry.all_specs()[:2]
        assert select_shard(specs, 3, 5) == []

    def test_invalid_bounds_raise(self):
        with pytest.raises(OrchestrationError):
            select_shard(registry.all_specs(), 0, 2)
        with pytest.raises(OrchestrationError):
            select_shard(registry.all_specs(), 3, 2)
