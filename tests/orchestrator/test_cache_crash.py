"""Crash-safety tests for the result cache's atomic write protocol.

Chaos pins the worst instants: a hard kill between the temp write and the
rename must leave no committed entry (only a reclaimable ``.tmp-*`` file),
and a corrupted commit must degrade to a cache miss — never to a torn
result being served.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from repro.experiments.orchestrator import registry
from repro.experiments.orchestrator.cache import (
    CACHE_DIR_ENV_VAR,
    TEMP_FILE_MAX_AGE_SECONDS,
    ResultCache,
)
from repro.experiments.orchestrator.engine import execute_spec
from repro.testing.chaos import (
    CHAOS_CRASH_EXIT_CODE,
    CHAOS_ENV_VAR,
    reset_chaos,
)

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

STORE_SCRIPT = """
import sys
from repro.experiments.orchestrator import registry
from repro.experiments.orchestrator.cache import ResultCache
from repro.experiments.orchestrator.engine import execute_spec

spec = registry.get_spec("example1")
result = execute_spec(spec)
cache = ResultCache(sys.argv[1])
key = cache.key_for(spec, spec.params_dict(), None)
cache.store(key, result)
print("stored", key)
"""


@pytest.fixture(autouse=True)
def _fresh_chaos(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
    reset_chaos()
    yield
    reset_chaos()


def _entries(directory):
    try:
        names = os.listdir(directory)
    except OSError:
        return [], []
    committed = [n for n in names if n.endswith(".json") and not n.startswith(".tmp-")]
    temps = [n for n in names if n.startswith(".tmp-")]
    return committed, temps


class TestCrashDuringStore:
    def test_kill_between_temp_write_and_rename_commits_nothing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        env = dict(os.environ)
        env[CHAOS_ENV_VAR] = "crash:1@cache-write"
        env.pop(CACHE_DIR_ENV_VAR, None)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", STORE_SCRIPT, cache_dir],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == CHAOS_CRASH_EXIT_CODE, completed.stderr
        committed, temps = _entries(cache_dir)
        assert committed == []  # the rename never happened
        assert len(temps) == 1  # the torn write is visible only as a temp file

        # Readers see a plain miss.
        cache = ResultCache(cache_dir)
        spec = registry.get_spec("example1")
        key = cache.key_for(spec, spec.params_dict(), None)
        assert cache.load(key) is None
        assert len(cache) == 0

        # A fresh temp file may belong to a live writer: prune keeps it.
        assert cache.prune().removed_temp_files == 0
        # Once it is older than any plausible writer, prune reclaims it.
        stale = time.time() - TEMP_FILE_MAX_AGE_SECONDS - 60
        temp_path = os.path.join(cache_dir, temps[0])
        os.utime(temp_path, (stale, stale))
        report = cache.prune()
        assert report.removed_temp_files == 1
        assert _entries(cache_dir) == ([], [])

    def test_store_retry_after_crash_round_trips(self, tmp_path):
        """The writer that dies is simply retried; the retry commits."""
        cache_dir = str(tmp_path / "cache")
        cache = ResultCache(cache_dir)
        spec = registry.get_spec("example1")
        result = execute_spec(spec)
        key = cache.key_for(spec, spec.params_dict(), None)
        cache.store(key, result)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.cached is True
        assert loaded.canonical_dict() == result.canonical_dict()


class TestCorruptCommit:
    def test_corrupted_entry_degrades_to_a_miss_and_is_prunable(
        self, tmp_path, monkeypatch
    ):
        cache_dir = str(tmp_path / "cache")
        cache = ResultCache(cache_dir)
        spec = registry.get_spec("example1")
        result = execute_spec(spec)
        key = cache.key_for(spec, spec.params_dict(), None)

        monkeypatch.setenv(CHAOS_ENV_VAR, "corrupt:1@cache-write")
        reset_chaos()
        cache.store(key, result)
        monkeypatch.delenv(CHAOS_ENV_VAR)
        reset_chaos()

        committed, _ = _entries(cache_dir)
        assert len(committed) == 1  # the garbage *was* committed...
        assert cache.load(key) is None  # ...but loads degrade to a miss
        stats = cache.stats()
        assert stats.entries == 0
        assert stats.stale_entries == 1  # unreadable provenance counts stale
        report = cache.prune()
        assert report.removed_entries == 1

        # After pruning, a clean store repairs the entry.
        cache.store(key, result)
        assert cache.load(key) is not None
