"""Tests for the content-addressed result cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.orchestrator import ResultCache, execute_spec
from repro.experiments.orchestrator import registry
from repro.experiments.orchestrator.cache import default_cache_dir


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


def figure1_spec():
    return registry.get_spec("figure1")


class TestKeying:
    def test_key_is_stable(self, cache):
        spec = figure1_spec()
        params = spec.params_dict()
        assert cache.key_for(spec, params, None) == cache.key_for(spec, params, None)

    def test_key_changes_with_params(self, cache):
        spec = figure1_spec()
        base = cache.key_for(spec, spec.params_dict(), None)
        tweaked = spec.params_dict(spec.params_type(max_residual_miners=10))
        assert cache.key_for(spec, tweaked, None) != base

    def test_backend_keys_split_only_for_sensitive_specs(self, cache):
        sensitive = registry.get_spec("safety_violation")
        params = sensitive.params_dict()
        assert cache.key_for(sensitive, params, "python") != cache.key_for(
            sensitive, params, "numpy"
        )
        insensitive = figure1_spec()
        params = insensitive.params_dict()
        assert cache.key_for(insensitive, params, "python") == cache.key_for(
            insensitive, params, "numpy"
        )

    def test_keys_differ_across_experiments(self, cache):
        first = figure1_spec()
        second = registry.get_spec("example1")
        assert cache.key_for(first, first.params_dict(), None) != cache.key_for(
            second, second.params_dict(), None
        )


class TestStoreAndLoad:
    def test_round_trip_preserves_canonical_json(self, cache):
        spec = figure1_spec()
        result = execute_spec(spec)
        key = cache.key_for(spec, spec.params_dict(), None)
        cache.store(key, result)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.cached is True
        assert loaded.canonical_json() == result.canonical_json()

    def test_missing_key_is_a_miss(self, cache):
        assert cache.load("0" * 64) is None

    def test_corrupt_entry_degrades_to_a_miss(self, cache, tmp_path):
        spec = figure1_spec()
        key = cache.key_for(spec, spec.params_dict(), None)
        cache.store(key, execute_spec(spec))
        path = os.path.join(cache.directory, f"{key}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        assert cache.load(key) is None

    def test_non_object_json_entry_is_a_miss(self, cache):
        spec = figure1_spec()
        key = cache.key_for(spec, spec.params_dict(), None)
        cache.store(key, execute_spec(spec))
        path = os.path.join(cache.directory, f"{key}.json")
        for payload in ("null", "[1, 2]", '"text"'):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)
            assert cache.load(key) is None

    def test_truncated_document_is_a_miss(self, cache):
        spec = figure1_spec()
        key = cache.key_for(spec, spec.params_dict(), None)
        cache.store(key, execute_spec(spec))
        path = os.path.join(cache.directory, f"{key}.json")
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        del document["experiment_id"]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        assert cache.load(key) is None

    def test_len_counts_committed_entries(self, cache):
        assert len(cache) == 0
        spec = figure1_spec()
        cache.store(cache.key_for(spec, spec.params_dict(), None), execute_spec(spec))
        assert len(cache) == 1


class TestDefaultDirectory:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == str(tmp_path / "env-cache")
        assert ResultCache().directory == str(tmp_path / "env-cache")

    def test_fallback_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == ".repro-cache"
