"""Tests for the content-addressed result cache."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments.orchestrator import ResultCache, execute_spec
from repro.experiments.orchestrator import registry
from repro.experiments.orchestrator import cache as cache_module
from repro.experiments.orchestrator.cache import (
    code_fingerprint,
    default_cache_dir,
    invalidate_code_fingerprint,
    refresh_code_fingerprint,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


def figure1_spec():
    return registry.get_spec("figure1")


class TestKeying:
    def test_key_is_stable(self, cache):
        spec = figure1_spec()
        params = spec.params_dict()
        assert cache.key_for(spec, params, None) == cache.key_for(spec, params, None)

    def test_key_changes_with_params(self, cache):
        spec = figure1_spec()
        base = cache.key_for(spec, spec.params_dict(), None)
        tweaked = spec.params_dict(spec.params_type(max_residual_miners=10))
        assert cache.key_for(spec, tweaked, None) != base

    def test_backend_keys_split_only_for_sensitive_specs(self, cache):
        sensitive = registry.get_spec("safety_violation")
        params = sensitive.params_dict()
        assert cache.key_for(sensitive, params, "python") != cache.key_for(
            sensitive, params, "numpy"
        )
        insensitive = figure1_spec()
        params = insensitive.params_dict()
        assert cache.key_for(insensitive, params, "python") == cache.key_for(
            insensitive, params, "numpy"
        )

    def test_keys_differ_across_experiments(self, cache):
        first = figure1_spec()
        second = registry.get_spec("example1")
        assert cache.key_for(first, first.params_dict(), None) != cache.key_for(
            second, second.params_dict(), None
        )


class TestStoreAndLoad:
    def test_round_trip_preserves_canonical_json(self, cache):
        spec = figure1_spec()
        result = execute_spec(spec)
        key = cache.key_for(spec, spec.params_dict(), None)
        cache.store(key, result)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.cached is True
        assert loaded.canonical_json() == result.canonical_json()

    def test_missing_key_is_a_miss(self, cache):
        assert cache.load("0" * 64) is None

    def test_corrupt_entry_degrades_to_a_miss(self, cache, tmp_path):
        spec = figure1_spec()
        key = cache.key_for(spec, spec.params_dict(), None)
        cache.store(key, execute_spec(spec))
        path = os.path.join(cache.directory, f"{key}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        assert cache.load(key) is None

    def test_non_object_json_entry_is_a_miss(self, cache):
        spec = figure1_spec()
        key = cache.key_for(spec, spec.params_dict(), None)
        cache.store(key, execute_spec(spec))
        path = os.path.join(cache.directory, f"{key}.json")
        for payload in ("null", "[1, 2]", '"text"'):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)
            assert cache.load(key) is None

    def test_truncated_document_is_a_miss(self, cache):
        spec = figure1_spec()
        key = cache.key_for(spec, spec.params_dict(), None)
        cache.store(key, execute_spec(spec))
        path = os.path.join(cache.directory, f"{key}.json")
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        del document["experiment_id"]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        assert cache.load(key) is None

    def test_len_counts_committed_entries(self, cache):
        assert len(cache) == 0
        spec = figure1_spec()
        cache.store(cache.key_for(spec, spec.params_dict(), None), execute_spec(spec))
        assert len(cache) == 1


class TestFingerprintHooks:
    def test_fingerprint_is_memoized(self):
        assert code_fingerprint() == code_fingerprint()

    def test_invalidate_forces_a_recompute_to_the_same_value(self):
        before = code_fingerprint()
        invalidate_code_fingerprint()
        assert cache_module._package_fingerprint_cache is None
        assert code_fingerprint() == before

    def test_refresh_reports_false_on_stable_source(self):
        code_fingerprint()
        assert refresh_code_fingerprint() is False

    def test_refresh_reports_true_when_the_memo_went_stale(self, monkeypatch):
        monkeypatch.setattr(cache_module, "_package_fingerprint_cache", "0" * 64)
        assert refresh_code_fingerprint() is True

    def test_refresh_with_cold_memo_reports_false(self, monkeypatch):
        monkeypatch.setattr(cache_module, "_package_fingerprint_cache", None)
        assert refresh_code_fingerprint() is False

    def test_keys_change_with_the_fingerprint(self, cache, monkeypatch):
        spec = figure1_spec()
        params = spec.params_dict()
        before = cache.key_for(spec, params, None)
        monkeypatch.setattr(cache_module, "_package_fingerprint_cache", "0" * 64)
        assert cache.key_for(spec, params, None) != before

    def test_explicit_fingerprint_pins_the_key(self, cache, monkeypatch):
        spec = figure1_spec()
        params = spec.params_dict()
        pinned = cache.key_for(spec, params, None, fingerprint="f" * 64)
        # The pinned key ignores whatever the memo says.
        monkeypatch.setattr(cache_module, "_package_fingerprint_cache", "0" * 64)
        assert cache.key_for(spec, params, None, fingerprint="f" * 64) == pinned
        assert cache.key_for(spec, params, None) != pinned

    def test_store_records_an_explicit_fingerprint(self, cache):
        spec = figure1_spec()
        pinned = "f" * 64
        key = cache.key_for(spec, spec.params_dict(), None, fingerprint=pinned)
        cache.store(key, execute_spec(spec), fingerprint=pinned)
        path = os.path.join(cache.directory, f"{key}.json")
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle)["code_fingerprint"] == pinned
        # Not the current fingerprint, so prune() reclaims it — the entry is
        # consistent: unreachable key, stale recorded fingerprint.
        assert cache.prune().removed_entries == 1


class TestPruneAndStats:
    def _store_one(self, cache):
        spec = figure1_spec()
        key = cache.key_for(spec, spec.params_dict(), None)
        cache.store(key, execute_spec(spec))
        return key

    def test_entries_record_the_current_fingerprint(self, cache):
        key = self._store_one(cache)
        with open(os.path.join(cache.directory, f"{key}.json"), encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["code_fingerprint"] == code_fingerprint()

    def test_stats_counts_live_entries(self, cache):
        self._store_one(cache)
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.stale_entries == 0
        assert stats.temp_files == 0
        assert stats.total_bytes > 0

    def test_stats_on_missing_directory_is_empty(self, tmp_path):
        stats = ResultCache(str(tmp_path / "never-created")).stats()
        assert (stats.entries, stats.stale_entries, stats.temp_files) == (0, 0, 0)

    def test_prune_keeps_live_entries(self, cache):
        key = self._store_one(cache)
        report = cache.prune()
        assert report.removed_entries == 0
        assert report.kept_entries == 1
        assert cache.load(key) is not None

    def test_prune_removes_entries_orphaned_by_a_source_edit(self, cache, monkeypatch):
        key = self._store_one(cache)
        # Simulate a source edit after the entry was written: the current
        # fingerprint no longer matches the one recorded in the entry.
        monkeypatch.setattr(cache_module, "_package_fingerprint_cache", "0" * 64)
        stats = cache.stats()
        assert stats.entries == 0
        assert stats.stale_entries == 1
        report = cache.prune()
        assert report.removed_entries == 1
        assert report.kept_entries == 0
        assert report.freed_bytes > 0
        assert len(cache) == 0
        assert os.path.exists(os.path.join(cache.directory, f"{key}.json")) is False

    def test_prune_removes_leaked_temp_files(self, cache):
        self._store_one(cache)
        leaked = os.path.join(cache.directory, ".tmp-leaked.json")
        with open(leaked, "w", encoding="utf-8") as handle:
            handle.write("{}")
        two_hours_ago = time.time() - 7200
        os.utime(leaked, (two_hours_ago, two_hours_ago))
        report = cache.prune()
        assert report.removed_temp_files == 1
        assert report.kept_entries == 1
        assert not os.path.exists(leaked)

    def test_prune_keeps_fresh_temp_files(self, cache):
        # A fresh temp file is a store() in flight somewhere — deleting it
        # would break that writer's atomic rename.
        self._store_one(cache)
        in_flight = os.path.join(cache.directory, ".tmp-in-flight.json")
        with open(in_flight, "w", encoding="utf-8") as handle:
            handle.write("{}")
        report = cache.prune()
        assert report.removed_temp_files == 0
        assert os.path.exists(in_flight)
        assert cache.stats().temp_files == 0

    def test_prune_removes_pre_fingerprint_entries(self, cache):
        key = self._store_one(cache)
        path = os.path.join(cache.directory, f"{key}.json")
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        del document["code_fingerprint"]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        report = cache.prune()
        assert report.removed_entries == 1

    def test_clear_removes_entries_and_leaked_temps(self, cache):
        self._store_one(cache)
        leaked = os.path.join(cache.directory, ".tmp-x.json")
        with open(leaked, "w") as handle:
            handle.write("{}")
        two_hours_ago = time.time() - 7200
        os.utime(leaked, (two_hours_ago, two_hours_ago))
        report = cache.clear()
        assert report.removed_entries == 1
        assert report.removed_temp_files == 1
        assert len(cache) == 0

    def test_clear_keeps_fresh_temp_files(self, cache):
        # Same rule as prune(): a young .tmp-* file is a store() in flight
        # (possibly in another process); clear() unlinking it would make
        # that writer's atomic os.replace blow up.  Regression test for
        # clear() deleting temps regardless of age.
        self._store_one(cache)
        in_flight = os.path.join(cache.directory, ".tmp-in-flight.json")
        with open(in_flight, "w", encoding="utf-8") as handle:
            handle.write("{}")
        report = cache.clear()
        assert report.removed_entries == 1
        assert report.removed_temp_files == 0
        assert os.path.exists(in_flight)

    def test_store_in_flight_survives_a_concurrent_clear(self, cache):
        # Simulate the interleaving directly: a writer has created its temp
        # file but not yet renamed it when clear() runs.  The rename must
        # still succeed and commit the entry.
        import tempfile

        result = execute_spec(figure1_spec())
        key = cache.key_for(figure1_spec(), figure1_spec().params_dict(), "python")
        os.makedirs(cache.directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=cache.directory
        )
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(result.canonical_dict(), handle)
        cache.clear()
        os.replace(temp_path, os.path.join(cache.directory, f"{key}.json"))

    def test_invalidate_removes_one_entry(self, cache):
        key = self._store_one(cache)
        assert cache.invalidate(key) is True
        assert cache.load(key) is None
        assert cache.invalidate(key) is False

    def test_invalidate_rejects_path_traversal(self, cache, tmp_path):
        outside = tmp_path / "outside.json"
        outside.write_text("{}")
        assert cache.invalidate("../outside") is False
        assert cache.invalidate("") is False
        assert outside.exists()

    def test_prune_on_missing_directory_is_a_no_op(self, tmp_path):
        report = ResultCache(str(tmp_path / "never-created")).prune()
        assert report.removed_entries == 0
        assert report.removed_temp_files == 0


class TestDefaultDirectory:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == str(tmp_path / "env-cache")
        assert ResultCache().directory == str(tmp_path / "env-cache")

    def test_fallback_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == ".repro-cache"
