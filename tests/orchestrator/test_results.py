"""Tests for ExperimentResult serialization and the RESULTS.json document."""

from __future__ import annotations

import json

import pytest

from repro.analysis.report import Table
from repro.core.exceptions import OrchestrationError
from repro.experiments.orchestrator import (
    ExperimentResult,
    execute_spec,
    jsonify,
    load_results_document,
    merge_results_documents,
    results_document,
    write_results_document,
)
from repro.experiments.orchestrator import registry


def small_result(experiment_id="demo", value=1.5) -> ExperimentResult:
    table = Table(headers=("metric", "value"), title="t")
    table.add_row("v", value)
    return ExperimentResult(
        experiment_id=experiment_id,
        params={"x": 1},
        tables=(table,),
        metrics={"value": value, "ok": True},
        backend=None,
        seed=3,
        wall_time_seconds=0.5,
        cached=False,
    )


class TestJsonify:
    def test_scalars_pass_through(self):
        assert jsonify({"a": 1, "b": 1.5, "c": True, "d": None, "e": "x"}) == {
            "a": 1,
            "b": 1.5,
            "c": True,
            "d": None,
            "e": "x",
        }

    def test_tuples_become_lists(self):
        assert jsonify((1, (2, 3))) == [1, [2, 3]]

    def test_numpy_scalars_unwrap(self):
        numpy = pytest.importorskip("numpy")
        assert jsonify(numpy.float64(0.25)) == 0.25
        assert jsonify(numpy.int64(7)) == 7
        out = jsonify({"flag": numpy.bool_(True)})
        assert out == {"flag": True}

    def test_non_string_keys_rejected(self):
        with pytest.raises(OrchestrationError, match="non-string key"):
            jsonify({1: "a"})

    def test_unserializable_values_rejected(self):
        with pytest.raises(OrchestrationError):
            jsonify({"x": object()})

    def test_non_finite_floats_rejected(self):
        with pytest.raises(OrchestrationError):
            jsonify(float("nan"))


class TestExperimentResultSerialization:
    def test_canonical_excludes_volatile_fields(self):
        result = small_result()
        canonical = result.canonical_dict()
        assert "wall_time_seconds" not in canonical
        assert "cached" not in canonical
        full = result.to_dict()
        assert full["wall_time_seconds"] == 0.5
        assert full["cached"] is False

    def test_volatile_fields_do_not_change_canonical_json(self):
        result = small_result()
        other = result.with_volatile(wall_time_seconds=99.0, cached=True)
        assert result.canonical_json() == other.canonical_json()

    def test_from_dict_round_trip(self):
        result = small_result()
        rebuilt = ExperimentResult.from_dict(result.to_dict())
        assert rebuilt.canonical_json() == result.canonical_json()
        assert rebuilt.wall_time_seconds == result.wall_time_seconds

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(OrchestrationError):
            ExperimentResult.from_dict({"tables": []})

    def test_real_experiment_round_trips_through_json_text(self):
        result = execute_spec(registry.get_spec("example1"))
        rebuilt = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.canonical_json() == result.canonical_json()


class TestResultsDocument:
    def test_document_shape(self):
        document = results_document([small_result("a"), small_result("b")], shard="1/2")
        assert document["schema_version"] == 1
        assert sorted(document["results"]) == ["a", "b"]
        assert document["run"]["experiments"] == ["a", "b"]
        assert document["run"]["shards"] == ["1/2"]
        assert document["run"]["cached"] == {"a": False, "b": False}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(OrchestrationError, match="duplicate"):
            results_document([small_result("a"), small_result("a")])

    def test_merge_unions_disjoint_documents(self):
        merged = merge_results_documents(
            [
                results_document([small_result("a")], shard="1/2"),
                results_document([small_result("b")], shard="2/2"),
            ]
        )
        assert sorted(merged["results"]) == ["a", "b"]
        assert merged["run"]["shards"] == ["1/2", "2/2"]

    def test_merge_accepts_identical_overlap(self):
        document = results_document([small_result("a")])
        merged = merge_results_documents([document, document])
        assert sorted(merged["results"]) == ["a"]

    def test_merge_rejects_conflicting_overlap(self):
        left = results_document([small_result("a", value=1.0)])
        right = results_document([small_result("a", value=2.0)])
        with pytest.raises(OrchestrationError, match="conflicting"):
            merge_results_documents([left, right])

    def test_merge_rejects_empty_input(self):
        with pytest.raises(OrchestrationError):
            merge_results_documents([])

    def test_merge_rejects_wrong_schema(self):
        with pytest.raises(OrchestrationError, match="schema_version"):
            merge_results_documents([{"schema_version": 99, "results": {}}])


class TestWriteAndLoad:
    def test_write_then_load(self, tmp_path):
        path = str(tmp_path / "RESULTS.json")
        write_results_document(results_document([small_result("a")]), path)
        document = load_results_document(path)
        assert sorted(document["results"]) == ["a"]

    def test_merge_mode_accumulates(self, tmp_path):
        path = str(tmp_path / "RESULTS.json")
        write_results_document(results_document([small_result("a")], shard="1/2"), path)
        write_results_document(
            results_document([small_result("b")], shard="2/2"), path, merge=True
        )
        document = load_results_document(path)
        assert sorted(document["results"]) == ["a", "b"]
        assert document["run"]["shards"] == ["1/2", "2/2"]

    def test_merge_into_missing_file_writes_fresh(self, tmp_path):
        path = str(tmp_path / "RESULTS.json")
        write_results_document(results_document([small_result("a")]), path, merge=True)
        assert sorted(load_results_document(path)["results"]) == ["a"]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "RESULTS.json"
        path.write_text("{ not json", encoding="utf-8")
        with pytest.raises(OrchestrationError):
            load_results_document(str(path))

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "RESULTS.json"
        path.write_text(json.dumps({"schema_version": 99}), encoding="utf-8")
        with pytest.raises(OrchestrationError):
            load_results_document(str(path))

    def test_load_rejects_non_object_json(self, tmp_path):
        path = tmp_path / "RESULTS.json"
        for payload in ("null", "[1, 2]"):
            path.write_text(payload, encoding="utf-8")
            with pytest.raises(OrchestrationError, match="JSON object"):
                load_results_document(str(path))

    def test_from_dict_rejects_non_object(self):
        for document in (None, [1, 2], "text"):
            with pytest.raises(OrchestrationError):
                ExperimentResult.from_dict(document)
