"""Tests for the simulated remote-attestation pipeline (Section III-B, Remark 3)."""

from __future__ import annotations

import pytest

from repro.attestation.binding import BoundVote, VoteKeyBinder, derive_vote_key, sign_vote
from repro.attestation.device import AttestationDevice, DeviceType
from repro.attestation.privacy import (
    PrivateCensusAggregator,
    commit_configuration,
    open_commitment,
)
from repro.attestation.quote import measure_configuration, produce_quote
from repro.attestation.registry import AttestationRegistry
from repro.attestation.verifier import AttestationVerifier
from repro.core.configuration import ReplicaConfiguration
from repro.core.exceptions import AttestationError


@pytest.fixture
def verifier() -> AttestationVerifier:
    return AttestationVerifier()


@pytest.fixture
def device(verifier) -> AttestationDevice:
    device = AttestationDevice("dev-1", DeviceType.SGX)
    verifier.register_device(device)
    return device


def _attest(verifier, device, replica_id, configuration, **kwargs):
    nonce = verifier.issue_nonce()
    return produce_quote(device, replica_id, configuration, nonce, **kwargs)


class TestMeasurementAndQuotes:
    def test_measurement_is_deterministic(self, linux_alpha_config):
        assert measure_configuration(linux_alpha_config) == measure_configuration(
            linux_alpha_config
        )

    def test_different_configurations_have_different_measurements(
        self, linux_alpha_config, freebsd_beta_config
    ):
        assert measure_configuration(linux_alpha_config) != measure_configuration(
            freebsd_beta_config
        )

    def test_valid_quote_verifies(self, verifier, device, linux_alpha_config):
        quote = _attest(verifier, device, "r1", linux_alpha_config)
        result = verifier.verify(quote)
        assert result.valid
        assert result.attested_configuration == linux_alpha_config

    def test_intact_device_refuses_to_lie(self, verifier, device, linux_alpha_config, freebsd_beta_config):
        with pytest.raises(AttestationError):
            _attest(verifier, device, "r1", linux_alpha_config, lie_about=freebsd_beta_config)

    def test_compromised_device_can_lie_and_still_verifies(
        self, verifier, device, linux_alpha_config, freebsd_beta_config
    ):
        device.compromise()
        quote = _attest(
            verifier, device, "r1", linux_alpha_config, lie_about=freebsd_beta_config
        )
        result = verifier.verify(quote)
        # The verifier cannot tell: this is exactly the TEE-compromise threat.
        assert result.valid
        assert result.attested_configuration == freebsd_beta_config


class TestVerifierPolicies:
    def test_unknown_device_rejected(self, verifier, linux_alpha_config):
        rogue = AttestationDevice("rogue", DeviceType.TPM)
        nonce = verifier.issue_nonce()
        quote = produce_quote(rogue, "r1", linux_alpha_config, nonce)
        assert not verifier.verify(quote).valid

    def test_revoked_device_rejected(self, verifier, device, linux_alpha_config):
        quote = _attest(verifier, device, "r1", linux_alpha_config)
        verifier.revoke_device(device.device_id)
        assert not verifier.verify(quote).valid
        assert verifier.is_revoked(device.device_id)

    def test_untrusted_firmware_rejected(self, verifier, linux_alpha_config):
        device = AttestationDevice("dev-fw", DeviceType.SGX, firmware_version="2.17")
        verifier.register_device(device)
        verifier.distrust_firmware("2.17")
        quote = _attest(verifier, device, "r1", linux_alpha_config)
        result = verifier.verify(quote)
        assert not result.valid
        assert "firmware" in result.reason

    def test_nonce_replay_rejected(self, verifier, device, linux_alpha_config):
        quote = _attest(verifier, device, "r1", linux_alpha_config)
        assert verifier.verify(quote).valid
        assert not verifier.verify(quote).valid  # same nonce, replay

    def test_unknown_nonce_rejected(self, verifier, device, linux_alpha_config):
        quote = produce_quote(device, "r1", linux_alpha_config, "made-up-nonce")
        result = verifier.verify(quote)
        assert not result.valid
        assert "nonce" in result.reason

    def test_tampered_signature_rejected(self, verifier, device, linux_alpha_config):
        quote = _attest(verifier, device, "r1", linux_alpha_config)
        tampered = type(quote)(
            replica_id=quote.replica_id,
            device_id=quote.device_id,
            measurement=quote.measurement,
            nonce=quote.nonce,
            firmware_version=quote.firmware_version,
            signature="0" * 64,
            claimed_configuration=quote.claimed_configuration,
        )
        assert not verifier.verify(tampered).valid

    def test_duplicate_device_registration_rejected(self, verifier, device):
        with pytest.raises(AttestationError):
            verifier.register_device(AttestationDevice("dev-1"))


class TestVoteKeyBinding:
    def test_bind_and_verify_vote(self, verifier, device, linux_alpha_config):
        binder = VoteKeyBinder(verifier)
        key = derive_vote_key("r1", "seed")
        quote = _attest(verifier, device, "r1", linux_alpha_config)
        attested = binder.bind(quote, key)
        assert attested == linux_alpha_config
        vote = binder.cast_vote("r1", key, "ballot-A")
        assert binder.verify_vote(vote)
        assert binder.configuration_of("r1") == linux_alpha_config

    def test_vote_with_wrong_key_rejected(self, verifier, device, linux_alpha_config):
        binder = VoteKeyBinder(verifier)
        quote = _attest(verifier, device, "r1", linux_alpha_config)
        binder.bind(quote, derive_vote_key("r1", "seed"))
        forged = BoundVote(
            replica_id="r1",
            ballot="ballot-A",
            signature=sign_vote(derive_vote_key("r1", "other-seed"), "ballot-A"),
        )
        assert not binder.verify_vote(forged)

    def test_unbound_replica_vote_rejected(self, verifier):
        binder = VoteKeyBinder(verifier)
        vote = BoundVote("ghost", "ballot", "sig")
        assert not binder.verify_vote(vote)
        with pytest.raises(AttestationError):
            binder.cast_vote("ghost", "key", "ballot")

    def test_bind_fails_on_bad_quote(self, verifier, linux_alpha_config):
        binder = VoteKeyBinder(verifier)
        rogue = AttestationDevice("rogue")
        quote = produce_quote(rogue, "r1", linux_alpha_config, "bad-nonce")
        with pytest.raises(AttestationError):
            binder.bind(quote, "key")

    def test_attested_weight(self, verifier, device, linux_alpha_config):
        binder = VoteKeyBinder(verifier)
        quote = _attest(verifier, device, "r1", linux_alpha_config)
        binder.bind(quote, "key")
        assert binder.attested_weight({"r1": 5.0, "r2": 3.0}) == pytest.approx(5.0)


class TestPrivacy:
    def test_commitment_opens_correctly(self, linux_alpha_config):
        commitment, blinding = commit_configuration("r1", linux_alpha_config)
        assert open_commitment(commitment, linux_alpha_config, blinding)

    def test_commitment_is_binding(self, linux_alpha_config, freebsd_beta_config):
        commitment, blinding = commit_configuration("r1", linux_alpha_config)
        assert not open_commitment(commitment, freebsd_beta_config, blinding)
        assert not open_commitment(commitment, linux_alpha_config, "wrong-blinding")

    def test_commitment_is_hiding(self, linux_alpha_config):
        first, _ = commit_configuration("r1", linux_alpha_config, blinding="salt-1")
        second, _ = commit_configuration("r1", linux_alpha_config, blinding="salt-2")
        assert first.digest != second.digest

    def test_private_census(self, linux_alpha_config, freebsd_beta_config):
        aggregator = PrivateCensusAggregator()
        for replica_id, config, weight in (
            ("r1", linux_alpha_config, 2.0),
            ("r2", linux_alpha_config, 1.0),
            ("r3", freebsd_beta_config, 1.0),
        ):
            commitment, blinding = commit_configuration(replica_id, config)
            aggregator.submit_commitment(commitment, weight=weight)
            aggregator.reveal(replica_id, config, blinding)
        census = aggregator.census()
        assert census.support_size() == 2
        assert census.share(linux_alpha_config) == pytest.approx(0.75)
        assert aggregator.revealed_fraction() == pytest.approx(1.0)

    def test_bad_reveal_rejected(self, linux_alpha_config, freebsd_beta_config):
        aggregator = PrivateCensusAggregator()
        commitment, blinding = commit_configuration("r1", linux_alpha_config)
        aggregator.submit_commitment(commitment)
        with pytest.raises(AttestationError):
            aggregator.reveal("r1", freebsd_beta_config, blinding)

    def test_census_requires_openings(self):
        with pytest.raises(AttestationError):
            PrivateCensusAggregator().census()


class TestRegistry:
    def test_attested_and_declared_power(self, verifier, device, linux_alpha_config, freebsd_beta_config):
        registry = AttestationRegistry(verifier)
        quote = _attest(verifier, device, "r1", linux_alpha_config)
        registry.register_attested(quote, power=3.0)
        registry.register_declared("r2", freebsd_beta_config, power=1.0)
        assert registry.attested_power() == pytest.approx(3.0)
        assert registry.declared_power() == pytest.approx(1.0)
        assert registry.attested_fraction() == pytest.approx(0.75)
        assert len(registry) == 2

    def test_census_weighting(self, verifier, device, linux_alpha_config, freebsd_beta_config):
        registry = AttestationRegistry(verifier)
        quote = _attest(verifier, device, "r1", linux_alpha_config)
        registry.register_attested(quote, power=1.0)
        registry.register_declared("r2", freebsd_beta_config, power=1.0)
        boosted = registry.census(attested_weight=3.0, declared_weight=1.0)
        assert boosted.share(linux_alpha_config) == pytest.approx(0.75)
        attested_only = registry.census(attested_only=True)
        assert attested_only.support_size() == 1

    def test_registry_to_population(self, verifier, device, linux_alpha_config):
        registry = AttestationRegistry(verifier)
        quote = _attest(verifier, device, "r1", linux_alpha_config)
        registry.register_attested(quote, power=2.0)
        population = registry.to_population()
        assert population.total_power() == pytest.approx(2.0)
        assert population.get("r1").attested

    def test_bad_quote_not_registered(self, verifier, linux_alpha_config):
        registry = AttestationRegistry(verifier)
        rogue = AttestationDevice("rogue")
        quote = produce_quote(rogue, "r1", linux_alpha_config, "nonce")
        with pytest.raises(AttestationError):
            registry.register_attested(quote)
        assert "r1" not in registry

    def test_remove(self, verifier, device, linux_alpha_config):
        registry = AttestationRegistry(verifier)
        registry.register_declared("r9", linux_alpha_config)
        registry.remove("r9")
        assert "r9" not in registry
        with pytest.raises(AttestationError):
            registry.remove("r9")
