"""Tests for the Monte-Carlo estimator, sweep helpers and report tables."""

from __future__ import annotations

import pytest

from repro.analysis.monte_carlo import (
    analytic_single_vulnerability_violation,
    estimate_violation_probability,
    violation_probability_by_entropy,
)
from repro.analysis.report import Table, format_series, format_table
from repro.analysis.sweep import (
    crossover_parameter,
    is_monotonic,
    numeric_summary,
    sweep,
)
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import AnalysisError
from repro.core.resilience import ProtocolFamily
from repro.datasets.generators import uniform_distribution


class TestMonteCarlo:
    def test_monoculture_violation_probability_equals_vulnerability_probability(self):
        census = ConfigurationDistribution({"only": 1.0})
        estimate = estimate_violation_probability(
            census, vulnerability_probability=0.3, trials=5000, seed=1
        )
        assert estimate.violation_probability == pytest.approx(0.3, abs=0.03)

    def test_uniform_census_with_small_shares_never_violates_with_one_exploit(self):
        estimate = estimate_violation_probability(
            uniform_distribution(64),
            vulnerability_probability=0.9,
            exploit_budget=1,
            trials=500,
        )
        assert estimate.violation_probability == 0.0

    def test_larger_exploit_budget_increases_risk(self):
        census = uniform_distribution(4)  # each share is 1/4, below 1/3
        single = estimate_violation_probability(
            census, vulnerability_probability=0.5, exploit_budget=1, trials=2000, seed=2
        )
        double = estimate_violation_probability(
            census, vulnerability_probability=0.5, exploit_budget=2, trials=2000, seed=2
        )
        assert single.violation_probability == 0.0
        assert double.violation_probability > 0.3

    def test_majority_tolerance_is_harder_to_violate(self):
        census = ConfigurationDistribution({"a": 0.4, "b": 0.3, "c": 0.3})
        bft = estimate_violation_probability(
            census, family=ProtocolFamily.BFT, vulnerability_probability=0.5, trials=2000, seed=3
        )
        majority = estimate_violation_probability(
            census,
            family=ProtocolFamily.NAKAMOTO,
            vulnerability_probability=0.5,
            trials=2000,
            seed=3,
        )
        assert majority.violation_probability <= bft.violation_probability

    def test_estimate_matches_analytic_single_exploit_case(self):
        census = ConfigurationDistribution({"big": 0.5, "small-1": 0.25, "small-2": 0.25})
        probability = 0.4
        estimate = estimate_violation_probability(
            census,
            family=ProtocolFamily.BFT,
            vulnerability_probability=probability,
            exploit_budget=1,
            trials=8000,
            seed=4,
        )
        analytic = analytic_single_vulnerability_violation(
            census, vulnerability_probability=probability, tolerated_fraction=1 / 3
        )
        assert estimate.violation_probability == pytest.approx(analytic, abs=0.02)

    def test_violation_probability_by_entropy_is_sorted(self):
        rows = violation_probability_by_entropy(
            {
                "uniform-32": uniform_distribution(32),
                "monoculture": ConfigurationDistribution({"a": 1.0}),
            },
            trials=200,
        )
        assert rows[0][1] <= rows[1][1]

    def test_parameter_validation(self):
        census = uniform_distribution(4)
        with pytest.raises(AnalysisError):
            estimate_violation_probability(census, vulnerability_probability=1.5)
        with pytest.raises(AnalysisError):
            estimate_violation_probability(census, trials=0)
        with pytest.raises(AnalysisError):
            estimate_violation_probability(census, exploit_budget=-1)
        with pytest.raises(AnalysisError):
            analytic_single_vulnerability_violation(
                census, vulnerability_probability=0.5, tolerated_fraction=0.0
            )


class TestSweep:
    def test_sweep_preserves_order_and_values(self):
        result = sweep([1, 2, 3], lambda x: x * x, parameter_name="n")
        assert result.parameters() == (1, 2, 3)
        assert result.values() == (1, 4, 9)
        assert result.value_at(2) == 4
        assert len(result) == 3

    def test_value_at_unknown_parameter_raises(self):
        result = sweep([1], lambda x: x)
        with pytest.raises(AnalysisError):
            result.value_at(99)

    def test_empty_sweep_rejected(self):
        with pytest.raises(AnalysisError):
            sweep([], lambda x: x)

    def test_numeric_summary(self):
        summary = numeric_summary([1.0, 3.0, 2.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["span"] == pytest.approx(2.0)

    def test_is_monotonic(self):
        assert is_monotonic([1, 2, 2, 3])
        assert not is_monotonic([1, 3, 2])
        assert is_monotonic([3, 2, 1], increasing=False)

    def test_crossover_parameter(self):
        result = sweep([1, 2, 3, 4], lambda x: float(x))
        found, parameter = crossover_parameter(result, threshold=3.0)
        assert found and parameter == 3
        found, parameter = crossover_parameter(result, threshold=10.0)
        assert not found and parameter == 4


class TestReport:
    def test_table_rendering_alignment(self):
        table = Table(headers=("name", "value"))
        table.add_row("alpha", 1.23456)
        table.add_row("beta", 2)
        rendered = table.render()
        lines = rendered.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "alpha" in lines[2]
        assert "1.2346" in rendered  # default 4 float digits

    def test_bool_cells_render_as_yes_no(self):
        table = Table(headers=("check",))
        table.add_row(True)
        table.add_row(False)
        assert "yes" in table.render()
        assert "no" in table.render()

    def test_row_length_mismatch_rejected(self):
        table = Table(headers=("a", "b"))
        with pytest.raises(AnalysisError):
            table.add_row(1)

    def test_format_table_requires_headers(self):
        with pytest.raises(AnalysisError):
            format_table((), [])

    def test_format_series(self):
        rendered = format_series("entropy", [(1, 2.5), (2, 2.75)])
        assert "entropy" in rendered
        assert "2.7500" in rendered

    def test_extend(self):
        table = Table(headers=("a", "b"))
        table.extend([(1, 2), (3, 4)])
        assert len(table) == 2


class TestParallelExecution:
    """Parallel fan-out must be a pure performance knob: identical results."""

    def test_parallel_sweep_matches_serial(self):
        serial = sweep([1, 2, 3, 4, 5], lambda x: x * x, parameter_name="n")
        parallel = sweep(
            [1, 2, 3, 4, 5], lambda x: x * x, parameter_name="n", parallel=True
        )
        assert parallel.points == serial.points
        assert parallel.parameter_name == "n"

    def test_parallel_sweep_with_bounded_workers(self):
        result = sweep(range(8), lambda x: -x, parallel=True, max_workers=2)
        assert result.values() == tuple(-x for x in range(8))

    def test_parallel_empty_sweep_rejected(self):
        with pytest.raises(AnalysisError):
            sweep([], lambda x: x, parallel=True)

    def test_parallel_violation_probability_by_entropy_matches_serial(self):
        censuses = {
            "monoculture": ConfigurationDistribution({"a": 1.0}),
            "duopoly": ConfigurationDistribution({"a": 0.6, "b": 0.4}),
            "uniform-16": uniform_distribution(16),
            "uniform-32": uniform_distribution(32),
        }
        serial = violation_probability_by_entropy(censuses, trials=300, seed=13)
        parallel = violation_probability_by_entropy(
            censuses, trials=300, seed=13, parallel=True, max_workers=3
        )
        assert parallel == serial

    def test_parallel_safety_violation_experiment_matches_serial(self):
        from repro.experiments.safety_violation import run_safety_violation

        censuses = {
            "duopoly": ConfigurationDistribution({"a": 0.7, "b": 0.3}),
            "uniform-8": uniform_distribution(8),
            "uniform-64": uniform_distribution(64),
        }
        serial = run_safety_violation(censuses=censuses, trials=300)
        parallel = run_safety_violation(censuses=censuses, trials=300, parallel=True)
        assert parallel == serial


class TestBenchmarkHarness:
    def test_benchmark_backends_reports_each_backend(self):
        from repro.analysis.benchmark import benchmark_backends
        from repro.backend import available_backends

        report = benchmark_backends(trials=200, configs=20, repeats=1)
        assert {timing.backend for timing in report.timings} == set(available_backends())
        for timing in report.timings:
            assert timing.seconds > 0
            assert timing.trials_per_second > 0
        assert report.speedup_over_python("python") == pytest.approx(1.0)

    def test_benchmark_snapshot_roundtrip(self, tmp_path):
        import json

        from repro.analysis.benchmark import benchmark_backends, write_snapshot

        report = benchmark_backends(trials=100, configs=10, repeats=1)
        path = tmp_path / "BENCH.json"
        write_snapshot(report, str(path))
        document = json.loads(path.read_text())
        assert document["benchmark"] == "monte_carlo_estimator"
        assert document["workload"]["trials"] == 100
        assert "python" in document["results"]

    def test_benchmark_rejects_invalid_workload(self):
        from repro.analysis.benchmark import benchmark_backends

        with pytest.raises(AnalysisError):
            benchmark_backends(trials=0)
        with pytest.raises(AnalysisError):
            benchmark_backends(repeats=0)
        with pytest.raises(AnalysisError):
            benchmark_backends(backends=())

    def test_mapping_sweep_enumerates_in_order(self):
        from repro.analysis.sweep import mapping_sweep

        items = {"a": 10, "b": 20, "c": 30}
        serial = mapping_sweep(items, lambda i, k, v: (i, k, v * 2))
        assert serial == [(0, "a", 20), (1, "b", 40), (2, "c", 60)]
        parallel = mapping_sweep(
            items, lambda i, k, v: (i, k, v * 2), parallel=True, max_workers=2
        )
        assert parallel == serial

    def test_mapping_sweep_rejects_empty_mapping(self):
        from repro.analysis.sweep import mapping_sweep

        with pytest.raises(AnalysisError):
            mapping_sweep({}, lambda i, k, v: v)
