"""Tests for the component-level diversity decomposition."""

from __future__ import annotations

import pytest

from repro.analysis.components import (
    ABSENT,
    component_census,
    component_entropy_profile,
    diversification_priority,
    exposure_by_component,
    weakest_component,
)
from repro.core.configuration import ComponentKind, ReplicaConfiguration
from repro.core.exceptions import AnalysisError
from repro.core.population import Replica, ReplicaPopulation
from repro.core.resilience import ProtocolFamily
from repro.experiments.component_exposure import exposure_table, run_component_exposure


@pytest.fixture
def mixed_population(linux_alpha_config, freebsd_beta_config) -> ReplicaPopulation:
    """Six replicas: the OS slot is diverse, the client slot is a monoculture."""
    shared_client_on_freebsd = ReplicaConfiguration.from_names(
        operating_system="freebsd",
        consensus_client="client-alpha",
        crypto_library="libsodium",
    )
    replicas = [
        Replica("a0", linux_alpha_config),
        Replica("a1", linux_alpha_config),
        Replica("a2", linux_alpha_config),
        Replica("b0", shared_client_on_freebsd),
        Replica("b1", shared_client_on_freebsd),
        Replica("c0", freebsd_beta_config),
    ]
    return ReplicaPopulation(replicas)


class TestComponentCensus:
    def test_census_over_operating_systems(self, mixed_population):
        census = component_census(mixed_population, ComponentKind.OPERATING_SYSTEM)
        assert census.share("operating_system:linux:1.0") == pytest.approx(0.5)
        assert census.share("operating_system:freebsd:1.0") == pytest.approx(0.5)

    def test_census_over_clients_shows_monoculture(self, mixed_population):
        census = component_census(mixed_population, ComponentKind.CONSENSUS_CLIENT)
        assert census.share("consensus_client:client-alpha:1.0") == pytest.approx(5 / 6)

    def test_absent_kind_is_its_own_bucket(self, small_population):
        census = component_census(small_population, ComponentKind.WALLET)
        assert census.share(ABSENT) == pytest.approx(1.0)

    def test_power_weighting(self, mixed_population):
        mixed_population.set_power("c0", 6.0)
        weighted = component_census(mixed_population, ComponentKind.OPERATING_SYSTEM)
        counted = component_census(
            mixed_population, ComponentKind.OPERATING_SYSTEM, weight_by_power=False
        )
        assert weighted.share("operating_system:freebsd:1.0") > counted.share(
            "operating_system:freebsd:1.0"
        )

    def test_empty_population_rejected(self):
        with pytest.raises(AnalysisError):
            component_census(ReplicaPopulation(), ComponentKind.WALLET)


class TestProfilesAndPriorities:
    def test_profile_covers_all_kinds(self, mixed_population):
        profiles = component_entropy_profile(mixed_population)
        kinds = {profile.kind for profile in profiles}
        assert ComponentKind.OPERATING_SYSTEM in kinds
        assert ComponentKind.CONSENSUS_CLIENT in kinds
        assert ComponentKind.CRYPTO_LIBRARY in kinds

    def test_monoculture_slot_is_flagged(self, mixed_population):
        profiles = {p.kind: p for p in component_entropy_profile(mixed_population)}
        client = profiles[ComponentKind.CONSENSUS_CLIENT]
        os_profile = profiles[ComponentKind.OPERATING_SYSTEM]
        assert client.single_fault_violates
        assert client.dominant_share == pytest.approx(5 / 6)
        # The 50/50 OS split is critical under the BFT 1/3 tolerance but much
        # less concentrated than the client monoculture.
        assert os_profile.dominant_share == pytest.approx(0.5)
        assert os_profile.entropy_bits > client.entropy_bits

    def test_diverse_population_has_no_flagged_slot(self, unique_population):
        profiles = component_entropy_profile(unique_population)
        assert not any(profile.single_fault_violates for profile in profiles)
        assert all(profile.dominant_share == pytest.approx(1 / 8) for profile in profiles)

    def test_weakest_component_is_the_client_slot(self, mixed_population):
        weakest = weakest_component(mixed_population)
        assert weakest.kind is ComponentKind.CONSENSUS_CLIENT

    def test_exposure_by_component_sorted(self, mixed_population):
        exposure = exposure_by_component(mixed_population)
        values = list(exposure.values())
        assert values == sorted(values, reverse=True)
        assert exposure["consensus_client:client-alpha:1.0"] == pytest.approx(5.0)

    def test_exposure_restricted_to_kind(self, mixed_population):
        exposure = exposure_by_component(mixed_population, kind=ComponentKind.CRYPTO_LIBRARY)
        assert all(key.startswith("crypto_library:") for key in exposure)

    def test_diversification_priority_thresholds(self, mixed_population):
        bft_priority = diversification_priority(mixed_population, family=ProtocolFamily.BFT)
        nakamoto_priority = diversification_priority(
            mixed_population, family=ProtocolFamily.NAKAMOTO
        )
        assert len(bft_priority) >= len(nakamoto_priority)
        assert all(share >= 1 / 3 for _, share in bft_priority)

    def test_diverse_population_has_empty_priority_list(self, unique_population):
        assert diversification_priority(unique_population) == ()


class TestComponentExposureExperiment:
    def test_skewed_ecosystem_has_a_critical_slot(self):
        result = run_component_exposure(population_size=200)
        assert result.skewed_has_critical_slot
        skewed = [e for e in result.ecosystems if "skewed" in e.label][0]
        default = [e for e in result.ecosystems if "default" in e.label][0]
        assert skewed.weakest_share > default.weakest_share
        assert skewed.population_entropy_bits < default.population_entropy_bits
        assert len(skewed.priority_components) >= 1

    def test_table_rendering(self):
        result = run_component_exposure(population_size=100)
        rendered = exposure_table(result).render()
        assert "component kind" in rendered
        assert "operating_system" in rendered

    def test_parameter_validation(self):
        with pytest.raises(Exception):
            run_component_exposure(population_size=5)
