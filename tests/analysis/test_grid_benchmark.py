"""Tests for the fused grid benchmark harness (``repro.cli bench-grid``)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.grid_benchmark import (
    GRID_FAMILIES,
    benchmark_grid,
    write_grid_snapshot,
)
from repro.backend import available_backends
from repro.core.exceptions import AnalysisError

SMALL = dict(
    trials=60,
    replicas=10,
    budgets=(1, 2),
    probabilities=(0.5,),
    repeats=1,
    scalar_trials=40,
)


class TestBenchmarkGrid:
    def test_every_backend_gets_fused_and_looped_timings(self):
        report = benchmark_grid(**SMALL)
        modes = {timing.mode for timing in report.timings}
        expected = {
            f"{name}_{kind}"
            for name in available_backends()
            for kind in ("fused", "looped")
        }
        assert modes == expected
        for timing in report.timings:
            assert timing.seconds > 0
            assert timing.point_trials_per_second > 0

    def test_fused_is_asserted_identical_to_looped(self):
        report = benchmark_grid(**SMALL)
        assert report.identical_fused_vs_looped is True
        assert report.grid_points == len(SMALL["budgets"]) * len(
            SMALL["probabilities"]
        )

    def test_scalar_modes_run_at_reduced_trials(self):
        report = benchmark_grid(**SMALL)
        if "python" not in available_backends():
            pytest.skip("python backend unavailable")
        assert report.timing("python_fused").trials == SMALL["scalar_trials"]
        assert report.scalar_trials == SMALL["scalar_trials"]

    def test_speedups_require_their_modes(self):
        report = benchmark_grid(backends=("python",), **SMALL)
        assert report.speedup_fused_over_looped() is None
        assert report.speedup_fused_numpy_over_scalar() is None
        if "numpy" in available_backends():
            both = benchmark_grid(**SMALL)
            assert both.speedup_fused_over_looped() > 0
            assert both.speedup_fused_numpy_over_scalar() > 0

    def test_snapshot_roundtrip(self, tmp_path):
        report = benchmark_grid(**SMALL)
        path = tmp_path / "BENCH_GRID.json"
        write_grid_snapshot(report, str(path))
        document = json.loads(path.read_text())
        assert document["benchmark"] == "grid_campaign_engine"
        assert document["workload"]["trials"] == SMALL["trials"]
        assert document["workload"]["tolerances_per_point"] == len(GRID_FAMILIES)
        assert document["identical_fused_vs_looped"] is True
        assert "python_fused" in document["results"]

    def test_snapshot_write_failure_is_an_analysis_error(self, tmp_path):
        report = benchmark_grid(backends=("python",), **SMALL)
        with pytest.raises(AnalysisError, match="cannot write"):
            write_grid_snapshot(report, str(tmp_path))  # a directory

    @pytest.mark.parametrize(
        "overrides",
        [
            {"trials": 0},
            {"replicas": 0},
            {"scalar_trials": 0},
            {"repeats": 0},
            {"budgets": ()},
            {"probabilities": ()},
            {"backends": ()},
        ],
    )
    def test_invalid_workload_rejected(self, overrides):
        with pytest.raises(AnalysisError):
            benchmark_grid(**{**SMALL, **overrides})
