"""Tests for ``Table`` serialization (the orchestrator's transport format)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.report import Table
from repro.core.exceptions import AnalysisError


def sample_table() -> Table:
    table = Table(headers=("name", "share", "critical"), float_digits=3, title="census")
    table.add_row("foundry", 0.342, True)
    table.add_row("antpool", 0.2, False)
    table.add_row("rest", 0.458, False)
    return table


class TestToDict:
    def test_round_trip_preserves_everything(self):
        table = sample_table()
        rebuilt = Table.from_dict(table.to_dict())
        assert rebuilt.headers == tuple(table.headers)
        assert [tuple(row) for row in rebuilt.rows] == [tuple(row) for row in table.rows]
        assert rebuilt.float_digits == table.float_digits
        assert rebuilt.title == table.title
        assert rebuilt.render() == table.render()

    def test_round_trip_through_json_text(self):
        table = sample_table()
        rebuilt = Table.from_dict(json.loads(json.dumps(table.to_dict())))
        assert rebuilt.render() == table.render()

    def test_cells_are_raw_not_formatted(self):
        table = Table(headers=("x",), float_digits=2)
        table.add_row(0.123456789)
        document = table.to_dict()
        assert document["rows"][0][0] == 0.123456789  # full precision survives

    def test_bool_cells_stay_bool_through_json(self):
        # bool is an int subclass; a sloppy serializer would collapse it and
        # the renderer would print "1" instead of "yes".
        table = Table(headers=("flag", "count"))
        table.add_row(True, 1)
        rebuilt = Table.from_dict(json.loads(json.dumps(table.to_dict())))
        cell_flag, cell_count = rebuilt.rows[0]
        assert cell_flag is True and isinstance(cell_flag, bool)
        assert cell_count == 1 and not isinstance(cell_count, bool)
        assert "yes" in rebuilt.render()

    def test_missing_title_defaults_to_none(self):
        table = Table(headers=("a",))
        assert table.to_dict()["title"] is None
        assert Table.from_dict({"headers": ["a"]}).title is None


class TestFromDictValidation:
    def test_requires_headers(self):
        with pytest.raises(AnalysisError):
            Table.from_dict({"rows": []})
        with pytest.raises(AnalysisError):
            Table.from_dict({"headers": []})

    def test_rejects_row_width_mismatch(self):
        with pytest.raises(AnalysisError):
            Table.from_dict({"headers": ["a", "b"], "rows": [[1]]})

    def test_rejects_non_sequence_row(self):
        with pytest.raises(AnalysisError):
            Table.from_dict({"headers": ["a"], "rows": ["not-a-row"]})

    def test_rejects_string_headers(self):
        # A bare string must not be split into one column per character.
        with pytest.raises(AnalysisError):
            Table.from_dict({"headers": "abc", "rows": [["x", "y", "z"]]})

    def test_rejects_non_string_title(self):
        with pytest.raises(AnalysisError):
            Table.from_dict({"headers": ["a"], "title": 7})

    def test_rejects_bad_float_digits(self):
        with pytest.raises(AnalysisError):
            Table.from_dict({"headers": ["a"], "float_digits": "many"})


class TestFormattingEdgeCases:
    def test_float_digits_honored_after_round_trip(self):
        table = Table(headers=("x",), float_digits=1)
        table.add_row(0.25)
        rebuilt = Table.from_dict(json.loads(json.dumps(table.to_dict())))
        assert "0.2" in rebuilt.render()
        assert "0.25" not in rebuilt.render()

    def test_integer_valued_float_keeps_float_formatting(self):
        table = Table(headers=("x",))
        table.add_row(1.0)
        rebuilt = Table.from_dict(json.loads(json.dumps(table.to_dict())))
        assert "1.0000" in rebuilt.render()
