"""Tests for the backend comparison harness (``bench-backends``)."""

from __future__ import annotations

import json

import pytest

pytest.importorskip("numpy")

from repro.analysis.backends_benchmark import (
    benchmark_backend_suite,
    write_backends_snapshot,
)
from repro.backend.shm_backend import ShmBackend
from repro.core.exceptions import AnalysisError

needs_shm = pytest.mark.skipif(
    not ShmBackend.is_available(), reason="shm backend unavailable here"
)

SMALL = dict(
    trials=200,
    python_trials=60,
    replicas=24,
    seed=5,
    repeats=1,
    worker_counts=(1, 2),
    sparse_size=4_000,
    sparse_trials=6,
    sparse_workers=2,
)


@pytest.fixture(scope="module")
def report():
    return benchmark_backend_suite(**SMALL)


@needs_shm
class TestBenchmarkBackendSuite:
    def test_every_configuration_is_timed_and_identical(self, report):
        labels = [timing.label for timing in report.timings]
        assert labels == ["numpy", "python", "shm[w=1]", "shm[w=2]"]
        for timing in report.timings:
            assert timing.seconds > 0
            assert timing.trials_per_second > 0
            assert timing.identical is True
        assert report.timing("python").trials == SMALL["python_trials"]
        assert report.timing("numpy").trials == SMALL["trials"]
        with pytest.raises(AnalysisError, match="not benchmarked"):
            report.timing("shm[w=64]")

    def test_speedups_are_reported_per_worker_count(self, report):
        for workers in SMALL["worker_counts"]:
            assert report.shm_speedup_over_numpy(workers) > 0
        assert report.shm_speedup_over_numpy(64) is None
        assert report.cpu_count >= 1

    def test_sparse_sweep_asserts_pruned_equals_unpruned(self, report):
        sparse = report.sparse
        assert sparse is not None
        assert sparse.population_size == SMALL["sparse_size"]
        assert sparse.nnz > 0
        assert sparse.pruned_identical_to_unpruned is True
        assert sparse.pruned_seconds > 0
        assert sparse.unpruned_seconds > 0
        assert sparse.prune_speedup() > 0
        assert sparse.peak_rss_kb > 0

    def test_memory_ceiling_gate(self):
        report = benchmark_backend_suite(**SMALL, memory_ceiling_mb=1)
        assert report.within_memory_ceiling() is False
        generous = benchmark_backend_suite(**SMALL, memory_ceiling_mb=1 << 20)
        assert generous.within_memory_ceiling() is True

    def test_no_ceiling_or_no_sparse_phase_gates_nothing(self, report):
        assert report.within_memory_ceiling() is None
        skipped = benchmark_backend_suite(**{**SMALL, "sparse_size": 0})
        assert skipped.sparse is None
        assert skipped.within_memory_ceiling() is None

    def test_skip_unpruned_control(self):
        report = benchmark_backend_suite(**SMALL, compare_unpruned=False)
        assert report.sparse.unpruned_seconds is None
        assert report.sparse.pruned_identical_to_unpruned is None
        assert report.sparse.prune_speedup() is None

    def test_snapshot_round_trip(self, report, tmp_path):
        path = tmp_path / "BENCH_10.json"
        write_backends_snapshot(report, str(path))
        document = json.loads(path.read_text())
        assert document["benchmark"] == "backend_comparison"
        assert document["workload"]["cpu_count"] == report.cpu_count
        assert set(document["results"]) == {
            "numpy",
            "python",
            "shm[w=1]",
            "shm[w=2]",
        }
        assert document["results"]["shm[w=2]"]["workers"] == 2
        assert document["sparse_sweep"]["pruned_identical_to_unpruned"] is True
        assert "1" in document["speedups_shm_over_numpy"]
        assert document["within_memory_ceiling"] is None

    def test_snapshot_write_failure_raises(self, report, tmp_path):
        with pytest.raises(AnalysisError, match="cannot write"):
            write_backends_snapshot(report, str(tmp_path / "no" / "dir.json"))

    def test_invalid_arguments_rejected(self):
        with pytest.raises(AnalysisError):
            benchmark_backend_suite(**{**SMALL, "trials": 0})
        with pytest.raises(AnalysisError):
            benchmark_backend_suite(**{**SMALL, "repeats": 0})
        with pytest.raises(AnalysisError):
            benchmark_backend_suite(**{**SMALL, "worker_counts": (0,)})
