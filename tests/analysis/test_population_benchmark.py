"""Tests for the sparse population benchmark harness (``bench-population``)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.population_benchmark import (
    benchmark_population,
    write_population_snapshot,
)
from repro.core.exceptions import AnalysisError

SMALL = dict(
    sizes=(300, 150),
    trials=8,
    seed=3,
    dense_limit=200,
    repeats=1,
)


class TestBenchmarkPopulation:
    def test_points_come_back_sorted_with_timings(self):
        report = benchmark_population(**SMALL)
        assert [point.size for point in report.points] == [150, 300]
        for point in report.points:
            assert point.nnz == point.size * 5  # one component per market
            assert 0.0 < point.density < 1.0
            assert point.build_seconds > 0
            assert point.sparse_seconds > 0
            assert point.sparse_trials_per_second > 0
            assert point.peak_rss_kb > 0
        assert report.vulnerabilities == 17
        assert report.point(300).size == 300
        with pytest.raises(AnalysisError, match="not benchmarked"):
            report.point(999)

    def test_dense_comparison_stops_at_the_limit(self):
        report = benchmark_population(**SMALL)
        compared = report.point(150)
        skipped = report.point(300)
        assert compared.identical_sparse_vs_dense is True
        assert compared.dense_seconds > 0
        assert compared.dense_trials_per_second > 0
        assert skipped.identical_sparse_vs_dense is None
        assert skipped.dense_seconds is None
        assert report.identical_sparse_vs_dense() is True

    def test_dense_limit_zero_skips_every_comparison(self):
        report = benchmark_population(**{**SMALL, "dense_limit": 0})
        assert all(
            point.identical_sparse_vs_dense is None for point in report.points
        )
        assert report.identical_sparse_vs_dense() is None

    def test_memory_ceiling_verdict(self):
        unbounded = benchmark_population(**SMALL)
        assert unbounded.within_memory_ceiling() is None
        roomy = benchmark_population(**SMALL, memory_ceiling_mb=1 << 20)
        assert roomy.within_memory_ceiling() is True
        assert roomy.peak_rss_kb() <= roomy.memory_ceiling_kb
        tight = benchmark_population(**SMALL, memory_ceiling_mb=1)
        assert tight.within_memory_ceiling() is False

    def test_snapshot_roundtrip(self, tmp_path):
        report = benchmark_population(**SMALL, memory_ceiling_mb=1024)
        path = tmp_path / "BENCH_POP.json"
        write_population_snapshot(report, str(path))
        document = json.loads(path.read_text())
        assert document["benchmark"] == "sparse_population_plane"
        assert document["workload"]["trials"] == SMALL["trials"]
        assert document["workload"]["dense_limit"] == SMALL["dense_limit"]
        assert set(document["results"]) == {"150", "300"}
        assert document["results"]["150"]["identical_sparse_vs_dense"] is True
        assert document["identical_sparse_vs_dense"] is True
        assert document["peak_rss_kb"] == report.peak_rss_kb()
        assert document["memory_ceiling_kb"] == 1024 * 1024
        assert document["within_memory_ceiling"] is True

    def test_snapshot_omits_the_ceiling_when_unset(self, tmp_path):
        report = benchmark_population(**SMALL)
        document = report.as_dict()
        assert "memory_ceiling_kb" not in document
        assert "within_memory_ceiling" not in document

    def test_snapshot_write_failure_is_an_analysis_error(self, tmp_path):
        report = benchmark_population(**SMALL)
        with pytest.raises(AnalysisError, match="cannot write"):
            write_population_snapshot(report, str(tmp_path))  # a directory

    @pytest.mark.parametrize(
        "overrides",
        [
            {"sizes": ()},
            {"sizes": (0,)},
            {"trials": 0},
            {"repeats": 0},
            {"dense_limit": -1},
            {"memory_ceiling_mb": 0},
        ],
    )
    def test_invalid_workload_rejected(self, overrides):
        with pytest.raises(AnalysisError):
            benchmark_population(**{**SMALL, **overrides})
