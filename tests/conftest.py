"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.configuration import ComponentKind, ReplicaConfiguration, SoftwareComponent
from repro.core.population import Replica, ReplicaPopulation
from repro.datasets.software_ecosystem import default_ecosystem, skewed_ecosystem
from repro.experiments.orchestrator.cache import CACHE_DIR_ENV_VAR
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.vulnerability import Severity, Vulnerability


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the orchestrator's result cache at a per-test directory.

    Keeps CLI/engine tests hermetic: no test reads another test's cache
    entries, and no test run litters the repository with ``.repro-cache/``.
    """
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "result-cache"))


@pytest.fixture
def linux_alpha_config() -> ReplicaConfiguration:
    """A concrete configuration used across fault-model tests."""
    return ReplicaConfiguration.from_names(
        operating_system="linux",
        consensus_client="client-alpha",
        crypto_library="openssl",
    )


@pytest.fixture
def freebsd_beta_config() -> ReplicaConfiguration:
    """A second configuration sharing no component with ``linux_alpha_config``."""
    return ReplicaConfiguration.from_names(
        operating_system="freebsd",
        consensus_client="client-beta",
        crypto_library="libsodium",
    )


@pytest.fixture
def small_population(linux_alpha_config, freebsd_beta_config) -> ReplicaPopulation:
    """Four replicas: three on the linux/alpha stack, one on freebsd/beta."""
    return ReplicaPopulation(
        [
            Replica("r0", linux_alpha_config, power=1.0),
            Replica("r1", linux_alpha_config, power=1.0),
            Replica("r2", linux_alpha_config, power=1.0),
            Replica("r3", freebsd_beta_config, power=1.0),
        ]
    )


@pytest.fixture
def unique_population() -> ReplicaPopulation:
    """Eight replicas, each with a unique configuration and equal power."""
    return ReplicaPopulation.with_unique_configurations(8)


@pytest.fixture
def openssl_vulnerability() -> Vulnerability:
    """A critical vulnerability in the shared crypto library."""
    return Vulnerability(
        vuln_id="CVE-TEST-OPENSSL",
        component=SoftwareComponent(ComponentKind.CRYPTO_LIBRARY, "openssl", "1.0"),
        severity=Severity.CRITICAL,
    )


@pytest.fixture
def linux_vulnerability() -> Vulnerability:
    """A vulnerability in the dominant operating system."""
    return Vulnerability(
        vuln_id="CVE-TEST-LINUX",
        component=SoftwareComponent(ComponentKind.OPERATING_SYSTEM, "linux", "1.0"),
        severity=Severity.HIGH,
    )


@pytest.fixture
def catalog(openssl_vulnerability, linux_vulnerability) -> VulnerabilityCatalog:
    """A catalog holding the two fixture vulnerabilities."""
    return VulnerabilityCatalog([openssl_vulnerability, linux_vulnerability])


@pytest.fixture
def ecosystem():
    """The default synthetic software ecosystem."""
    return default_ecosystem()


@pytest.fixture
def monoculture_ecosystem():
    """The skewed, monoculture-leaning ecosystem."""
    return skewed_ecosystem()
