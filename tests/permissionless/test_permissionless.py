"""Tests for churn, stake delegation and committee selection."""

from __future__ import annotations

import pytest

from repro.core.exceptions import MembershipError
from repro.core.population import ReplicaPopulation
from repro.datasets.software_ecosystem import default_ecosystem
from repro.permissionless.churn import ChurnModel
from repro.permissionless.committee import (
    committee_census,
    committee_population,
    compromised_seat_fraction,
    select_committee,
)
from repro.permissionless.stake import StakeRegistry


class TestChurn:
    def test_churn_is_reproducible(self, ecosystem):
        population_a = ecosystem.sample_population(50, seed=1)
        population_b = ecosystem.sample_population(50, seed=1)
        trace_a = ChurnModel(ecosystem, seed=9).run(population_a, 100)
        trace_b = ChurnModel(ecosystem, seed=9).run(population_b, 100)
        assert trace_a.entropy_series == trace_b.entropy_series

    def test_population_never_shrinks_below_minimum(self, ecosystem):
        population = ecosystem.sample_population(10, seed=2)
        ChurnModel(ecosystem, join_rate=0.0, leave_rate=1.0, seed=3).run(
            population, 50, min_population=4
        )
        assert len(population) >= 4

    def test_join_only_churn_grows_population(self, ecosystem):
        population = ecosystem.sample_population(10, seed=4)
        trace = ChurnModel(ecosystem, join_rate=1.0, leave_rate=0.0, seed=5).run(population, 30)
        assert trace.joined == 30
        assert trace.left == 0
        assert len(population) == 40

    def test_trace_records_entropy_per_step(self, ecosystem):
        population = ecosystem.sample_population(20, seed=6)
        trace = ChurnModel(ecosystem, seed=7).run(population, 25)
        assert len(trace.entropy_series) == 25
        assert trace.final_entropy == population.entropy()

    def test_invalid_rates_rejected(self, ecosystem):
        with pytest.raises(MembershipError):
            ChurnModel(ecosystem, join_rate=1.5)

    def test_zero_steps_rejected(self, ecosystem):
        population = ecosystem.sample_population(10, seed=8)
        with pytest.raises(MembershipError):
            ChurnModel(ecosystem).run(population, 0)


class TestStakeRegistry:
    def _registry(self) -> StakeRegistry:
        registry = StakeRegistry()
        registry.open_account("exchange", 0.0)
        for index in range(10):
            registry.open_account(f"user-{index}", 10.0)
        return registry

    def test_self_validation_by_default(self):
        registry = self._registry()
        power = registry.effective_power()
        assert power["user-0"] == pytest.approx(10.0)
        assert registry.delegation_fraction() == 0.0

    def test_delegation_concentrates_power(self):
        registry = self._registry()
        for index in range(8):
            registry.delegate(f"user-{index}", "exchange")
        power = registry.effective_power()
        assert power["exchange"] == pytest.approx(80.0)
        assert registry.custodian_concentration(1) == pytest.approx(0.8)
        assert registry.delegation_fraction() == pytest.approx(0.8)

    def test_delegation_reduces_validator_entropy(self):
        registry = self._registry()
        before = registry.validator_distribution().entropy()
        for index in range(8):
            registry.delegate(f"user-{index}", "exchange")
        after = registry.validator_distribution().entropy()
        assert after < before

    def test_delegation_chain_resolution(self):
        registry = StakeRegistry()
        registry.open_account("a", 5.0)
        registry.open_account("b", 0.0)
        registry.open_account("c", 0.0)
        registry.delegate("a", "b")
        registry.delegate("b", "c")
        assert registry.effective_power() == {"c": pytest.approx(5.0)}

    def test_delegation_cycle_detected(self):
        registry = StakeRegistry()
        registry.open_account("a", 5.0)
        registry.open_account("b", 1.0)
        registry.delegate("a", "b")
        registry.delegate("b", "a")
        with pytest.raises(MembershipError):
            registry.effective_power()

    def test_self_delegation_rejected(self):
        registry = StakeRegistry()
        registry.open_account("a", 5.0)
        with pytest.raises(MembershipError):
            registry.delegate("a", "a")

    def test_unknown_delegate_rejected(self):
        registry = StakeRegistry()
        registry.open_account("a", 5.0)
        with pytest.raises(MembershipError):
            registry.delegate("a", "ghost")

    def test_duplicate_account_rejected(self):
        registry = StakeRegistry()
        registry.open_account("a", 5.0)
        with pytest.raises(MembershipError):
            registry.open_account("a", 1.0)

    def test_power_ledger_conversion(self):
        registry = self._registry()
        ledger = registry.power_ledger()
        assert ledger.total_power() == pytest.approx(100.0)


class TestCommittees:
    def test_committee_size(self, unique_population):
        committee = select_committee(unique_population, seats=20, seed=1)
        assert committee.total_seats == 20
        assert sum(seats for _, seats in committee.seats_by_member) == 20

    def test_selection_is_deterministic_given_seed(self, unique_population):
        a = select_committee(unique_population, seats=10, seed=5)
        b = select_committee(unique_population, seats=10, seed=5)
        assert a.seats_by_member == b.seats_by_member

    def test_power_weighted_selection_favours_heavy_replicas(self):
        population = ReplicaPopulation.with_unique_configurations(10)
        population.set_power("replica-0", 1000.0)
        committee = select_committee(population, seats=50, seed=2)
        assert committee.seats_of("replica-0") > 25

    def test_committee_population_power_equals_seats(self, unique_population):
        committee = select_committee(unique_population, seats=12, seed=3)
        population = committee_population(unique_population, committee)
        assert population.total_power() == pytest.approx(12.0)

    def test_committee_census_entropy_bounded_by_population(self, unique_population):
        committee = select_committee(unique_population, seats=16, seed=4)
        census = committee_census(unique_population, committee)
        assert census.entropy() <= unique_population.entropy() + 1e-9

    def test_compromised_seat_fraction(self, unique_population):
        committee = select_committee(unique_population, seats=10, seed=6)
        members = [replica_id for replica_id, _ in committee.seats_by_member]
        fraction = compromised_seat_fraction(committee, members[:1])
        assert 0.0 < fraction <= 1.0
        assert compromised_seat_fraction(committee, []) == 0.0

    def test_invalid_committee_parameters(self, unique_population):
        with pytest.raises(MembershipError):
            select_committee(unique_population, seats=0)
        with pytest.raises(MembershipError):
            select_committee(ReplicaPopulation(), seats=5)
