"""End-to-end integration tests spanning several subsystems.

Each test follows a complete pipeline a user of the library would run:
ecosystem -> population -> attestation -> census -> campaign -> protocol run
-> verdict, checking that the pieces compose and that the verdicts agree with
the analytical safety condition.
"""

from __future__ import annotations

import pytest

from repro.attestation.device import AttestationDevice
from repro.attestation.quote import produce_quote
from repro.attestation.registry import AttestationRegistry
from repro.attestation.verifier import AttestationVerifier
from repro.bft.runner import run_consensus
from repro.core.population import ReplicaPopulation
from repro.core.resilience import ProtocolFamily, analyze_resilience
from repro.datasets.bitcoin_pools import figure1_distribution
from repro.datasets.software_ecosystem import default_ecosystem, skewed_ecosystem
from repro.diversity.monitor import DiversityMonitor
from repro.diversity.planner import EntropyPlanner
from repro.faults.campaign import ExploitCampaign
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.injection import FaultSchedule
from repro.nakamoto.attack import majority_takeover
from repro.nakamoto.miner import Miner, miners_as_population
from repro.nakamoto.simulation import MiningSimulation
from repro.permissionless.committee import committee_population, select_committee


class TestAnalyticalPipeline:
    def test_monoculture_ecosystem_fails_single_vulnerability_analysis(self):
        population = skewed_ecosystem().sample_population(100, seed=1)
        catalog = VulnerabilityCatalog.for_population(population)
        campaign = ExploitCampaign(population, catalog)
        outcome = campaign.run_worst_case(max_vulnerabilities=1)
        report = campaign.resilience_report(outcome, family=ProtocolFamily.BFT)
        assert not report.safe
        assert outcome.compromised_fraction > 1 / 3

    def test_planner_deployment_survives_single_vulnerability(self):
        planner = EntropyPlanner([f"cfg-{i}" for i in range(16)])
        plan = planner.plan(64)
        population = ReplicaPopulation.with_unique_configurations(1)  # placeholder replaced below
        # Build the population the plan describes: one replica per assignment slot.
        population = ReplicaPopulation(
            ReplicaPopulation.with_unique_configurations(64).replicas()
        )
        census = plan.as_distribution()
        assert max(census.probabilities()) < 1 / 3
        # With every configuration below the tolerance, no single fault can
        # violate the condition.
        worst_share = max(census.probabilities())
        report = analyze_resilience(
            population,
            {"worst": worst_share * population.total_power()},
            family=ProtocolFamily.BFT,
        )
        assert report.safe

    def test_attestation_census_feeds_the_monitor(self):
        ecosystem = default_ecosystem()
        population = ecosystem.sample_population(40, seed=3)
        verifier = AttestationVerifier()
        registry = AttestationRegistry(verifier)
        for replica in population:
            device = AttestationDevice(f"dev-{replica.replica_id}")
            verifier.register_device(device)
            quote = produce_quote(
                device, replica.replica_id, replica.configuration, verifier.issue_nonce()
            )
            registry.register_attested(quote, power=replica.power)
        census = registry.census()
        assert census.entropy() == pytest.approx(population.entropy(), abs=1e-9)
        monitor = DiversityMonitor()
        # The default ecosystem is diverse enough to avoid the critical alert.
        alerts = monitor.evaluate(census)
        assert all(alert.severity != "critical" for alert in alerts)


class TestProtocolPipeline:
    def test_campaign_to_consensus_safety_cliff(self):
        # A population where one shared client covers 5 of 7 replicas.
        population = ReplicaPopulation.with_unique_configurations(7, prefix="node")
        shared = population.get("node-0").configuration
        for replica_id in ("node-2", "node-3", "node-5", "node-6"):
            population.update(population.get(replica_id).with_configuration(shared))
        catalog = VulnerabilityCatalog.for_population(population)
        campaign = ExploitCampaign(population, catalog)
        outcome = campaign.run_worst_case(max_vulnerabilities=1)
        schedule = FaultSchedule.from_campaign(outcome)
        result = run_consensus(population, schedule, protocol="pbft")
        analytic = campaign.resilience_report(outcome, family=ProtocolFamily.BFT)
        assert not analytic.safe
        assert not result.safety_ok

    def test_honest_committee_subset_still_agrees(self, unique_population):
        committee = select_committee(unique_population, seats=8, seed=11)
        members = committee_population(unique_population, committee)
        result = run_consensus(members.replica_ids(), protocol="pbft")
        assert result.safety_ok


class TestNakamotoPipeline:
    def test_figure1_census_matches_miner_population(self):
        distribution = figure1_distribution(50)
        miners = [
            Miner(str(key), share * 100.0) for key, share in distribution.shares().items()
        ]
        population = miners_as_population(miners)
        assert population.entropy() == pytest.approx(distribution.entropy(), abs=1e-9)

    def test_shared_pool_vulnerability_enables_double_spend(self):
        miners = [
            Miner("pool-a", 30.0),
            Miner("pool-b", 25.0),
            Miner("pool-c", 20.0),
            Miner("small-1", 15.0),
            Miner("small-2", 10.0),
        ]
        # pools a-c run the same coordination software: one exploit captures 75%.
        compromised = ["pool-a", "pool-b", "pool-c"]
        takeover = majority_takeover(
            {miner.miner_id: miner.hash_power for miner in miners}, compromised
        )
        assert takeover.majority
        simulation = MiningSimulation(miners, seed=13)
        result = simulation.run_double_spend(compromised, confirmations=6)
        assert result.attack_succeeded

    def test_isolated_pool_compromise_rarely_succeeds(self):
        miners = [Miner(f"pool-{i}", 10.0) for i in range(10)]
        simulation = MiningSimulation(miners, seed=17)
        success_rate = simulation.estimate_attack_success(
            ["pool-0"], confirmations=6, trials=40
        )
        assert success_rate < 0.1
