"""Property-based tests on protocol-level invariants (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bft.quorum import QuorumModel, QuorumSpec
from repro.bft.runner import run_consensus
from repro.core.distribution import ConfigurationDistribution
from repro.core.resilience import ProtocolFamily, SafetyCondition
from repro.faults.injection import FaultSchedule
from repro.nakamoto.attack import double_spend_success_probability


class TestQuorumProperties:
    @given(st.integers(min_value=4, max_value=400))
    def test_classic_quorum_intersection_contains_an_honest_replica(self, n):
        spec = QuorumSpec(total_replicas=n, model=QuorumModel.CLASSIC)
        # Two quorums intersect in at least f+1 replicas, so with at most f
        # Byzantine replicas at least one honest replica is in the intersection.
        assert 2 * spec.quorum_size - n >= spec.fault_bound + 1

    @given(st.integers(min_value=3, max_value=400))
    def test_hybrid_quorum_intersection_is_nonempty(self, n):
        spec = QuorumSpec(total_replicas=n, model=QuorumModel.HYBRID)
        assert 2 * spec.quorum_size - n >= 1

    @given(st.integers(min_value=4, max_value=400))
    def test_fault_bound_is_maximal(self, n):
        spec = QuorumSpec(total_replicas=n)
        assert 3 * spec.fault_bound + 1 <= n
        assert 3 * (spec.fault_bound + 1) + 1 > n


class TestSafetyConditionProperties:
    @given(
        st.integers(min_value=4, max_value=100),
        st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=10),
    )
    def test_condition_monotone_in_compromised_power(self, n, faults):
        condition = SafetyCondition.for_replica_count(n, ProtocolFamily.BFT)
        if condition.is_safe(faults + [1.0]):
            assert condition.is_safe(faults)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=20))
    def test_double_spend_probability_is_a_probability(self, fraction, confirmations):
        value = double_spend_success_probability(fraction, confirmations)
        assert 0.0 <= value <= 1.0

    @given(st.floats(min_value=0.0, max_value=0.49), st.integers(min_value=1, max_value=15))
    def test_double_spend_probability_decreases_with_confirmations(self, fraction, z):
        assert double_spend_success_probability(fraction, z + 1) <= (
            double_spend_success_probability(fraction, z) + 1e-12
        )


class TestCensusEntropyProperties:
    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=2, max_size=40),
        st.integers(min_value=2, max_value=10),
    )
    def test_splitting_any_share_never_reduces_entropy(self, weights, parts):
        distribution = ConfigurationDistribution(
            {f"c{i}": w for i, w in enumerate(weights)}
        )
        split = distribution.split_configuration("c0", parts)
        assert split.entropy() >= distribution.entropy() - 1e-9


class TestSimulatedConsensusProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=4, max_value=7),
        st.data(),
    )
    def test_safety_holds_whenever_faults_respect_the_bound(self, n, data):
        ids = [f"r{i}" for i in range(n)]
        spec = QuorumSpec(total_replicas=n)
        byzantine = data.draw(
            st.lists(st.sampled_from(ids), max_size=spec.fault_bound, unique=True)
        )
        result = run_consensus(ids, FaultSchedule.byzantine(byzantine), protocol="pbft")
        assert result.within_fault_bound
        assert result.safety_ok

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=4, max_value=7))
    def test_honest_runs_always_decide(self, n):
        ids = [f"r{i}" for i in range(n)]
        for protocol in ("pbft", "hotstuff"):
            result = run_consensus(ids, protocol=protocol)
            assert result.safety_ok
            assert result.all_honest_decided
