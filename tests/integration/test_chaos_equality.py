"""Golden byte-equality under injected faults.

The acceptance bar for the resilience layer: a parallel run whose workers
are being hard-killed by the chaos harness must produce results that are
*byte-identical* to a clean serial run. Retries may burn wall-clock, never
bits.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import cli
from repro.experiments.orchestrator import registry
from repro.experiments.orchestrator.engine import run_experiments
from repro.testing.chaos import (
    CHAOS_ENV_VAR,
    CHAOS_ONCE_ENV_VAR,
    reset_chaos,
)

FAST_IDS = ("example1", "proposition1", "protocol_safety")


@pytest.fixture(autouse=True)
def _fresh_chaos(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
    monkeypatch.delenv(CHAOS_ONCE_ENV_VAR, raising=False)
    reset_chaos()
    yield
    reset_chaos()


def _specs():
    return [registry.get_spec(experiment_id) for experiment_id in FAST_IDS]


class TestEngineEquality:
    def test_killed_workers_do_not_change_results(self, tmp_path, monkeypatch):
        baseline = run_experiments(_specs())
        monkeypatch.setenv(CHAOS_ENV_VAR, "crash:1:1@task")
        monkeypatch.setenv(CHAOS_ONCE_ENV_VAR, str(tmp_path / "once"))
        reset_chaos()  # forked workers re-read the env; the parent is serial
        chaotic = run_experiments(
            _specs(), parallel=True, max_workers=2, retries=3
        )
        assert [r.canonical_dict() for r in chaotic] == [
            r.canonical_dict() for r in baseline
        ]

    def test_chaos_error_faults_are_retried_transparently(
        self, tmp_path, monkeypatch
    ):
        baseline = run_experiments(_specs())
        monkeypatch.setenv(CHAOS_ENV_VAR, "corrupt:1:2@task")
        monkeypatch.setenv(CHAOS_ONCE_ENV_VAR, str(tmp_path / "once"))
        reset_chaos()
        chaotic = run_experiments(
            _specs(), parallel=True, max_workers=2, retries=3
        )
        assert [r.canonical_dict() for r in chaotic] == [
            r.canonical_dict() for r in baseline
        ]


class TestCliEquality:
    def _results_section(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["schema_version"]
        return json.dumps(document["results"], sort_keys=True)

    def test_cli_results_are_byte_identical_under_chaos(
        self, tmp_path, monkeypatch, capsys
    ):
        serial_path = str(tmp_path / "serial.json")
        chaos_path = str(tmp_path / "chaos.json")

        code = cli.main(
            [
                "run",
                *FAST_IDS,
                "--quiet",
                "--no-cache",
                "--results",
                serial_path,
            ]
        )
        assert code == 0

        monkeypatch.setenv(CHAOS_ENV_VAR, "crash:1:1@task")
        monkeypatch.setenv(CHAOS_ONCE_ENV_VAR, str(tmp_path / "once"))
        reset_chaos()
        code = cli.main(
            [
                "run",
                *FAST_IDS,
                "--quiet",
                "--no-cache",
                "--parallel",
                "--jobs",
                "2",
                "--retries",
                "3",
                "--results",
                chaos_path,
            ]
        )
        assert code == 0
        capsys.readouterr()

        assert self._results_section(chaos_path) == self._results_section(
            serial_path
        )
        # At least one chaos once-token was actually claimed: the run we
        # compared really did survive a fault.
        tokens = os.listdir(str(tmp_path / "once"))
        assert tokens

    def test_negative_retries_is_a_usage_error(self, capsys):
        code = cli.main(["run", "example1", "--quiet", "--retries", "-1"])
        assert code == 2
        assert "--retries" in capsys.readouterr().err
