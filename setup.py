"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments without network access to PyPI
(legacy editable installs via ``pip install -e . --no-build-isolation
--no-use-pep517`` fall back to ``setup.py develop``, which only needs a local
setuptools).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Fault Independence in Blockchain' (DSN 2023): "
        "entropy-based replica diversity, fault-independence analysis, and "
        "simulated BFT/Nakamoto substrates."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=[],
    extras_require={
        # Vectorized compute backend (REPRO_BACKEND=numpy); the library is
        # fully functional without it via the pure-Python fallback.
        "fast": ["numpy>=1.22"],
        # Benchmark suite (pytest benchmarks/ --benchmark-only).
        "bench": ["pytest-benchmark"],
    },
)
