"""Permissionless membership: churn, delegation and committee selection.

Shows the three permissionless mechanisms the paper's system model covers and
how each one interacts with fault independence:

1. open join/leave churn drifts the configuration census (nobody manages it);
2. stake delegation to a few custodians collapses the effective validator
   diversity (the oligopoly problem, proof-of-stake flavour);
3. a power-weighted committee inherits — and can amplify — the population's
   lack of diversity, so a single shared fault can control a super-threshold
   fraction of committee seats.

Run with::

    python examples/permissionless_committee.py
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction
from repro.datasets.software_ecosystem import default_ecosystem, skewed_ecosystem
from repro.diversity.monitor import DiversityMonitor
from repro.permissionless.churn import ChurnModel
from repro.permissionless.committee import committee_census, select_committee
from repro.permissionless.stake import StakeRegistry


def churn_section() -> None:
    ecosystem = default_ecosystem()
    population = ecosystem.sample_population(60, seed=1)
    print("== churn: the census is a moving target ==")
    print(f"initial entropy : {population.entropy():.4f} bits over {len(population)} replicas")
    trace = ChurnModel(ecosystem, join_rate=0.6, leave_rate=0.4, seed=2).run(population, 200)
    print(f"after 200 steps : {trace.final_entropy:.4f} bits over {len(population)} replicas "
          f"(drift {trace.entropy_drift:+.4f} bits, {trace.joined} joins / {trace.left} leaves)")
    print()


def delegation_section() -> None:
    registry = StakeRegistry()
    registry.open_account("exchange-1", 0.0)
    registry.open_account("exchange-2", 0.0)
    for index in range(40):
        registry.open_account(f"holder-{index}", 25.0)
    print("== stake delegation: the custodian oligopoly ==")
    print(f"validator entropy, everyone self-validates : "
          f"{registry.validator_distribution().entropy():.4f} bits")
    for index in range(30):
        registry.delegate(f"holder-{index}", "exchange-1" if index % 2 else "exchange-2")
    print(f"validator entropy, 75% of stake delegated  : "
          f"{registry.validator_distribution().entropy():.4f} bits")
    print(f"stake held by the two custodians           : "
          f"{registry.custodian_concentration(2):.0%}")
    print()


def committee_section() -> None:
    ecosystem = skewed_ecosystem()
    population = ecosystem.sample_population(500, seed=3)
    committee = select_committee(population, seats=100, seed=4)
    census = committee_census(population, committee)
    tolerance = tolerated_fault_fraction(ProtocolFamily.BFT)
    largest_key, largest_share = census.largest(1)[0]

    print("== committee selection over a monoculture-leaning population ==")
    table = Table(headers=("quantity", "value"))
    table.add_row("population entropy (bits)", population.entropy())
    table.add_row("committee seats", committee.total_seats)
    table.add_row("distinct committee members", len(committee))
    table.add_row("committee census entropy (bits)", census.entropy())
    table.add_row("largest committee fault domain", largest_share)
    table.add_row("BFT tolerance", tolerance)
    table.add_row("one shared fault can break the committee", largest_share >= tolerance)
    print(table.render())
    print()

    monitor = DiversityMonitor(family=ProtocolFamily.BFT)
    alerts = monitor.evaluate(census)
    print(f"diversity monitor alerts on the committee census: {len(alerts)}")
    for alert in alerts:
        print(f"  [{alert.severity}] {alert.code}: {alert.message}")


def main() -> None:
    churn_section()
    delegation_section()
    committee_section()


if __name__ == "__main__":
    main()
