"""Bitcoin mining-pool diversity: the paper's Example 1 / Figure 1 workload.

Reproduces the paper's headline analysis on the 02-Feb-2023 pool snapshot:

- the best-case entropy of the Bitcoin mining-power distribution as the
  residual 0.87% of hash power is spread over more and more miners;
- the comparison against an 8-replica BFT system with unique configurations;
- what a single compromised pool-software stack would mean for the
  honest-majority assumption (majority takeover + double-spend probability).

Run with::

    python examples/bitcoin_diversity.py
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.datasets.bitcoin_pools import (
    BITCOIN_POOL_SHARES_FEB_2023,
    bitcoin_pool_distribution,
    figure1_distribution,
)
from repro.experiments.example1 import run_example1
from repro.experiments.figure1 import run_figure1
from repro.nakamoto.attack import majority_takeover
from repro.nakamoto.miner import Miner
from repro.nakamoto.simulation import MiningSimulation


def print_pool_snapshot() -> None:
    table = Table(headers=("pool", "hash power (%)"), float_digits=3)
    for name, share in BITCOIN_POOL_SHARES_FEB_2023:
        table.add_row(name, share)
    print("== 02 Feb 2023 mining-pool snapshot (Example 1) ==")
    print(table.render())
    print()
    distribution = bitcoin_pool_distribution()
    print(f"pool-only entropy: {distribution.entropy():.4f} bits "
          f"(effective pools: {distribution.effective_configurations():.2f})")
    print()


def print_figure1() -> None:
    result = run_figure1(max_residual_miners=1000)
    table = Table(headers=("residual miners (x)", "entropy (bits)"))
    for x in (1, 10, 50, 101, 250, 500, 1000):
        table.add_row(x, result.entropy_at(x))
    print("== Figure 1: best-case entropy vs residual miner count ==")
    print(table.render())
    print(f"maximum over the sweep: {result.max_entropy_bits:.4f} bits "
          f"(8-replica BFT reference: 3.0000 bits)")
    print()


def print_example1() -> None:
    result = run_example1()
    print("== Example 1 verdict ==")
    print(f"Bitcoin best-case entropy  : {result.bitcoin_best_entropy_bits:.4f} bits")
    print(f"8-replica BFT entropy      : {result.bft8_entropy_bits:.4f} bits")
    print(f"Bitcoin below the BFT line : {result.bitcoin_below_bft8}")
    print()


def print_shared_pool_software_attack() -> None:
    # Suppose the top three pools run the same coordination software and a
    # zero-day appears in it: the attacker inherits their combined hash power.
    distribution = figure1_distribution(100)
    power = {key: share * 100 for key, share in distribution.shares().items()}
    compromised = ["foundry-usa", "antpool", "f2pool"]
    takeover = majority_takeover(power, compromised)
    print("== shared pool-software compromise (top 3 pools) ==")
    print(f"compromised hash power : {takeover.compromised_fraction:.1%}")
    print(f"honest-majority broken : {takeover.majority}")
    print(f"P[double spend, 6 conf]: {takeover.double_spend_probability:.4f}")

    miners = [Miner(name, value) for name, value in power.items()]
    simulation = MiningSimulation(miners, seed=7)
    result = simulation.run_double_spend(compromised, confirmations=6)
    print(f"simulated attack        : "
          f"{'succeeded' if result.attack_succeeded else 'failed'} "
          f"after {result.total_blocks} blocks "
          f"({result.reverted_blocks} confirmations reverted)")


def main() -> None:
    print_pool_snapshot()
    print_figure1()
    print_example1()
    print_shared_pool_software_attack()


if __name__ == "__main__":
    main()
