"""Diversity management: planning, vulnerability response and the two-class policy.

Three scenarios built on the diversity subpackage:

1. a Lazarus-style managed (permissioned) deployment: plan an
   entropy-maximizing assignment, then respond to a vulnerability disclosure
   by migrating exposed replicas;
2. the unmanaged permissionless alternative: market-driven configuration
   choices and the safety risk they carry;
3. the paper's concluding proposal: attested and non-attested replica classes
   with different voting weights.

Run with::

    python examples/diversity_planning.py
"""

from __future__ import annotations

from repro.analysis.monte_carlo import estimate_violation_probability
from repro.analysis.report import Table
from repro.core.configuration import ComponentKind, ReplicaConfiguration
from repro.core.resilience import ProtocolFamily
from repro.datasets.software_ecosystem import default_ecosystem
from repro.diversity.manager import DiversityManager
from repro.diversity.planner import EntropyPlanner
from repro.diversity.policy import TwoClassWeightPolicy
from repro.faults.vulnerability import make_vulnerability


def managed_deployment_section() -> None:
    candidates = [
        ReplicaConfiguration.from_names(operating_system=os_name, consensus_client=client)
        for os_name in ("linux", "freebsd", "openbsd", "windows-server")
        for client in ("client-alpha", "client-beta", "client-gamma")
    ]
    manager = DiversityManager([f"slot-{i}" for i in range(24)], candidates)
    deployment = manager.deployment()
    print("== managed (Lazarus-style) deployment ==")
    print(f"slots                : {len(manager)}")
    print(f"census entropy       : {deployment.entropy:.4f} bits")

    vulnerability = make_vulnerability(ComponentKind.OPERATING_SYSTEM, "linux")
    migrated = manager.respond_to_vulnerability(vulnerability)
    after = manager.deployment()
    print(f"linux 0-day disclosed: migrated {len(migrated)} slots "
          f"({manager.migrations_performed} migrations total)")
    print(f"entropy after        : {after.entropy:.4f} bits")
    print()


def unmanaged_section() -> None:
    ecosystem = default_ecosystem()
    labels = []
    popularity = {}
    for market in ecosystem.markets:
        for name, share in market.normalized_shares().items():
            label = f"{market.kind.value}:{name}"
            labels.append(label)
            popularity[label] = share
    planner = EntropyPlanner(labels)
    table = Table(headers=("strategy", "entropy (bits)", "largest share", "P[violation]"))
    for strategy, plan in (
        ("entropy planner", planner.plan(60)),
        ("market-driven", planner.plan_proportional(60, popularity)),
        ("monoculture", planner.plan_monoculture(60)),
    ):
        census = plan.as_distribution()
        estimate = estimate_violation_probability(
            census,
            family=ProtocolFamily.BFT,
            vulnerability_probability=0.3,
            trials=2000,
            seed=5,
        )
        table.add_row(
            strategy,
            census.entropy(),
            max(census.probabilities()),
            estimate.violation_probability,
        )
    print("== managed vs unmanaged configuration choices (60 replicas) ==")
    print(table.render())
    print()


def two_class_section() -> None:
    ecosystem = default_ecosystem()
    population = ecosystem.sample_population(200, seed=6, attested_fraction=0.35)
    table = Table(headers=("attested weight", "census entropy", "unattested effective share"))
    for ratio in (1.0, 2.0, 4.0, 8.0):
        census = TwoClassWeightPolicy(attested_weight=ratio).apply(population)
        table.add_row(ratio, census.entropy, census.unattested_worst_case_fraction)
    print("== two-class voting weights (the paper's concluding proposal) ==")
    print(table.render())


def main() -> None:
    managed_deployment_section()
    unmanaged_section()
    two_class_section()


if __name__ == "__main__":
    main()
