"""Quickstart: measure replica diversity and check the safety condition.

This walks the core loop of the library in a few dozen lines:

1. describe a replica population (who runs what, with how much voting power);
2. quantify its diversity with Shannon entropy and the other indices;
3. check Definition 1 (κ-optimal fault independence);
4. ask the Section II-C question: does any single shared vulnerability hand an
   attacker more voting power than the protocol tolerates?

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.configuration import ReplicaConfiguration
from repro.core.optimality import is_kappa_optimal, optimality_gap
from repro.core.population import Replica, ReplicaPopulation
from repro.core.resilience import ProtocolFamily
from repro.faults.campaign import ExploitCampaign, single_vulnerability_breakdown
from repro.faults.catalog import VulnerabilityCatalog


def build_population() -> ReplicaPopulation:
    """Seven replicas: five share the dominant stack, two run alternatives."""
    dominant = ReplicaConfiguration.from_names(
        operating_system="linux",
        consensus_client="client-alpha",
        crypto_library="openssl",
    )
    alternative_a = ReplicaConfiguration.from_names(
        operating_system="freebsd",
        consensus_client="client-beta",
        crypto_library="libsodium",
    )
    alternative_b = ReplicaConfiguration.from_names(
        operating_system="openbsd",
        consensus_client="client-gamma",
        crypto_library="boringssl",
    )
    replicas = [Replica(f"replica-{i}", dominant) for i in range(5)]
    replicas.append(Replica("replica-5", alternative_a))
    replicas.append(Replica("replica-6", alternative_b))
    return ReplicaPopulation(replicas)


def main() -> None:
    population = build_population()
    census = population.configuration_census()

    print("== configuration census ==")
    for configuration, share in census.largest(len(census)):
        print(f"  {share:6.1%}  {configuration.identifier}")

    print()
    print(f"Shannon entropy          : {census.entropy():.4f} bits")
    print(f"effective configurations : {census.effective_configurations():.2f}")
    print(f"kappa (distinct configs) : {census.support_size()}")
    print(f"kappa-optimal (Def. 1)?  : {is_kappa_optimal(census)}")
    print(f"entropy deficit          : {optimality_gap(census).deficit:.4f} bits")

    # One (hypothetical) vulnerability per distinct component: which of them,
    # alone, would push the compromised power past the BFT tolerance?
    catalog = VulnerabilityCatalog.for_population(population)
    breakdown = single_vulnerability_breakdown(
        population, catalog, family=ProtocolFamily.BFT
    )
    dangerous = [vuln_id for vuln_id, violates in breakdown.items() if violates]

    print()
    print("== single shared-vulnerability analysis (BFT, tolerance 1/3) ==")
    print(f"vulnerable components considered : {len(breakdown)}")
    print(f"single faults that violate safety: {len(dangerous)}")
    for vuln_id in dangerous:
        exposure = catalog.exposure(population)[vuln_id]
        print(f"  {vuln_id}  exposes {exposure:.0f}/{population.total_power():.0f} voting power")

    # The worst-case campaign, end to end.
    campaign = ExploitCampaign(population, catalog)
    outcome = campaign.run_worst_case(max_vulnerabilities=1)
    report = campaign.resilience_report(outcome, family=ProtocolFamily.BFT)
    print()
    print("== worst-case single-vulnerability campaign ==")
    print(f"compromised replicas : {sorted(outcome.compromised_replicas)}")
    print(f"compromised power    : {outcome.compromised_power:.0f} ({outcome.compromised_fraction:.0%})")
    print(f"safety condition     : {'HOLDS' if report.safe else 'VIOLATED'}")


if __name__ == "__main__":
    main()
