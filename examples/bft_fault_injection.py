"""Shared faults against simulated BFT protocols.

Builds three 7-replica deployments with decreasing diversity, assumes one
exploitable vulnerability in the most popular component of each, and runs
PBFT, the streamlined (HotStuff-style) protocol and the hybrid
(trusted-component) protocol with the resulting fault schedule.  The output
shows the safety cliff the paper's Section II-C condition describes — and how
the hybrid protocol's fate depends on whether the trusted hardware itself is
part of the shared fault domain.

Run with::

    python examples/bft_fault_injection.py
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.bft.runner import fault_bound_for, run_consensus
from repro.core.configuration import ReplicaConfiguration
from repro.core.population import Replica, ReplicaPopulation
from repro.core.resilience import ProtocolFamily
from repro.faults.campaign import ExploitCampaign
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.injection import FaultSchedule


def build_deployment(shared_indices: tuple) -> ReplicaPopulation:
    """7 replicas; the given indices share one dominant stack."""
    dominant = ReplicaConfiguration.from_names(
        operating_system="linux",
        consensus_client="client-alpha",
        crypto_library="openssl",
        trusted_hardware="intel-sgx",
    )
    replicas = []
    for index in range(7):
        if index in shared_indices:
            configuration = dominant
        else:
            configuration = ReplicaConfiguration.labeled(f"unique-{index}")
        replicas.append(Replica(f"replica-{index}", configuration))
    return ReplicaPopulation(replicas)


def main() -> None:
    deployments = {
        "diverse (no shared stack)": build_deployment(()),
        "shared stack on 2 of 7": build_deployment((0, 3)),
        "shared stack on 3 of 7": build_deployment((0, 3, 5)),
        "shared stack on 5 of 7": build_deployment((0, 2, 3, 5, 6)),
    }

    table = Table(
        headers=("deployment", "protocol", "byzantine", "f", "condition", "safety")
    )
    for name, population in deployments.items():
        catalog = VulnerabilityCatalog.for_population(population)
        campaign = ExploitCampaign(population, catalog)
        outcome = campaign.run_worst_case(max_vulnerabilities=1)
        schedule = FaultSchedule.from_campaign(outcome)
        byzantine = len(outcome.compromised_replicas)
        for protocol in ("pbft", "hotstuff", "hybrid"):
            result = run_consensus(population, schedule, protocol=protocol)
            table.add_row(
                name,
                protocol,
                byzantine,
                result.quorum.fault_bound,
                result.within_fault_bound,
                result.safety_ok,
            )
    print("== one shared vulnerability vs three protocols (intact trusted hardware) ==")
    print(table.render())
    print()

    # The hybrid protocol relies on trusted components; when the *same*
    # vulnerability also sits in the trusted hardware (an SGX-style flaw),
    # equivocation protection disappears and safety falls with fewer faults.
    population = deployments["shared stack on 3 of 7"]
    catalog = VulnerabilityCatalog.for_population(population)
    campaign = ExploitCampaign(population, catalog)
    outcome = campaign.run_worst_case(max_vulnerabilities=1)
    schedule = FaultSchedule.from_campaign(outcome)
    compromised = sorted(outcome.compromised_replicas)
    intact = run_consensus(population, schedule, protocol="hybrid")
    broken = run_consensus(
        population, schedule, protocol="hybrid", tee_compromised_ids=compromised
    )
    print("== hybrid protocol and trusted-hardware diversity ==")
    print(f"byzantine replicas          : {len(compromised)} "
          f"(f = {fault_bound_for('hybrid', 7)})")
    print(f"safety with intact TEEs     : {intact.safety_ok}")
    print(f"safety with compromised TEEs: {broken.safety_ok}")
    print()
    report = campaign.resilience_report(outcome, family=ProtocolFamily.BFT)
    print(f"analytic Section II-C verdict for classic BFT: "
          f"{'safe' if report.safe else 'violated'} "
          f"({report.compromised_fraction:.0%} of power compromised)")


if __name__ == "__main__":
    main()
