"""Shared configuration for the benchmark harness.

Every file in this directory regenerates one row of DESIGN.md §4 (one paper
figure/example/proposition or one additional analysis) under
``pytest-benchmark`` timing.  Run them with::

    pytest benchmarks/ --benchmark-only

Each benchmark asserts the qualitative *shape* of the reproduced result (who
wins, what is bounded by what) in addition to timing the regeneration, so a
benchmark run doubles as a reproduction check.
"""
