"""Benchmark: Proposition 3 abundance/resilience/overhead trade-off."""

from __future__ import annotations

from repro.experiments.prop3 import run_proposition3


def test_proposition3_abundance_sweep(benchmark):
    sweep = benchmark(
        run_proposition3,
        kappa=16,
        abundances=(1, 2, 4, 8, 16, 32, 64, 128),
        colluding_operators=3,
    )
    assert sweep.holds
    first, last = sweep.quadratic_results[0], sweep.quadratic_results[-1]
    assert last.max_rational_takeover < first.max_rational_takeover
    assert last.message_complexity > first.message_complexity
    assert last.max_exploit_takeover == first.max_exploit_takeover
