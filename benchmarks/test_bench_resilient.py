"""Benchmark: serial vs sharded campaign estimation on the resilient seam.

The sharded run pays dispatch overhead (pickling shard arguments, merging
batch results) in exchange for parallel trial evaluation, and the
counter-based RNG keeps the sharded estimate bit-identical to serial — so
the recorded timings measure pure orchestration cost, never a change in the
answer.

Run with::

    pytest benchmarks/test_bench_resilient.py --benchmark-only
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.backend import available_backends
from repro.faults.engine import BatchCampaignEngine, ShardedCampaignRun
from repro.faults.scenarios import ecosystem_scenario

TRIALS = 2_500
REPLICAS = 150

SCENARIO = ecosystem_scenario(
    ecosystem="default",
    population_size=REPLICAS,
    seed=42,
    exploit_probability=0.6,
)


def _engine(backend):
    return BatchCampaignEngine(
        SCENARIO.population, SCENARIO.catalog, backend=backend
    )


@pytest.mark.parametrize("backend", available_backends())
def test_serial_estimate_baseline(benchmark, backend):
    engine = _engine(backend)
    estimate = benchmark(engine.estimate, trials=TRIALS, seed=42)
    assert estimate.trials == TRIALS


@pytest.mark.parametrize("backend", available_backends())
def test_process_sharded_estimate(benchmark, backend):
    engine = _engine(backend)
    run = ShardedCampaignRun(engine, max_workers=4)
    estimate = benchmark(run.estimate, trials=TRIALS, seed=42)
    assert estimate == engine.estimate(trials=TRIALS, seed=42)


def test_thread_sharded_estimate(benchmark):
    engine = _engine("python")
    with ThreadPoolExecutor(max_workers=4) as executor:
        run = ShardedCampaignRun(engine, max_workers=4, executor=executor)
        estimate = benchmark(run.estimate, trials=TRIALS, seed=42)
    assert estimate == engine.estimate(trials=TRIALS, seed=42)
