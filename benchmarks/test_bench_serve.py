"""Benchmark: the result service's serving hot paths.

Times one warm round-trip (cache hit served from disk) and one conditional
round-trip (``304`` answered from the key alone, no disk) over a real
socket against a live server, with the cold build paid once outside the
timed region.  Run with::

    pytest benchmarks/test_bench_serve.py --benchmark-only
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import BenchClient, ServiceMetrics
from repro.serve.server import ResultServer

PATH = "/experiments/example1"


@pytest.fixture(scope="module")
def warm_server(tmp_path_factory):
    """A running server whose cache already holds the benchmark experiment."""
    loop = asyncio.new_event_loop()
    server = ResultServer(
        host="127.0.0.1",
        port=0,
        jobs=1,
        cache_dir=str(tmp_path_factory.mktemp("serve-bench-cache")),
        refresh_interval=0.0,
        metrics=ServiceMetrics(),
    )
    loop.run_until_complete(server.start())

    async def _warm():
        async with BenchClient("127.0.0.1", server.port) as client:
            response = await client.get(PATH)
            assert response.status == 200
            return response.header("etag")

    etag = loop.run_until_complete(_warm())
    try:
        yield loop, server, etag
    finally:
        loop.run_until_complete(server.stop())
        # Let the per-connection handler tasks observe their EOFs and close
        # their transports before the loop goes away, or their GC would emit
        # "Event loop is closed" warnings.
        loop.run_until_complete(asyncio.sleep(0.1))
        loop.close()


def test_warm_hit_round_trip(benchmark, warm_server):
    loop, server, _etag = warm_server

    async def _one():
        async with BenchClient("127.0.0.1", server.port) as client:
            return await client.get(PATH)

    response = benchmark(lambda: loop.run_until_complete(_one()))
    assert response.status == 200
    assert response.header("x-cache") == "hit"


def test_conditional_304_round_trip(benchmark, warm_server):
    loop, server, etag = warm_server

    async def _one():
        async with BenchClient("127.0.0.1", server.port) as client:
            return await client.get(PATH, headers={"If-None-Match": etag})

    response = benchmark(lambda: loop.run_until_complete(_one()))
    assert response.status == 304
    assert response.body == b""
