"""Benchmark: end-to-end protocol safety under a single shared vulnerability."""

from __future__ import annotations

from repro.bft.runner import run_consensus
from repro.experiments.protocol_safety import run_protocol_safety
from repro.faults.injection import FaultSchedule


def test_protocol_safety_experiment(benchmark):
    result = benchmark(run_protocol_safety)
    assert result.condition_predicts_safety
    safety = {
        (row.deployment, row.protocol): row.safety_observed for row in result.bft_rows
    }
    assert safety[("diverse (unique configs)", "pbft")]
    assert not safety[("shared client on 5 of 7", "pbft")]
    diverse, shared = result.nakamoto_rows
    assert not diverse.majority
    assert shared.majority


def test_pbft_honest_run_latency(benchmark):
    """Raw simulator throughput: one honest PBFT instance with 13 replicas."""
    ids = [f"r{i}" for i in range(13)]
    result = benchmark(run_consensus, ids, protocol="pbft")
    assert result.safety_ok and result.all_honest_decided


def test_hotstuff_honest_run_latency(benchmark):
    """Raw simulator throughput: one honest streamlined instance, 13 replicas."""
    ids = [f"r{i}" for i in range(13)]
    result = benchmark(run_consensus, ids, protocol="hotstuff")
    assert result.safety_ok and result.all_honest_decided


def test_pbft_under_equivocation_latency(benchmark):
    """Worst-case Byzantine run (beyond the fault bound) with 10 replicas."""
    ids = [f"r{i}" for i in range(10)]
    schedule = FaultSchedule.byzantine(["r0", "r3", "r5", "r7"])
    result = benchmark(run_consensus, ids, schedule, protocol="pbft")
    assert not result.within_fault_bound
