"""Benchmark: Proposition 1 sweep (abundance increases vs entropy)."""

from __future__ import annotations

from repro.experiments.prop1 import run_proposition1


def test_proposition1_sweep(benchmark):
    sweep = benchmark(run_proposition1, kappas=(2, 4, 8, 16, 32, 64, 128))
    assert sweep.holds
    assert len(sweep.cases) == 21
