"""Benchmark: regenerate Example 1 (Bitcoin vs 8-replica BFT comparison)."""

from __future__ import annotations

from repro.experiments.example1 import run_example1


def test_example1_comparison(benchmark):
    result = benchmark(run_example1, max_residual_miners=1000)
    assert result.bitcoin_below_bft8
    assert result.bft8_entropy_bits == 3.0
    assert result.bitcoin_best_entropy_bits < 3.0
    assert result.effective_configurations < 8.0
