"""Benchmark: component-level exposure decomposition."""

from __future__ import annotations

from repro.experiments.component_exposure import run_component_exposure


def test_component_exposure_decomposition(benchmark):
    result = benchmark(run_component_exposure, population_size=400)
    assert result.skewed_has_critical_slot
    skewed = [entry for entry in result.ecosystems if "skewed" in entry.label][0]
    assert skewed.weakest_share > 0.5
