"""Benchmark: streaming sparse population plane at a sub-scale workload.

The acceptance snapshot (``BENCH_9.json``) runs the 10⁴ → 10⁶ replica sweep;
this file times the same harness at a size the suite can afford and keeps the
load-bearing claim under timing: a population streamed into CSR and estimated
through the row-chunked sparse path is **bit-identical** to the materialized
dense matrix's estimate, on every backend.

Run with::

    pytest benchmarks/test_bench_population.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis.population_benchmark import benchmark_population
from repro.backend import available_backends
from repro.faults.engine import BatchCampaignEngine
from repro.faults.scenarios import sparse_ecosystem_matrix

#: Sub-scale version of the BENCH_9.json sweep (10⁴ → 10⁶ replicas there).
REPLICAS = 2_000
TRIALS = 16
SEED = 29


def _report(backend):
    return benchmark_population(
        sizes=(REPLICAS,),
        trials=TRIALS,
        seed=SEED,
        dense_limit=REPLICAS,
        backend=backend,
    )


@pytest.mark.parametrize("backend", available_backends())
def test_population_scale_sweep_by_backend(benchmark, backend):
    report = benchmark(_report, backend)
    # The harness itself raises if sparse and dense ever disagree; the
    # explicit assertion keeps the guarantee visible in the benchmark log.
    assert report.identical_sparse_vs_dense() is True
    point = report.point(REPLICAS)
    assert point.nnz == REPLICAS * 5  # one component per market
    assert point.build_seconds > 0
    assert point.sparse_trials_per_second > 0
    assert point.dense_trials_per_second > 0
    assert point.peak_rss_kb > 0


@pytest.mark.parametrize("backend", available_backends())
def test_sparse_campaign_throughput_by_backend(benchmark, backend):
    matrix, _ = sparse_ecosystem_matrix(population_size=REPLICAS, seed=SEED)
    engine = BatchCampaignEngine.from_matrix(matrix, backend=backend)
    estimate = benchmark(engine.estimate, trials=TRIALS, seed=SEED)
    assert estimate.trials == TRIALS
    assert 0.0 <= estimate.violation_probability <= 1.0


@pytest.mark.parametrize("backend", available_backends())
def test_streaming_build_throughput_by_backend(benchmark, backend):
    matrix, catalog = benchmark(
        sparse_ecosystem_matrix, population_size=REPLICAS, seed=SEED
    )
    assert matrix.is_sparse
    assert matrix.replica_count == REPLICAS
    assert matrix.vulnerability_count == len(catalog)


def test_backends_are_identical_on_the_benchmark_workload():
    matrix, _ = sparse_ecosystem_matrix(population_size=REPLICAS, seed=SEED)
    estimates = [
        BatchCampaignEngine.from_matrix(matrix, backend=backend).estimate(
            trials=TRIALS, seed=SEED
        )
        for backend in available_backends()
    ]
    for other in estimates[1:]:
        assert other == estimates[0]
