"""Benchmark: the paper's concluding two-class voting-weight proposal."""

from __future__ import annotations

from repro.experiments.two_class import run_two_class


def test_two_class_weight_sweep(benchmark):
    result = benchmark(
        run_two_class,
        population_size=300,
        weight_ratios=(1.0, 2.0, 4.0, 8.0, 16.0),
        trials=800,
    )
    assert result.improves_with_weight
    assert (
        result.rows[-1].violation_probability <= result.rows[0].violation_probability
    )
    assert result.rows[-1].census_entropy_bits > result.rows[0].census_entropy_bits
