"""Benchmark: python vs numpy compute backend on the Monte-Carlo estimator.

Both backends run the identical workload (same census, same seed) so the
timing comparison is apples-to-apples and the recorded results double as a
cross-backend equivalence check: verdict-level quantities driven by exact
share arithmetic must match bit-for-bit, and the sampled probabilities must
agree within Monte-Carlo tolerance.

Run with::

    pytest benchmarks/test_bench_backend.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis.monte_carlo import estimate_violation_probability
from repro.backend import available_backends
from repro.datasets.generators import zipf_distribution

#: Workload matching the BENCH_1.json acceptance snapshot, scaled down 4x so
#: the scalar path keeps the benchmark suite fast.
TRIALS = 2_500
CONFIGS = 1_000

CENSUS = zipf_distribution(CONFIGS, 1.2)


@pytest.mark.parametrize("backend", available_backends())
def test_estimator_throughput_by_backend(benchmark, backend):
    estimate = benchmark(
        estimate_violation_probability,
        CENSUS,
        vulnerability_probability=0.25,
        exploit_budget=1,
        trials=TRIALS,
        seed=42,
        backend=backend,
    )
    assert estimate.trials == TRIALS
    # Zipf(1.2) over 1000 configs has a largest share well below 1/3, so a
    # single exploit can never reach the BFT tolerance -- on any backend.
    assert estimate.violation_probability == 0.0
    assert 0.0 < estimate.mean_compromised_fraction < 1 / 3


@pytest.mark.parametrize("backend", available_backends())
def test_estimator_throughput_with_exploit_budget(benchmark, backend):
    estimate = benchmark(
        estimate_violation_probability,
        CENSUS,
        vulnerability_probability=0.25,
        exploit_budget=3,
        trials=TRIALS,
        seed=42,
        backend=backend,
    )
    # With three simultaneous exploits some trials compromise more power
    # than with one, but most still fall short of the tolerance.
    assert 0.0 <= estimate.violation_probability < 0.5


def test_backends_agree_on_the_benchmark_workload():
    estimates = {
        backend: estimate_violation_probability(
            CENSUS,
            vulnerability_probability=0.25,
            exploit_budget=3,
            trials=TRIALS,
            seed=42,
            backend=backend,
        )
        for backend in available_backends()
    }
    probabilities = [e.violation_probability for e in estimates.values()]
    assert max(probabilities) - min(probabilities) <= 0.03
    fractions = [e.mean_compromised_fraction for e in estimates.values()]
    assert max(fractions) - min(fractions) <= 0.01
