"""Benchmark: Proposition 2 growth comparison (oligopoly vs uniform)."""

from __future__ import annotations

from repro.experiments.prop2 import run_proposition2


def test_proposition2_growth(benchmark):
    sweep = benchmark(run_proposition2, sizes=(18, 67, 117, 517, 1017, 2017))
    assert sweep.holds
    assert sweep.oligopoly_entropy_ceiling < 3.0
    assert sweep.uniform_final_entropy > 10.0
