"""Benchmark: scalar vs batched campaign trials on the campaign engine.

Both backends run the identical workload — same scenario population, same
exploit budget, same counter-based RNG seed — so the timing comparison is
apples-to-apples and the recorded results double as the strongest
cross-backend check in the suite: campaign kernels share one RNG stream, so
the estimates must be *identical*, not merely close.

Run with::

    pytest benchmarks/test_bench_campaign.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.backend import available_backends
from repro.faults.engine import BatchCampaignEngine
from repro.faults.scenarios import ecosystem_scenario

#: Workload matching the BENCH_5.json acceptance snapshot, scaled down 4x so
#: the scalar path keeps the benchmark suite fast.
TRIALS = 2_500
REPLICAS = 150
BUDGET = 4

SCENARIO = ecosystem_scenario(
    ecosystem="default",
    population_size=REPLICAS,
    seed=42,
    exploit_probability=0.6,
)


def _estimate(backend, trials=TRIALS):
    engine = BatchCampaignEngine(
        SCENARIO.population, SCENARIO.catalog, backend=backend
    )
    return engine.estimate_worst_case(
        max_vulnerabilities=BUDGET, trials=trials, seed=42
    )


@pytest.mark.parametrize("backend", available_backends())
def test_campaign_throughput_by_backend(benchmark, backend):
    estimate = benchmark(_estimate, backend)
    assert estimate.trials == TRIALS
    # budget-4 exploits against the default ecosystem's dominant components
    # compromise well beyond the BFT tolerance in nearly every trial.
    assert estimate.violation_probability > 0.9
    assert 1 / 3 < estimate.mean_compromised_fraction <= 1.0


@pytest.mark.parametrize("backend", available_backends())
def test_single_vulnerability_campaign_throughput(benchmark, backend):
    engine = BatchCampaignEngine(
        SCENARIO.population, SCENARIO.catalog, backend=backend
    )
    estimate = benchmark(
        engine.estimate_worst_case,
        max_vulnerabilities=1,
        trials=TRIALS,
        seed=7,
    )
    assert 0.0 <= estimate.violation_probability <= 1.0


def test_backends_are_identical_on_the_benchmark_workload():
    estimates = [_estimate(backend, trials=500) for backend in available_backends()]
    for other in estimates[1:]:
        assert other == estimates[0]
