"""Benchmark: diversity-management ablation (planner vs baselines)."""

from __future__ import annotations

from repro.experiments.diversity_ablation import run_diversity_ablation


def test_diversity_ablation(benchmark):
    result = benchmark(run_diversity_ablation, replica_count=60, trials=800)
    assert result.planner_beats_baselines
    by_strategy = {row.strategy: row for row in result.rows}
    assert by_strategy["monoculture (most popular)"].single_fault_violates_bft
    assert not by_strategy["planner (entropy-maximizing)"].single_fault_violates_bft
