"""Benchmark: decentralized pools / non-outsourceable mining sweep."""

from __future__ import annotations

from repro.experiments.decentralized_pools import run_decentralized_pools


def test_decentralized_pools_sweep(benchmark):
    result = benchmark(run_decentralized_pools, members_per_pool=20)
    assert result.entropy_is_monotone
    first, last = result.rows[0], result.rows[-1]
    assert first.entropy_bits < 3.0  # the Figure 1 baseline
    assert last.entropy_bits > first.entropy_bits
    assert last.coalition_takeover < first.coalition_takeover
    assert 0 <= result.breaks_majority_at <= 17
