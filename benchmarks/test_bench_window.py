"""Benchmark: vulnerability windows (patch rollout vs proactive recovery)."""

from __future__ import annotations

from repro.experiments.vulnerability_window import run_vulnerability_window


def test_vulnerability_window_sweeps(benchmark):
    result = benchmark(run_vulnerability_window, population_size=60)
    assert result.patching_faster_is_better
    assert result.recovery_faster_is_better
    patch_rows = [row for row in result.rows if row.mechanism == "patch rollout"]
    # The slowest rollout spends the longest time above the BFT tolerance.
    assert patch_rows[0].time_above_tolerance >= patch_rows[-1].time_above_tolerance
