"""Benchmark: attestation-based configuration discovery (Section III-B)."""

from __future__ import annotations

from repro.experiments.attestation_coverage import run_attestation_coverage


def test_attestation_coverage_sweep(benchmark):
    result = benchmark(
        run_attestation_coverage,
        population_size=300,
        fractions=(0.1, 0.25, 0.5, 0.75, 1.0),
    )
    rows = result.rows
    unknown = [row.unknown_power_fraction for row in rows]
    assert unknown == sorted(unknown, reverse=True)
    # Full coverage recovers the ground-truth census exactly.
    assert abs(rows[-1].attested_census_entropy_bits - rows[-1].true_entropy_bits) < 1e-9
