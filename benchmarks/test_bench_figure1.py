"""Benchmark: regenerate Figure 1 (best-case entropy of Bitcoin diversity)."""

from __future__ import annotations

from repro.experiments.figure1 import BFT_8_REPLICA_ENTROPY_BITS, run_figure1


def test_figure1_full_sweep(benchmark):
    """The full paper sweep: residual miners x = 1..1000."""
    result = benchmark(run_figure1, max_residual_miners=1000)
    assert result.always_below_bft8
    assert result.max_entropy_bits < BFT_8_REPLICA_ENTROPY_BITS
    assert len(result.points) == 1000


def test_figure1_entropy_series_is_monotone(benchmark):
    """The series rises with x but saturates below the 3-bit BFT reference."""
    result = benchmark(run_figure1, max_residual_miners=250)
    entropies = [point.entropy_bits for point in result.points]
    assert entropies == sorted(entropies)
    assert entropies[-1] - entropies[0] < 0.2  # saturation, not growth
