"""Benchmark: Monte-Carlo safety-violation probability vs census entropy."""

from __future__ import annotations

from repro.experiments.safety_violation import run_safety_violation


def test_safety_violation_sweep(benchmark):
    result = benchmark(run_safety_violation, trials=1000)
    assert result.monotone_decreasing
    assert result.rows[0].violation_probability_bft >= result.rows[-1].violation_probability_bft
    assert result.rows[-1].violation_probability_bft == 0.0


def test_safety_violation_with_larger_exploit_budget(benchmark):
    result = benchmark(run_safety_violation, trials=600, exploit_budget=3)
    # More simultaneous exploits raise risk everywhere, but high-entropy
    # censuses still dominate low-entropy ones.
    first, last = result.rows[0], result.rows[-1]
    assert first.violation_probability_bft >= last.violation_probability_bft
